//! A minimal, API-compatible stand-in for the subset of the `bytes` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs: cheaply cloneable immutable
//! byte buffers ([`Bytes`]), growable buffers ([`BytesMut`]), and the
//! little-endian cursor traits ([`Buf`] / [`BufMut`]).  The semantics match
//! the real crate for every operation exercised here; swapping the real
//! `bytes` back in is a one-line manifest change.

#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Cloning shares the underlying allocation; consuming reads through the
/// [`Buf`] trait advance a per-handle cursor without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice (copied once here; the real
    /// crate borrows, but nothing in this workspace depends on that).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Number of bytes remaining in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A buffer holding a copy of `data` (one allocation, one memcpy —
    /// unlike `Bytes::from(vec)`, no intermediate `Vec` is built first).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Read side of a byte cursor: little-endian scalar reads that consume the
/// front of the buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes into `dst` and consume them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// A growable byte buffer being filled before a send.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clear the written bytes, retaining the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write side of a byte cursor: little-endian scalar appends.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u16_le(7);
        b.put_u32_le(1_000_000);
        b.put_u64_le(u64::MAX - 1);
        b.put_i32_le(-5);
        b.put_i64_le(-6);
        b.put_f32_le(0.25);
        b.put_f64_le(-2.5);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 1_000_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), -6);
        assert_eq!(r.get_f32_le(), 0.25);
        assert_eq!(r.get_f64_le(), -2.5);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn clones_share_but_consume_independently() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let mut c = b.clone();
        assert_eq!(c.get_u16_le(), u16::from_le_bytes([1, 2]));
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }
}

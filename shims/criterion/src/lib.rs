//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups with per-group sample/time settings, and
//! [`BenchmarkId`] labels.
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! warmed up once and then timed for a fixed number of iterations; the
//! median per-iteration wall time is printed.  That keeps `cargo bench`
//! functional (and fast) without crates.io access; restoring the real
//! criterion is a manifest change only.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    fn new() -> Self {
        Criterion { samples: 10 }
    }

    /// Run `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples: 10,
        }
    }
}

/// A label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label made of a function name and a parameter.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A label made of a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim is iteration-bounded, not
    /// time-bounded.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up with one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` as a benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.samples, &mut f);
        self
    }

    /// Run `f` as a benchmark of this group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        run_one(&name, self.samples, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        self
    }

    /// Finish the group (printing is done per benchmark; nothing to flush).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

fn b_input<I: ?Sized, F>(b: &mut Bencher, input: &I, f: &mut F)
where
    F: FnMut(&mut Bencher, &I),
{
    f(b, input)
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time one sample of the benchmark routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = Some(start.elapsed());
    }
}

fn run_one<F>(name: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up iteration.
    let mut b = Bencher::default();
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        times.push(b.elapsed.unwrap_or_default());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("bench: {name:<48} median {median:>12.2?} ({samples} samples)");
}

/// Build one benchmark-group function from target functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::__new();
            $( $target(&mut c); )+
        }
    };
}

/// Build the bench `main` from group functions, mirroring criterion's macro
/// of the same name.  Requires `harness = false` on the `[[bench]]` target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

impl Criterion {
    /// Internal constructor used by `criterion_group!`.
    #[doc(hidden)]
    pub fn __new() -> Self {
        Criterion::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::__new();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 10 samples.
        assert_eq!(runs, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::__new();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_secs(1))
                .warm_up_time(Duration::from_millis(1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
                b.iter(|| runs += n as u32)
            });
            g.finish();
        }
        assert_eq!(runs, 4 * 7);
    }
}

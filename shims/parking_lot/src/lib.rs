//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock` returns the guard directly (no poison `Result`)
//! and a [`Condvar`] whose `wait` takes the guard by `&mut`.
//!
//! Implemented over `std::sync`; a poisoned lock (a panicked holder) is
//! recovered rather than propagated, matching parking_lot's behaviour of
//! not poisoning at all.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait can move the std guard out and back while
    // the caller still holds `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically release the guarded lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wait with a timeout; returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            *started
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(t.join().unwrap());
    }
}

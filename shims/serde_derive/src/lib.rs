//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its statistics and configuration
//! types so they stay serialization-ready, but nothing in the build actually
//! serializes them and the build environment cannot fetch the real `serde`.
//! These derives accept the same syntax (including `#[serde(...)]` field
//! attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op [`Serialize`] / [`Deserialize`] derives so that
//! `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compiles
//! unchanged.  No trait machinery is provided because nothing in this
//! workspace serializes at runtime; restoring the real crate is a manifest
//! change only.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

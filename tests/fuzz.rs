//! The fault-injection battery: the fuzzing harness (`reproduce fuzz`,
//! [`bench::fuzz`]) run as a test suite.
//!
//! Four properties are pinned here:
//!
//! * **campaign determinism** — the same `(spec, seeds)` campaign produces a
//!   bit-identical report every time it runs;
//! * **fault tolerance of every system** — a lossy fault plan (drops,
//!   duplicates, reorders, delays) and a timed-partition plan over *every*
//!   workload × *every* system (LRC, HLRC, SC, PVM) leave all invariants
//!   intact: the retransmit machinery absorbs the faults and the answers
//!   still match the sequential reference bit for bit;
//! * **shrinker soundness** — shrinking a found failure against the real
//!   cluster oracle is a fixpoint (shrinking the shrunk tuning changes
//!   nothing);
//! * **seed-zero parity** — the default [`RunTuning`] (seed 0, no cap, empty
//!   plan) is byte-for-byte the pristine engine: stamping it onto a config
//!   changes no bit of any run.

use apps::runner::System;
use apps::Workload;
use bench::fuzz::{run_fuzz, FuzzSpec};
use bench::invariants::{self, RunVerdict};
use bench::shrink::shrink;
use bench::{run_parallel_on, run_sequential, try_run_parallel_on, Preset, RunTuning};
use cluster::{AnalysisLevel, FaultPlan, NetModel, NetPreset};
use treadmarks::ProtocolKind;

fn spec(systems: Vec<System>, seeds: u64, plan: FaultPlan) -> FuzzSpec {
    FuzzSpec {
        preset: Preset::Tiny,
        net: NetModel::preset(NetPreset::Fddi),
        nprocs: 2,
        workloads: vec![Workload::Ep],
        systems,
        seeds,
        plan,
        until_failure: false,
        jobs: 2,
        islands: 1,
        island_threads: 1,
    }
}

#[test]
fn a_known_seed_campaign_is_bit_identical_across_reruns() {
    let s = spec(
        vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm],
        2,
        FaultPlan::lossy(9),
    );
    let first = run_fuzz(&s);
    let second = run_fuzz(&s);
    assert_eq!(first.report, second.report);
    assert_eq!(first.findings.len(), second.findings.len());
}

#[test]
fn every_workload_and_system_survives_a_lossy_network() {
    // Seed 0 applies the plan exactly as given; one seed over the full
    // (workload × system) grid.  The retransmit machinery must absorb the
    // faults on every one of the 48 points.
    let s = FuzzSpec {
        workloads: Workload::all().to_vec(),
        systems: System::all().to_vec(),
        seeds: 1,
        ..spec(vec![], 1, FaultPlan::lossy(1))
    };
    let out = run_fuzz(&s);
    assert!(out.findings.is_empty(), "{}", out.report);
}

#[test]
fn every_workload_and_system_survives_a_timed_partition() {
    let s = FuzzSpec {
        workloads: Workload::all().to_vec(),
        systems: System::all().to_vec(),
        seeds: 1,
        ..spec(vec![], 1, FaultPlan::partitioned(1, 2))
    };
    let out = run_fuzz(&s);
    assert!(out.findings.is_empty(), "{}", out.report);
}

#[test]
fn a_fault_campaign_is_bit_identical_at_every_island_width() {
    // Fault injection and the conservative PDES island scheduler must not
    // interact: a known-seed campaign mixing a lossy plan (drops,
    // duplicates, reorders, delays) with a timed partition produces a
    // byte-identical report whether the scheduler runs flat or split into
    // four islands.  Fault draws come from per-link PRNG streams keyed on
    // the run seed, so island scan order can never leak into them.
    let mut plan = FaultPlan::lossy(9);
    plan.partitions = FaultPlan::partitioned(1, 2).partitions;
    let base = spec(
        vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm],
        3,
        plan,
    );
    let narrow = run_fuzz(&base);
    for (islands, threads) in [(4usize, 1usize), (2, 2), (4, 4)] {
        let wide = run_fuzz(&FuzzSpec {
            islands,
            island_threads: threads,
            ..base.clone()
        });
        assert_eq!(
            narrow.report, wide.report,
            "campaign report differs at islands={islands} island_threads={threads}"
        );
        assert_eq!(narrow.findings.len(), wide.findings.len());
    }
}

#[test]
fn shrinking_is_a_fixpoint_against_the_real_cluster_oracle() {
    // Provoke a genuine failure (rank 1 crashes almost immediately), let
    // the campaign shrink it, then shrink the shrunk tuning again with the
    // same live oracle the harness used: nothing may change.
    let plan = FaultPlan {
        crashes: vec!["1@0.00001".parse().unwrap()],
        ..FaultPlan::default()
    };
    let s = spec(vec![System::TreadMarks(ProtocolKind::Lrc)], 1, plan);
    let out = run_fuzz(&s);
    assert_eq!(out.findings.len(), 1, "{}", out.report);
    let found = &out.findings[0];
    let want = found.verdict.kind();

    let seq = run_sequential(Workload::Ep, Preset::Tiny);
    let mut oracle = |t: &RunTuning| {
        let mut cfg = NetModel::preset(NetPreset::Fddi).config(2);
        cfg.analysis = AnalysisLevel::Race;
        t.apply(&mut cfg);
        let v = invariants::verdict(
            try_run_parallel_on(
                Workload::Ep,
                System::TreadMarks(ProtocolKind::Lrc),
                &cfg,
                Preset::Tiny,
            ),
            &seq,
        );
        v.kind() == want
    };
    assert!(oracle(&found.shrunk), "the shrunk tuning must reproduce");
    let again = shrink(&found.shrunk, &mut oracle);
    assert_eq!(again, found.shrunk, "shrinking the shrunk tuning moved it");
}

#[test]
fn the_default_tuning_is_byte_identical_to_the_pristine_engine() {
    // Stamping RunTuning::default() onto a config must be a no-op: same
    // checksum bits, same stats, same everything, for DSM and PVM alike.
    for sys in [System::TreadMarks(ProtocolKind::Lrc), System::Pvm] {
        let pristine = run_parallel_on(
            Workload::Ep,
            sys,
            &NetModel::preset(NetPreset::Fddi).config(2),
            Preset::Tiny,
        );
        let mut cfg = NetModel::preset(NetPreset::Fddi).config(2);
        RunTuning::default().apply(&mut cfg);
        let tuned = run_parallel_on(Workload::Ep, sys, &cfg, Preset::Tiny);
        assert_eq!(pristine.checksum.to_bits(), tuned.checksum.to_bits());
        assert_eq!(format!("{pristine:?}"), format!("{tuned:?}"));
        let v = invariants::check_run(&tuned, &run_sequential(Workload::Ep, Preset::Tiny));
        assert_eq!(v, RunVerdict::Pass, "{}", v.summary());
    }
}

//! Integration tests of the happens-before race detector (docs/ANALYSIS.md):
//! a deliberately racy fixture must be flagged with the correct access
//! pairs, deterministically; the full application suite must be data-race
//! free under every protocol backend; and turning the detector on must
//! never perturb a simulated byte.

use bench::{
    render_race_reports, run_matrix_full, run_parallel_on, run_record_json, Preset, RunKey,
};
use netws::apps::runner::System;
use netws::apps::Workload;
use netws::cluster::{AnalysisLevel, Cluster, ClusterConfig, ObsLevel};
use netws::treadmarks::race::{self, AccessKind, RaceReport};
use netws::treadmarks::{ProtocolKind, Tmk};
use std::sync::Arc;

/// The racy micro-app: after a common barrier, rank 0 writes bytes `[0, 8)`
/// of a shared page while rank 1 — with no intervening synchronisation —
/// writes the overlapping `[4, 12)` and reads `[0, 4)`.  That is one
/// write/write conflict (overlap `[4, 8)`) and one write/read conflict
/// (overlap `[0, 4)`), neither ordered by happens-before.
fn racy_fixture(protocol: ProtocolKind) -> (usize, RaceReport) {
    let table = Arc::new(race::SyncClocks::new());
    let mut rep = Cluster::run(ClusterConfig::calibrated_fddi(2), {
        let table = Arc::clone(&table);
        move |p| {
            let tmk = Tmk::with_protocol(p, protocol);
            tmk.enable_racecheck(Arc::clone(&table));
            let page = tmk.malloc(4096);
            tmk.barrier(0);
            if tmk.id() == 0 {
                tmk.write_i64(page, 1);
            } else {
                tmk.write_i64(page + 4, 2);
                let _ = tmk.read_i32(page);
            }
            tmk.barrier(1);
            tmk.exit();
            (page, tmk.take_race_log())
        }
    });
    let page_addr = rep.results[0].0;
    let logs: Vec<race::RaceLog> = rep
        .results
        .iter_mut()
        .map(|(_, log)| log.take().expect("racecheck enabled on every rank"))
        .collect();
    (page_addr, race::analyze(2, logs))
}

#[test]
fn racy_fixture_is_flagged_with_the_correct_pairs_under_every_protocol() {
    for protocol in ProtocolKind::all() {
        let (page_addr, report) = racy_fixture(protocol);
        let page = (page_addr / 4096) as u32;
        let base = (page_addr % 4096) as u32;
        assert_eq!(
            report.races.len(),
            2,
            "{protocol}: expected exactly the write/write and write/read pairs, got\n{}",
            report.render()
        );
        let ww = report
            .races
            .iter()
            .find(|r| r.a.kind == AccessKind::Write && r.b.kind == AccessKind::Write)
            .unwrap_or_else(|| panic!("{protocol}: no write/write race\n{}", report.render()));
        assert_eq!(ww.page, page, "{protocol}");
        assert_eq!(
            (ww.overlap_start, ww.overlap_end),
            (base + 4, base + 8),
            "{protocol}: write/write overlap"
        );
        assert_eq!((ww.a.rank, ww.b.rank), (0, 1), "{protocol}");
        let wr = report
            .races
            .iter()
            .find(|r| r.a.kind == AccessKind::Write && r.b.kind == AccessKind::Read)
            .unwrap_or_else(|| panic!("{protocol}: no write/read race\n{}", report.render()));
        assert_eq!(wr.page, page, "{protocol}");
        assert_eq!(
            (wr.overlap_start, wr.overlap_end),
            (base, base + 4),
            "{protocol}: write/read overlap"
        );
        assert_eq!((wr.a.rank, wr.b.rank), (0, 1), "{protocol}");
    }
}

#[test]
fn racy_fixture_report_is_byte_identical_across_reruns() {
    for protocol in ProtocolKind::all() {
        let (_, first) = racy_fixture(protocol);
        let (_, second) = racy_fixture(protocol);
        assert_eq!(
            first.render(),
            second.render(),
            "{protocol}: rerun changed the report"
        );
    }
}

/// The matrix-level analogue of the CLI's `--jobs` guarantee: a
/// racecheck-on matrix rendered from a worker pool is byte-identical —
/// race reports and JSON records alike — to the same matrix computed
/// serially.
#[test]
fn racecheck_matrix_is_bit_identical_across_job_widths() {
    let keys: Vec<RunKey> = [Workload::Ep, Workload::Tsp, Workload::Qsort]
        .into_iter()
        .flat_map(|w| {
            ProtocolKind::all()
                .into_iter()
                .map(move |p| RunKey::fddi(w, System::TreadMarks(p), 2))
        })
        .collect();
    let serial = run_matrix_full(
        Preset::Tiny,
        &[],
        &keys,
        1,
        ObsLevel::Off,
        AnalysisLevel::Race,
    );
    let pooled = run_matrix_full(
        Preset::Tiny,
        &[],
        &keys,
        4,
        ObsLevel::Off,
        AnalysisLevel::Race,
    );
    assert_eq!(render_race_reports(&serial), render_race_reports(&pooled));
    for key in &keys {
        assert_eq!(
            run_record_json(key, serial.run(key)),
            run_record_json(key, pooled.run(key)),
            "{key:?}: JSON record differs across job widths"
        );
    }
}

/// The DRF precondition of the whole study: every application is race-free
/// under every protocol backend.  (PVM runs are message-passing only and
/// carry no report.)
#[test]
fn every_app_is_race_free_under_every_protocol() {
    for w in Workload::all() {
        for protocol in ProtocolKind::all() {
            let mut cfg = ClusterConfig::calibrated_fddi(2);
            cfg.analysis = AnalysisLevel::Race;
            let run = run_parallel_on(w, System::TreadMarks(protocol), &cfg, Preset::Tiny);
            let report = run.race.expect("racecheck was requested");
            assert!(
                report.is_race_free(),
                "{} under {protocol} is not race-free:\n{}",
                w.name(),
                report.render()
            );
            assert!(report.accesses > 0, "{} recorded no accesses", w.name());
        }
    }
}

/// The detector lives outside the cost model: a racechecked run's simulated
/// output — every virtual time, checksum and counter on every process — is
/// bit-identical to the plain run's.
#[test]
fn racecheck_does_not_perturb_the_simulation() {
    for w in [Workload::Ep, Workload::Tsp] {
        for protocol in ProtocolKind::all() {
            let cfg = ClusterConfig::calibrated_fddi(2);
            let plain = run_parallel_on(w, System::TreadMarks(protocol), &cfg, Preset::Tiny);
            let mut cfg = ClusterConfig::calibrated_fddi(2);
            cfg.analysis = AnalysisLevel::Race;
            let checked = run_parallel_on(w, System::TreadMarks(protocol), &cfg, Preset::Tiny);
            assert_eq!(plain.time.to_bits(), checked.time.to_bits(), "{}", w.name());
            assert_eq!(
                plain.checksum.to_bits(),
                checked.checksum.to_bits(),
                "{}",
                w.name()
            );
            assert_eq!(plain.messages, checked.messages, "{}", w.name());
            assert_eq!(
                plain.kilobytes.to_bits(),
                checked.kilobytes.to_bits(),
                "{}",
                w.name()
            );
            assert_eq!(
                format!("{:?}", plain.proc_stats),
                format!("{:?}", checked.proc_stats),
                "{}",
                w.name()
            );
            assert_eq!(
                format!("{:?}", plain.tmk_stats),
                format!("{:?}", checked.tmk_stats),
                "{}",
                w.name()
            );
        }
    }
}

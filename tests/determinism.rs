//! Determinism: under the conservative virtual-time arbiter, two runs of
//! the same program must produce **byte-identical** results — every virtual
//! time, every counter, on every process, under every system.  This is the
//! property that turns the reproduction's Table 1/2 numbers into stable
//! facts instead of thread-interleaving lottery tickets.

use netws::apps::runner::{AppRun, System};
use netws::apps::Workload;
use netws::cluster::{Cluster, ClusterConfig, ProcStats};

// The bench crate is not a dependency of the root package (it is a harness),
// so re-derive the tiny-preset dispatch locally, as cross_system.rs does.
fn run(w: Workload, sys: System, n: usize) -> AppRun {
    use netws::apps::*;
    macro_rules! go {
        ($m:ident, $params:expr) => {
            match sys {
                System::TreadMarks(protocol) => $m::treadmarks_with(n, &$params, protocol),
                System::Pvm => $m::pvm(n, &$params),
            }
        };
    }
    match w {
        Workload::Ep => go!(ep, ep::EpParams::tiny()),
        Workload::SorZero => go!(sor, sor::SorParams::tiny(true)),
        Workload::SorNonzero => go!(sor, sor::SorParams::tiny(false)),
        Workload::IsSmall | Workload::IsLarge => go!(is, is::IsParams::tiny()),
        Workload::Tsp => go!(tsp, tsp::TspParams::tiny()),
        Workload::Qsort => go!(qsort, qsort::QsortParams::tiny()),
        Workload::Water288 | Workload::Water1728 => go!(water, water::WaterParams::tiny()),
        Workload::BarnesHut => go!(barnes, barnes::BarnesParams::tiny()),
        Workload::Fft3d => go!(fft3d, fft3d::FftParams::tiny()),
        Workload::Ilink => go!(ilink, ilink::IlinkParams::tiny()),
    }
}

/// Bitwise equality of two per-process stat records: every virtual time is
/// compared by its f64 bit pattern, not within a tolerance.
fn assert_proc_stats_identical(a: &ProcStats, b: &ProcStats, ctx: &str) {
    assert_eq!(a.id, b.id, "{ctx}: rank");
    for (name, x, y) in [
        ("finish_time", a.finish_time, b.finish_time),
        ("compute_time", a.compute_time, b.compute_time),
        ("idle_time", a.idle_time, b.idle_time),
        ("config_latency", a.config_latency, b.config_latency),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: process {} {name} differs between runs: {x} vs {y}",
            a.id
        );
    }
    for (name, x, y) in [
        ("messages_sent", a.messages_sent, b.messages_sent),
        ("datagrams_sent", a.datagrams_sent, b.datagrams_sent),
        ("bytes_sent", a.bytes_sent, b.bytes_sent),
        (
            "messages_received",
            a.messages_received,
            b.messages_received,
        ),
        (
            "datagrams_received",
            a.datagrams_received,
            b.datagrams_received,
        ),
        ("bytes_received", a.bytes_received, b.bytes_received),
    ] {
        assert_eq!(x, y, "{ctx}: process {} {name} differs between runs", a.id);
    }
}

fn assert_runs_identical(a: &AppRun, b: &AppRun, ctx: &str) {
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{ctx}: checksum differs"
    );
    assert_eq!(
        a.time.to_bits(),
        b.time.to_bits(),
        "{ctx}: parallel time differs between runs: {} vs {}",
        a.time,
        b.time
    );
    assert_eq!(a.messages, b.messages, "{ctx}: message count differs");
    assert_eq!(
        a.kilobytes.to_bits(),
        b.kilobytes.to_bits(),
        "{ctx}: data volume differs"
    );
    assert_eq!(
        a.tmk_stats, b.tmk_stats,
        "{ctx}: DSM runtime counters differ"
    );
    assert_eq!(a.proc_stats.len(), b.proc_stats.len(), "{ctx}: nprocs");
    for (pa, pb) in a.proc_stats.iter().zip(&b.proc_stats) {
        assert_proc_stats_identical(pa, pb, ctx);
    }
}

/// Every Tiny-preset application, run twice under each system (every DSM
/// protocol backend and PVM — `System::all()`, so a future backend is
/// covered automatically), yields a bit-identical report: same times,
/// same counters, on every process.
#[test]
fn every_app_is_bit_deterministic_under_every_system() {
    for w in Workload::all() {
        for sys in System::all() {
            let first = run(w, sys, 4);
            let second = run(w, sys, 4);
            let ctx = format!("{} under {sys} at 4 processes", w.name());
            assert_runs_identical(&first, &second, &ctx);
        }
    }
}

/// The parallel run executor cannot change results: a reproduction matrix
/// computed on a 4-thread worker pool is bit-identical — every virtual time
/// and counter, on every process of every run, and the rendered JSON
/// records — to the same matrix computed serially.
#[test]
fn parallel_executor_matches_serial_bit_for_bit() {
    use bench::{run_matrix, run_record_json, Preset, RunKey};
    let workloads = [Workload::Qsort, Workload::IsSmall, Workload::BarnesHut];
    let keys: Vec<RunKey> = workloads
        .iter()
        .flat_map(|&w| {
            System::all().into_iter().flat_map(move |sys| {
                [2usize, 4]
                    .into_iter()
                    .map(move |n| RunKey::fddi(w, sys, n))
            })
        })
        .collect();
    let serial = run_matrix(Preset::Tiny, &workloads, &keys, 1);
    let parallel = run_matrix(Preset::Tiny, &workloads, &keys, 4);
    for key in &keys {
        let (a, b) = (serial.run(key), parallel.run(key));
        let ctx = format!(
            "{} under {} at {} processes (serial vs parallel)",
            key.workload.name(),
            key.system,
            key.nprocs
        );
        assert_runs_identical(a, b, &ctx);
        assert_eq!(
            run_record_json(key, a),
            run_record_json(key, b),
            "{ctx}: JSON record differs"
        );
    }
    for &w in &workloads {
        assert_eq!(
            serial.sequential(w).time.to_bits(),
            parallel.sequential(w).time.to_bits(),
            "{}: sequential baseline differs",
            w.name()
        );
    }
}

/// The conservative PDES island scheduler cannot change results: every
/// workload in the battery, under every system (all DSM protocol backends
/// and PVM), produces a bit-identical run — every virtual time and counter,
/// on every process — at `islands` widths 1, 2 and 4.  Width 1 is the flat
/// arbiter, so this pins the island refactor to the pre-island engine.
#[test]
fn island_scheduling_is_bit_identical_at_every_width() {
    use bench::{run_parallel_on, Preset};
    let workloads = [Workload::Ep, Workload::SorZero, Workload::Tsp];
    for w in workloads {
        for sys in System::all() {
            let at_width = |islands: usize| {
                let mut cfg = ClusterConfig::calibrated_fddi(4);
                cfg.islands = islands;
                run_parallel_on(w, sys, &cfg, Preset::Tiny)
            };
            let flat = at_width(1);
            for islands in [2usize, 4] {
                let wide = at_width(islands);
                let ctx = format!(
                    "{} under {sys} at 4 processes (islands 1 vs {islands})",
                    w.name()
                );
                assert_runs_identical(&flat, &wide, &ctx);
            }
        }
    }
}

/// The threaded-window battery: 3 workloads × every system × `islands`
/// {1, 2, 4} × `island_threads` {1, 2, 4}, asserting the full report —
/// every virtual time and counter, on every process — bit-identical to the
/// flat serial engine at `(1, 1)`.  `plan` injects faults under the same
/// grid; `ctx_plan` names it in failure messages.
fn threaded_width_battery(plan: &netws::cluster::FaultPlan, ctx_plan: &str) {
    use bench::{run_parallel_on, Preset};
    let workloads = [Workload::Ep, Workload::SorZero, Workload::Tsp];
    for w in workloads {
        for sys in System::all() {
            let at = |islands: usize, threads: usize| {
                let mut cfg = ClusterConfig::calibrated_fddi(4);
                cfg.islands = islands;
                cfg.island_threads = threads;
                cfg.fault = plan.clone();
                run_parallel_on(w, sys, &cfg, Preset::Tiny)
            };
            let flat = at(1, 1);
            for islands in [1usize, 2, 4] {
                for threads in [1usize, 2, 4] {
                    if (islands, threads) == (1, 1) {
                        continue;
                    }
                    let wide = at(islands, threads);
                    let ctx = format!(
                        "{} under {sys} at 4 processes ({ctx_plan}; islands 1 vs {islands}, \
                         island-threads 1 vs {threads})",
                        w.name()
                    );
                    assert_runs_identical(&flat, &wide, &ctx);
                }
            }
        }
    }
}

/// Fault-free: the threaded windowed engine engages wherever it is
/// eligible, and every `(islands, island_threads)` width reproduces the
/// serial engine bit for bit.
#[test]
fn threaded_windows_are_bit_identical_at_every_width() {
    threaded_width_battery(&netws::cluster::FaultPlan::default(), "no faults");
}

/// A lossy plan (drops, duplicates, reorders, delays): reorder slip is
/// incompatible with staged window delivery, so the engine falls back to
/// the serial island path — which must still be bit-identical at every
/// requested width.
#[test]
fn threaded_windows_are_bit_identical_under_a_lossy_plan() {
    threaded_width_battery(&netws::cluster::FaultPlan::lossy(1), "lossy plan");
}

/// A timed partition has no probabilistic reordering, so the threaded
/// window path stays eligible and runs *with* fault injection: partition
/// draws come from per-link PRNG streams, so thread interleaving cannot
/// reach them.
#[test]
fn threaded_windows_are_bit_identical_under_a_timed_partition() {
    threaded_width_battery(&netws::cluster::FaultPlan::partitioned(1, 4), "timed partition");
}

/// The full structured obs trace — every event token of every run, as the
/// exported Chrome-trace bytes — is byte-identical across island-thread
/// widths: virtual-time stamping means recording order never leaks.
#[test]
fn obs_traces_are_byte_identical_across_thread_widths() {
    use bench::{obs, run_matrix_islands, Preset, RunKey, RunTuning};
    use netws::cluster::{AnalysisLevel, ObsLevel};
    let workloads = [Workload::Tsp];
    let keys: Vec<RunKey> = System::all()
        .into_iter()
        .map(|sys| RunKey::fddi(Workload::Tsp, sys, 4))
        .collect();
    let traced = |threads: usize| {
        run_matrix_islands(
            Preset::Tiny,
            &workloads,
            &keys,
            2,
            ObsLevel::Trace,
            AnalysisLevel::Off,
            &RunTuning::default(),
            4,
            threads,
        )
    };
    let a = obs::chrome_trace_json(&traced(1));
    let b = obs::chrome_trace_json(&traced(4));
    assert_eq!(
        a, b,
        "trace bytes differ between island-thread widths 1 and 4"
    );
}

/// The raw transport is deterministic even under deliberate contention:
/// many processes hammer one receiver through the shared medium, with
/// interrupt-style service mixed in, and the full `ClusterReport` matches
/// bit-for-bit across runs.
#[test]
fn contended_shared_medium_reports_are_bit_identical() {
    use bytes::Bytes;
    let run_once = || {
        Cluster::run(ClusterConfig::calibrated_fddi(6), |p| {
            if p.id() == 0 {
                let mut total = 0usize;
                for _ in 0..(5 * 8) {
                    let m = p.recv_any();
                    total += m.payload.len();
                    p.send_at(m.src, 99, Bytes::from_static(b"ack"), m.arrival + 1e-5);
                }
                total
            } else {
                for i in 0..8u32 {
                    p.compute(1e-4 * p.id() as f64);
                    p.send(0, i, Bytes::from(vec![p.id() as u8; 700 * p.id()]));
                    p.recv(Some(0), 99);
                }
                0
            }
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.results, b.results);
    for (pa, pb) in a.stats.iter().zip(&b.stats) {
        assert_proc_stats_identical(pa, pb, "contended transport");
    }
    // Receive-side datagram accounting closes the loop cluster-wide: all
    // consumed traffic is seen by both ends.
    let sent: u64 = a.stats.iter().map(|s| s.datagrams_sent).sum();
    let received: u64 = a.stats.iter().map(|s| s.datagrams_received).sum();
    assert_eq!(sent, received);
}

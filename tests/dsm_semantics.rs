//! Integration tests of the DSM's consistency guarantees, exercised through
//! the public API across the cluster substrate — under **both** coherence
//! protocol backends, which must be observationally equivalent for
//! data-race-free programs.
//!
//! The write-pattern cases are generated with a deterministic PRNG (the
//! environment vendors no property-testing crate), which keeps the coverage
//! of the former proptest suite while staying reproducible.

use netws::cluster::{Cluster, ClusterConfig};
use netws::treadmarks::{ProtocolKind, Tmk};

/// Deterministic splitmix64 for generating test cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Lock-protected read-modify-write sequences from every process must behave
/// as if executed atomically (lazy release consistency with proper locking
/// gives sequentially consistent results for data-race-free programs).
#[test]
fn lock_protected_counters_are_exact_at_eight_processes() {
    for protocol in ProtocolKind::all() {
        let n = 8;
        let iters = 10;
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
            let tmk = Tmk::with_protocol(p, protocol);
            let counters = tmk.malloc(4 * 8);
            tmk.barrier(0);
            for i in 0..iters {
                let lock = (i % 4) as u32;
                tmk.lock_acquire(lock);
                let addr = counters + (lock as usize) * 8;
                let v = tmk.read_i64(addr);
                tmk.write_i64(addr, v + 1);
                tmk.lock_release(lock);
            }
            tmk.barrier(1);
            let total: i64 = (0..4).map(|k| tmk.read_i64(counters + k * 8)).sum();
            tmk.exit();
            total
        });
        assert!(
            rep.results.iter().all(|&t| t == (n * iters) as i64),
            "{protocol}: {:?}",
            rep.results
        );
    }
}

/// Barrier-separated phases: values written before a barrier are visible to
/// every process after it, for arbitrary write patterns.
fn barrier_visibility(protocol: ProtocolKind, nprocs: usize, writes: Vec<(u8, u16)>) -> bool {
    let writes = std::sync::Arc::new(writes);
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(nprocs), {
        let writes = writes.clone();
        move |p| {
            let tmk = Tmk::with_heap_and_protocol(p, 1 << 20, protocol);
            let region = tmk.malloc(64 * 1024);
            tmk.barrier(0);
            // Each process writes the subset of slots assigned to it.
            for (k, &(owner, slot)) in writes.iter().enumerate() {
                if owner as usize % p.nprocs() == p.id() {
                    tmk.write_i64(region + (slot as usize) * 8, (k + 1) as i64);
                }
            }
            tmk.barrier(1);
            // Every process observes the last write to every slot.
            let mut ok = true;
            for &(_, slot) in writes.iter() {
                let expect_latest = writes
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.1 == slot)
                    .map(|(i, _)| i + 1)
                    .max()
                    .unwrap();
                let got = tmk.read_i64(region + (slot as usize) * 8);
                // Slots written by several owners in the same interval are
                // data races; restrict the check to single-writer slots.
                let writers: std::collections::HashSet<usize> = writes
                    .iter()
                    .filter(|w| w.1 == slot)
                    .map(|w| w.0 as usize % p.nprocs())
                    .collect();
                if writers.len() == 1 && got != expect_latest as i64 {
                    ok = false;
                }
            }
            tmk.exit();
            ok
        }
    });
    rep.results.into_iter().all(|ok| ok)
}

/// Generated write patterns: for race-free slots, every process sees every
/// write after the next barrier, for 2-4 processes, under both protocols.
#[test]
fn generated_barrier_patterns_make_single_writer_slots_visible() {
    let mut rng = Rng(0xC0FFEE);
    for case in 0..12 {
        let nprocs = 2 + (rng.below(3) as usize);
        let nwrites = 1 + rng.below(23) as usize;
        let writes: Vec<(u8, u16)> = (0..nwrites)
            .map(|_| (rng.below(8) as u8, rng.below(512) as u16))
            .collect();
        for protocol in ProtocolKind::all() {
            assert!(
                barrier_visibility(protocol, nprocs, writes.clone()),
                "case {case} failed under {protocol}: nprocs={nprocs} writes={writes:?}"
            );
        }
    }
}

/// The virtual time of a run never decreases when the same program sends
/// strictly more data — under either protocol.
#[test]
fn bigger_transfers_cost_more_time() {
    for protocol in ProtocolKind::all() {
        let mut rng = Rng(7);
        for _ in 0..4 {
            let size_kb = 1 + rng.below(63) as usize;
            let small = transfer_time(protocol, size_kb * 1024);
            let large = transfer_time(protocol, size_kb * 1024 * 4);
            assert!(
                large >= small,
                "{protocol}: {size_kb}KB cost {small}, 4x cost {large}"
            );
        }
    }
}

/// Both backends must produce identical results for the same race-free
/// program; only the traffic differs.  HLRC resolves a multi-writer fault in
/// one round trip where LRC needs one per concurrent writer.
#[test]
fn protocols_agree_while_hlrc_needs_fewer_fault_round_trips() {
    let run = |protocol: ProtocolKind| {
        Cluster::run(ClusterConfig::calibrated_fddi(4), move |p| {
            let tmk = Tmk::with_heap_and_protocol(p, 1 << 20, protocol);
            let region = tmk.malloc_aligned(4096, 4096);
            tmk.barrier(0);
            // Three concurrent writers of one page, then everyone reads —
            // the repeated-fault workload, round after round.
            for round in 0..4u32 {
                if tmk.id() < 3 {
                    let base = region + tmk.id() * 1024;
                    for i in 0..8 {
                        tmk.write_i64(base + i * 8, (round as usize * 100 + i) as i64);
                    }
                }
                tmk.barrier(1 + 2 * round);
                let mut sum = 0i64;
                for w in 0..3 {
                    sum += tmk.read_i64(region + w * 1024);
                }
                tmk.barrier(2 + 2 * round);
                assert_eq!(sum, 3 * (round as i64) * 100);
            }
            let stats = tmk.stats();
            tmk.exit();
            stats
        })
    };
    let lrc = run(ProtocolKind::Lrc);
    let hlrc = run(ProtocolKind::Hlrc);
    let lrc_trips: u64 = lrc.results.iter().map(|s| s.fault_round_trips()).sum();
    let hlrc_trips: u64 = hlrc.results.iter().map(|s| s.fault_round_trips()).sum();
    assert!(
        hlrc_trips < lrc_trips,
        "HLRC {hlrc_trips} round trips vs LRC {lrc_trips}"
    );
    // HLRC retains no diff garbage: nothing is ever applied outside a home.
    assert!(hlrc.results.iter().all(|s| s.diffs_applied == 0));
}

fn transfer_time(protocol: ProtocolKind, bytes: usize) -> f64 {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), move |p| {
        let tmk = Tmk::with_heap_and_protocol(p, 4 << 20, protocol);
        let a = tmk.malloc(bytes);
        if tmk.id() == 0 {
            tmk.write_bytes(a, &vec![7u8; bytes]);
        }
        tmk.barrier(0);
        if tmk.id() == 1 {
            let mut buf = vec![0u8; bytes];
            tmk.read_bytes(a, &mut buf);
            assert!(buf.iter().all(|&b| b == 7));
        }
        tmk.barrier(1);
        tmk.exit();
    });
    rep.parallel_time()
}

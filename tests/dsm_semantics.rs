//! Integration and property-based tests of the DSM's consistency guarantees,
//! exercised through the public API across the cluster substrate.

use netws::cluster::{Cluster, ClusterConfig};
use netws::treadmarks::Tmk;
use proptest::prelude::*;

/// Lock-protected read-modify-write sequences from every process must behave
/// as if executed atomically (lazy release consistency with proper locking
/// gives sequentially consistent results for data-race-free programs).
#[test]
fn lock_protected_counters_are_exact_at_eight_processes() {
    let n = 8;
    let iters = 10;
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::new(p);
        let counters = tmk.malloc(4 * 8);
        tmk.barrier(0);
        for i in 0..iters {
            let lock = (i % 4) as u32;
            tmk.lock_acquire(lock);
            let addr = counters + (lock as usize) * 8;
            let v = tmk.read_i64(addr);
            tmk.write_i64(addr, v + 1);
            tmk.lock_release(lock);
        }
        tmk.barrier(1);
        let total: i64 = (0..4).map(|k| tmk.read_i64(counters + k * 8)).sum();
        tmk.exit();
        total
    });
    assert!(rep.results.iter().all(|&t| t == (n * iters) as i64));
}

/// Barrier-separated phases: values written before a barrier are visible to
/// every process after it, for arbitrary write patterns.
fn barrier_visibility(nprocs: usize, writes: Vec<(u8, u16)>) -> bool {
    let writes = std::sync::Arc::new(writes);
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(nprocs), {
        let writes = writes.clone();
        move |p| {
            let tmk = Tmk::with_heap(p, 1 << 20);
            let region = tmk.malloc(64 * 1024);
            tmk.barrier(0);
            // Each process writes the subset of slots assigned to it.
            for (k, &(owner, slot)) in writes.iter().enumerate() {
                if owner as usize % p.nprocs() == p.id() {
                    tmk.write_i64(region + (slot as usize) * 8, (k + 1) as i64);
                }
            }
            tmk.barrier(1);
            // Every process observes the last write to every slot.
            let mut ok = true;
            for (k, &(_, slot)) in writes.iter().enumerate() {
                let expect_latest = writes
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.1 == slot)
                    .map(|(i, _)| i + 1)
                    .max()
                    .unwrap();
                let got = tmk.read_i64(region + (slot as usize) * 8);
                // Slots written by several owners in the same interval are
                // data races; restrict the check to single-writer slots.
                let writers: std::collections::HashSet<usize> = writes
                    .iter()
                    .filter(|w| w.1 == slot)
                    .map(|w| w.0 as usize % p.nprocs())
                    .collect();
                if writers.len() == 1 && got != expect_latest as i64 {
                    let _ = k;
                    ok = false;
                }
            }
            tmk.exit();
            ok
        }
    });
    rep.results.into_iter().all(|ok| ok)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for race-free write patterns, every process sees every
    /// write after the next barrier, for 2-5 processes and arbitrary slots.
    #[test]
    fn prop_barrier_makes_single_writer_slots_visible(
        nprocs in 2usize..5,
        writes in prop::collection::vec((0u8..8, 0u16..512), 1..24),
    ) {
        prop_assert!(barrier_visibility(nprocs, writes));
    }

    /// Property: the virtual time of a run never decreases when the same
    /// program sends strictly more data.
    #[test]
    fn prop_bigger_transfers_cost_more_time(size_kb in 1usize..64) {
        let small = transfer_time(size_kb * 1024);
        let large = transfer_time(size_kb * 1024 * 4);
        prop_assert!(large >= small);
    }
}

fn transfer_time(bytes: usize) -> f64 {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), move |p| {
        let tmk = Tmk::with_heap(p, 4 << 20);
        let a = tmk.malloc(bytes);
        if tmk.id() == 0 {
            tmk.write_bytes(a, &vec![7u8; bytes]);
        }
        tmk.barrier(0);
        if tmk.id() == 1 {
            let mut buf = vec![0u8; bytes];
            tmk.read_bytes(a, &mut buf);
            assert!(buf.iter().all(|&b| b == 7));
        }
        tmk.barrier(1);
        tmk.exit();
    });
    rep.parallel_time()
}

//! The observability determinism battery: traces, histograms and profiles
//! are **byte-identical** across reruns and `--jobs` widths, and recording
//! them never perturbs the simulation itself.
//!
//! Everything the obs layer emits is stamped in virtual time and rendered
//! with integer formatting, so the Chrome-trace export and the metrics
//! report are pure functions of the requested matrix — the same guarantee
//! the determinism suite asserts for Table 1/2, extended to the new
//! instrumentation.  The cross-check against the Table-2 counters
//! (span counts vs `TmkStats`) runs inside the runner under the
//! `oracle-checks` feature; here we assert the aggregate identities that
//! hold unconditionally.

use bench::obs::{chrome_trace_json, metrics_report, validate_json};
use bench::{run_matrix_obs, Preset, RunKey, RunMatrix};
use netws::apps::runner::System;
use netws::apps::Workload;
use netws::cluster::{obs, ObsLevel, SpanCat};

/// Every Tiny app under every system (all three DSM backends plus PVM) at
/// two processes: the full instrumented matrix of the battery.
fn all_keys(nprocs: usize) -> Vec<RunKey> {
    Workload::all()
        .into_iter()
        .flat_map(|w| {
            System::all()
                .into_iter()
                .map(move |sys| RunKey::fddi(w, sys, nprocs))
        })
        .collect()
}

fn traced_matrix(jobs: usize) -> RunMatrix {
    run_matrix_obs(Preset::Tiny, &[], &all_keys(2), jobs, ObsLevel::Trace)
}

#[test]
fn traces_and_metrics_are_byte_identical_across_reruns_and_job_widths() {
    let serial = traced_matrix(1);
    let wide = traced_matrix(4);
    let rerun = traced_matrix(4);
    let (t1, t2, t3) = (
        chrome_trace_json(&serial),
        chrome_trace_json(&wide),
        chrome_trace_json(&rerun),
    );
    assert_eq!(t1, t2, "trace differs between --jobs 1 and --jobs 4");
    assert_eq!(t2, t3, "trace differs between two identical runs");
    validate_json(&t1).expect("exported trace is structurally valid JSON");
    let (m1, m2, m3) = (
        metrics_report(&serial),
        metrics_report(&wide),
        metrics_report(&rerun),
    );
    assert_eq!(m1, m2, "metrics report differs between job widths");
    assert_eq!(m2, m3, "metrics report differs between two identical runs");
    // Every run of the matrix appears in the trace as a named process.
    for (key, _) in serial.runs() {
        let label = format!(
            "{}/{}/{}/p{}",
            key.workload.name(),
            key.system,
            key.net.label(),
            key.nprocs
        );
        assert!(t1.contains(&label), "run {label} missing from the trace");
        assert!(m1.contains(&label), "run {label} missing from the report");
    }
}

#[test]
fn recording_does_not_perturb_the_simulation() {
    // The sink only *reads* the virtual clock, so Off vs Trace must agree
    // on every bit of the simulation's own output: times, checksums,
    // message counts, per-process stats.
    let keys = all_keys(2);
    let off = run_matrix_obs(Preset::Tiny, &[], &keys, 4, ObsLevel::Off);
    let traced = run_matrix_obs(Preset::Tiny, &[], &keys, 4, ObsLevel::Trace);
    for key in &keys {
        let (a, b) = (off.run(key), traced.run(key));
        assert_eq!(a.time.to_bits(), b.time.to_bits(), "{key:?}: time");
        assert_eq!(
            a.checksum.to_bits(),
            b.checksum.to_bits(),
            "{key:?}: checksum"
        );
        assert_eq!(a.messages, b.messages, "{key:?}: messages");
        assert_eq!(
            a.kilobytes.to_bits(),
            b.kilobytes.to_bits(),
            "{key:?}: kilobytes"
        );
        assert_eq!(
            format!("{:?}", a.proc_stats),
            format!("{:?}", b.proc_stats),
            "{key:?}: per-process stats"
        );
        assert!(a.obs.is_none(), "{key:?}: Off run carries recordings");
        assert!(b.obs.is_some(), "{key:?}: Trace run lost its recordings");
    }
}

#[test]
fn profile_attribution_never_exceeds_finish_time() {
    // Self-time attribution is disjoint (nested spans subtract), so the sum
    // of every category's self time is bounded by the process's finish
    // time, leaving a non-negative compute residual on every rank.
    let keys = all_keys(4);
    let m = run_matrix_obs(Preset::Tiny, &[], &keys, 4, ObsLevel::Metrics);
    for (key, run) in m.runs() {
        let cobs = run.obs.as_ref().expect("metrics run has recordings");
        assert_eq!(cobs.procs.len(), run.nprocs, "{key:?}: rank count");
        for (rank, po) in cobs.procs.iter().enumerate() {
            let finish = obs::ns(run.proc_stats[rank].finish_time);
            assert!(
                po.total_attributed_ns() <= finish,
                "{key:?} rank {rank}: attributed {} ns > finish {} ns",
                po.total_attributed_ns(),
                finish
            );
        }
        // At metrics level no event stream is kept.
        assert!(
            cobs.central.is_empty(),
            "{key:?}: central events at Metrics"
        );
        assert!(
            cobs.procs.iter().all(|p| p.events.is_empty()),
            "{key:?}: span events at Metrics"
        );
    }
}

#[test]
fn span_counts_agree_with_the_dsm_counters() {
    // The aggregate form of the oracle (the per-rank form runs in the
    // runner under `oracle-checks`): summed span counts equal the summed
    // Table-2 protocol counters on every DSM run.
    let keys = all_keys(2);
    let m = run_matrix_obs(Preset::Tiny, &[], &keys, 4, ObsLevel::Metrics);
    for (key, run) in m.runs() {
        let Some(tmk) = &run.tmk_stats else { continue };
        let cobs = run.obs.as_ref().expect("metrics run has recordings");
        assert_eq!(
            cobs.merged_hist(SpanCat::Fault).count(),
            tmk.page_faults,
            "{key:?}: fault spans vs page_faults"
        );
        assert_eq!(
            cobs.merged_hist(SpanCat::BarrierWait).count(),
            tmk.barriers,
            "{key:?}: barrier-wait spans vs barriers"
        );
        assert_eq!(
            cobs.merged_hist(SpanCat::LockWait).count(),
            tmk.remote_lock_acquires,
            "{key:?}: lock-wait spans vs remote_lock_acquires"
        );
        assert_eq!(
            cobs.merged_hist(SpanCat::Gc).count(),
            tmk.gc_collections,
            "{key:?}: gc spans vs gc_collections"
        );
    }
}

#[test]
fn trace_event_counts_match_transport_counters() {
    // At trace level, the central stream holds exactly one Send per logical
    // message sent and one Consume per message received, per rank.
    let keys = all_keys(3);
    let m = run_matrix_obs(Preset::Tiny, &[], &keys, 4, ObsLevel::Trace);
    for (key, run) in m.runs() {
        let cobs = run.obs.as_ref().expect("traced run has recordings");
        let mut sends = vec![0u64; run.nprocs];
        let mut consumes = vec![0u64; run.nprocs];
        for ev in &cobs.central {
            match ev.kind {
                netws::cluster::obs::EventKind::Send { .. } => sends[ev.rank as usize] += 1,
                netws::cluster::obs::EventKind::Consume { .. } => consumes[ev.rank as usize] += 1,
                _ => {}
            }
        }
        for (rank, st) in run.proc_stats.iter().enumerate() {
            assert_eq!(
                sends[rank], st.messages_sent,
                "{key:?} rank {rank}: trace sends vs messages_sent"
            );
            assert_eq!(
                consumes[rank], st.messages_received,
                "{key:?} rank {rank}: trace consumes vs messages_received"
            );
        }
    }
}

//! The protocol-conformance suite: every [`ConsistencyProtocol`] backend —
//! present and future — must pass the same battery, run here over
//! `ProtocolKind::all()`.  A new backend added to the protocol layer
//! inherits this harness for free: add the variant, and these tests run it.
//!
//! The battery checks the contract every backend owes the runtime,
//! regardless of *how* it moves data:
//!
//! * **release/acquire visibility** — writes made under a lock are visible
//!   to the next holder of that lock;
//! * **barrier visibility** — writes made before a barrier are visible to
//!   every process after it, including multi-writer false sharing;
//! * **GC determinism** — enabling barrier-time metadata collection changes
//!   no application result, bit for bit;
//! * **bit-identical double runs** — the full report (every virtual time
//!   and counter on every process) of a mixed lock/barrier workload is
//!   identical across runs;
//! * **cross-backend agreement** — all backends compute bit-identical
//!   application answers; only the traffic may differ;
//! * **single-process silence** — one process never sends a message.
//!
//! The visibility programs themselves live in `bench::invariants` (promoted
//! there so the fuzzing harness can run them under arbitrary fault plans
//! and schedule seeds); this suite runs them on the clean calibrated
//! testbed, where anything short of a clean pass is a hard failure.

use bench::invariants::{self, RunVerdict};
use netws::cluster::{Cluster, ClusterConfig, ClusterReport};
use netws::treadmarks::{ProtocolKind, Tmk};

fn run_under<R: Send>(
    protocol: ProtocolKind,
    n: usize,
    f: impl Fn(&Tmk) -> R + Send + Sync,
) -> ClusterReport<R> {
    Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let r = f(&tmk);
        tmk.exit();
        r
    })
}

/// A mixed workload exercising every visibility edge: barrier-published
/// initialisation, a lock-protected counter, migratory data, and two
/// processes falsely sharing one page.  Returns a value derived from every
/// shared location read.
fn mixed_workload(tmk: &Tmk) -> i64 {
    let n = tmk.nprocs();
    let grid = tmk.malloc_aligned(4096, 4096);
    let counter = tmk.malloc(8);
    let block = tmk.malloc(256);
    if tmk.id() == 0 {
        for i in 0..64 {
            tmk.write_i64(grid + i * 8, i as i64);
        }
    }
    tmk.barrier(0);
    let mut sum = 0;
    for i in 0..64 {
        sum += tmk.read_i64(grid + i * 8);
    }
    for _ in 0..4 {
        tmk.lock_acquire(0);
        let v = tmk.read_i64(counter);
        tmk.write_i64(counter, v + 1);
        tmk.lock_release(0);
    }
    for round in 0..n {
        if tmk.id() == round {
            tmk.lock_acquire(1);
            for i in 0..8 {
                tmk.write_i64(block + i * 8, (round * 10 + i) as i64);
            }
            tmk.lock_release(1);
        }
        tmk.barrier(1 + round as u32);
    }
    // False sharing: the two lowest ranks write disjoint halves of the grid
    // page, everyone reads both afterwards.
    if tmk.id() < 2 {
        tmk.write_i64(grid + 2048 + tmk.id() * 8, (100 + tmk.id()) as i64);
    }
    tmk.barrier(100);
    sum += tmk.read_i64(counter);
    sum += tmk.read_i64(block);
    sum += tmk.read_i64(grid + 2048) + tmk.read_i64(grid + 2056);
    sum
}

fn mixed_expect(n: i64) -> i64 {
    (0..64).sum::<i64>() + 4 * n + (n - 1) * 10 + 100 + 101
}

#[test]
fn every_backend_sees_writes_after_release_and_acquire() {
    // The lock-token program lives in bench::invariants (the fuzzer runs it
    // under arbitrary fault plans); on the clean testbed it must pass.
    let cfg = ClusterConfig::calibrated_fddi(4);
    for protocol in ProtocolKind::all() {
        let v = invariants::check_release_acquire(&cfg, protocol);
        assert_eq!(v, RunVerdict::Pass, "{protocol}: {}", v.summary());
    }
}

#[test]
fn every_backend_sees_writes_after_a_barrier() {
    // The multi-writer page-publication program lives in bench::invariants
    // (false sharing under a single-writer protocol, multi-writer diffs
    // under LRC/HLRC); on the clean testbed it must pass.
    let cfg = ClusterConfig::calibrated_fddi(4);
    for protocol in ProtocolKind::all() {
        let v = invariants::check_barrier_visibility(&cfg, protocol);
        assert_eq!(v, RunVerdict::Pass, "{protocol}: {}", v.summary());
    }
}

#[test]
fn every_backend_is_gc_transparent() {
    // Turning barrier-time metadata collection on must not change a single
    // result bit; whatever a backend retains, collecting it is invisible.
    for protocol in ProtocolKind::all() {
        let n = 4;
        let run = |gc_threshold: u64| {
            run_under(protocol, n, move |tmk| {
                tmk.set_gc_threshold(gc_threshold);
                mixed_workload(tmk)
            })
        };
        let without = run(u64::MAX);
        let with = run(4);
        assert_eq!(
            without.results, with.results,
            "{protocol}: GC changed application results"
        );
        for (rank, (a, b)) in without.results.iter().zip(&with.results).enumerate() {
            assert_eq!(*a, *b, "{protocol}: process {rank} diverged under GC");
        }
    }
}

#[test]
fn every_backend_is_bit_deterministic_across_runs() {
    for protocol in ProtocolKind::all() {
        let n = 4;
        let go = || run_under(protocol, n, mixed_workload);
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results, "{protocol}: results differ");
        for (sa, sb) in a.stats.iter().zip(&b.stats) {
            assert_eq!(
                sa.finish_time.to_bits(),
                sb.finish_time.to_bits(),
                "{protocol}: process {} finish time differs",
                sa.id
            );
            assert_eq!(
                sa.idle_time.to_bits(),
                sb.idle_time.to_bits(),
                "{protocol}: process {} idle time differs",
                sa.id
            );
            assert_eq!(
                sa.messages_sent, sb.messages_sent,
                "{protocol}: process {} message count differs",
                sa.id
            );
            assert_eq!(
                sa.bytes_sent, sb.bytes_sent,
                "{protocol}: process {} byte count differs",
                sa.id
            );
        }
    }
}

/// The conservative PDES island scheduler is invisible to every backend:
/// the mixed lock/barrier workload produces a bit-identical full report —
/// results, every virtual time, every traffic counter, on every process —
/// at `islands` widths 1, 2 and 4.  Width 1 is the flat reference arbiter.
#[test]
fn every_backend_is_bit_identical_at_every_island_width() {
    for protocol in ProtocolKind::all() {
        let n = 4;
        let at_width = |islands: usize| {
            let mut cfg = ClusterConfig::calibrated_fddi(n);
            cfg.islands = islands;
            Cluster::run(cfg, move |p| {
                let tmk = Tmk::with_protocol(p, protocol);
                let r = mixed_workload(&tmk);
                tmk.exit();
                r
            })
        };
        let flat = at_width(1);
        for islands in [2usize, 4] {
            let wide = at_width(islands);
            assert_eq!(
                flat.results, wide.results,
                "{protocol}: results differ at islands={islands}"
            );
            for (sa, sb) in flat.stats.iter().zip(&wide.stats) {
                assert_eq!(
                    sa.finish_time.to_bits(),
                    sb.finish_time.to_bits(),
                    "{protocol}: process {} finish time differs at islands={islands}",
                    sa.id
                );
                assert_eq!(
                    sa.idle_time.to_bits(),
                    sb.idle_time.to_bits(),
                    "{protocol}: process {} idle time differs at islands={islands}",
                    sa.id
                );
                assert_eq!(
                    sa.messages_sent, sb.messages_sent,
                    "{protocol}: process {} message count differs at islands={islands}",
                    sa.id
                );
                assert_eq!(
                    sa.bytes_sent, sb.bytes_sent,
                    "{protocol}: process {} byte count differs at islands={islands}",
                    sa.id
                );
            }
        }
    }
}

#[test]
fn all_backends_agree_on_application_results() {
    let n = 4;
    let mut per_protocol = Vec::new();
    for protocol in ProtocolKind::all() {
        let rep = run_under(protocol, n, mixed_workload);
        let expect = mixed_expect(n as i64);
        assert!(
            rep.results.iter().all(|&v| v == expect),
            "{protocol}: got {:?}, expected {expect}",
            rep.results
        );
        per_protocol.push(rep.results);
    }
    // Observational equivalence: bit-equal results, not merely "correct".
    for pair in per_protocol.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn every_backend_is_silent_on_a_single_process() {
    for protocol in ProtocolKind::all() {
        let rep = run_under(protocol, 1, |tmk| {
            let a = tmk.malloc(1024);
            tmk.barrier(0);
            tmk.lock_acquire(0);
            tmk.write_f64(a, 3.25);
            tmk.lock_release(0);
            tmk.barrier(1);
            tmk.read_f64(a)
        });
        assert_eq!(rep.results[0], 3.25, "{protocol}");
        assert_eq!(rep.total_messages(), 0, "{protocol}: a lone process spoke");
    }
}

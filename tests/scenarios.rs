//! The scenario subsystem end to end: every interconnect preset is exactly
//! as deterministic as the paper's FDDI testbed, scenario files round-trip
//! through parse → run → re-serialise, and nothing in the stack silently
//! assumes the paper's 8 ranks.

use bench::scenario::ResolvedScenario;
use bench::{run_matrix, run_parallel_on, run_sequential, Preset, RunKey};
use netws::apps::runner::{AppRun, System};
use netws::apps::Workload;
use netws::cluster::{NetModel, NetPreset, Scenario};
use std::path::Path;
use treadmarks::ProtocolKind;

fn run_once(w: Workload, sys: System, net: NetModel, nprocs: usize) -> AppRun {
    run_parallel_on(w, sys, &net.config(nprocs), Preset::Tiny)
}

/// Every *new* net preset (Ethernet, ATM, ideal — FDDI is covered by
/// `determinism.rs`), every Tiny app, every system, run twice: the full
/// report — virtual times, counters, per-process stats — must be
/// bit-identical.  `AppRun`'s Debug output prints floats in
/// shortest-round-trip form, so Debug equality is bit-identity.
#[test]
fn every_new_net_preset_is_bit_deterministic() {
    let presets = [NetPreset::Ethernet, NetPreset::Atm, NetPreset::Ideal];
    for preset in presets {
        let net = NetModel::preset(preset);
        for w in Workload::all() {
            // System::all(): a future backend is covered automatically.
            for sys in System::all() {
                let first = run_once(w, sys, net, 4);
                let second = run_once(w, sys, net, 4);
                assert_eq!(
                    format!("{first:?}"),
                    format!("{second:?}"),
                    "{} under {sys} on {} is not bit-deterministic",
                    w.name(),
                    net.label()
                );
            }
        }
    }
}

/// The interconnect changes the clock, never the answer: on every preset,
/// every Tiny app reproduces its sequential checksum.
#[test]
fn every_net_preset_preserves_application_answers() {
    for preset in NetPreset::all() {
        let net = NetModel::preset(preset);
        for w in Workload::all() {
            let seq = run_sequential(w, Preset::Tiny);
            let run = run_once(w, System::TreadMarks(ProtocolKind::Lrc), net, 4);
            assert!(
                (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                "{} on {}: checksum {} vs sequential {}",
                w.name(),
                net.label(),
                run.checksum,
                seq.checksum
            );
        }
    }
}

/// Parse → run → re-serialise: the canonical serialisation of a parsed
/// scenario file reparses to the identical scenario, and a matrix computed
/// from the reparsed scenario is bit-identical to one computed from the
/// original.
#[test]
fn scenario_files_round_trip_through_parse_run_reserialize() {
    let path = Path::new("examples/scenarios/ethernet_tiny_ci.toml");
    let original = Scenario::from_path(path).expect("checked-in scenario must parse");
    let reparsed = Scenario::parse_toml(&original.to_toml()).expect("canonical form must parse");
    assert_eq!(reparsed, original, "to_toml() changed the scenario");

    let run_scenario = |s: &Scenario| {
        let r = ResolvedScenario::resolve(s, Preset::Scaled, 8).expect("resolvable");
        assert_eq!(r.preset, Preset::Tiny, "the CI scenario pins tiny inputs");
        let keys: Vec<RunKey> = r
            .workloads
            .iter()
            .flat_map(|&w| {
                r.systems
                    .iter()
                    .map(move |&sys| RunKey::new(w, sys, r.net, r.max_procs))
            })
            .collect();
        let matrix = run_matrix(r.preset, &r.workloads, &keys, 2);
        let mut rendered = String::new();
        for key in &keys {
            rendered.push_str(&bench::run_record_json(key, matrix.run(key)));
            rendered.push('\n');
        }
        rendered
    };
    assert_eq!(
        run_scenario(&original),
        run_scenario(&reparsed),
        "original and re-serialised scenario ran differently"
    );
}

/// Every checked-in example scenario parses, resolves, and names a
/// non-FDDI interconnect (that is their whole point).
#[test]
fn checked_in_example_scenarios_parse_and_resolve() {
    let dir = Path::new("examples/scenarios");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/scenarios exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let scenario = Scenario::from_path(&path)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let resolved = ResolvedScenario::resolve(&scenario, Preset::Scaled, 8)
            .unwrap_or_else(|e| panic!("{} does not resolve: {e}", path.display()));
        assert!(
            !resolved.workloads.is_empty() && !resolved.systems.is_empty(),
            "{} resolved to an empty run set",
            path.display()
        );
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected the three example scenarios, found {seen}"
    );
}

/// The JSON carrier is a first-class citizen: the checked-in JSON example
/// parses and pins the fields it declares.
#[test]
fn json_example_scenario_parses_with_its_declared_fields() {
    let s = Scenario::from_path(Path::new("examples/scenarios/ideal_32procs.json")).unwrap();
    assert_eq!(s.net, NetPreset::Ideal);
    assert_eq!(s.procs, Some(32));
    assert_eq!(s.workloads.len(), 3);
    assert_eq!(s.overrides.send_overhead, Some(80e-6));
    // JSON and TOML carriers meet in the same canonical TOML form.
    let round = Scenario::parse_toml(&s.to_toml()).unwrap();
    assert_eq!(round, s);
}

/// Nothing in core/cluster silently assumes the paper's 8 ranks: every
/// Tiny workload under every system runs at 16 processes and still
/// reproduces its sequential checksum.
#[test]
fn sixteen_processes_smoke_every_workload_and_system() {
    let net = NetModel::preset(NetPreset::Fddi);
    for w in Workload::all() {
        let seq = run_sequential(w, Preset::Tiny);
        for sys in System::all() {
            let run = run_once(w, sys, net, 16);
            assert_eq!(run.nprocs, 16, "{} under {sys}", w.name());
            assert!(
                (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                "{} under {sys} at 16 processes: checksum {} vs sequential {}",
                w.name(),
                run.checksum,
                seq.checksum
            );
            assert!(
                run.time > 0.0 && run.messages > 0,
                "{} under {sys}",
                w.name()
            );
        }
    }
}

/// Past-the-grid scaling: SOR's tiny grid has 16 rows, so at 32 processes
/// half the ranks own zero rows — the run must still complete, agree with
/// the sequential answer, and stay bit-deterministic (regression test for
/// the empty-band panic in the PVM boundary exchange).
#[test]
fn more_processes_than_rows_is_handled() {
    let net = NetModel::preset(NetPreset::Fddi);
    let seq = run_sequential(Workload::SorZero, Preset::Tiny);
    for sys in System::all() {
        let a = run_once(Workload::SorZero, sys, net, 32);
        let b = run_once(Workload::SorZero, sys, net, 32);
        assert!(
            (a.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
            "SOR-Zero under {sys} at 32 processes: checksum {} vs {}",
            a.checksum,
            seq.checksum
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "SOR-Zero under {sys}");
    }
}

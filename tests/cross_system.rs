//! Cross-crate integration tests: every application produces the same answer
//! under the sequential, TreadMarks (both coherence protocols) and PVM
//! implementations, and the qualitative communication relationships the
//! paper reports hold.

use netws::apps::runner::System;
use netws::apps::Workload;
use netws::treadmarks::ProtocolKind;

fn seq(w: Workload) -> netws::apps::SeqRun {
    bench_harness::run_sequential(w)
}

fn run(w: Workload, sys: System, n: usize) -> netws::apps::AppRun {
    bench_harness::run_parallel(w, sys, n)
}

// The bench crate is not a dependency of the root package (it is a harness),
// so re-derive the tiny-preset dispatch locally for the integration tests.
mod bench_harness {
    use netws::apps::runner::{AppRun, SeqRun, System};
    use netws::apps::*;

    pub fn run_sequential(w: Workload) -> SeqRun {
        match w {
            Workload::Ep => ep::sequential(&ep::EpParams::tiny()),
            Workload::SorZero => sor::sequential(&sor::SorParams::tiny(true)),
            Workload::SorNonzero => sor::sequential(&sor::SorParams::tiny(false)),
            Workload::IsSmall | Workload::IsLarge => is::sequential(&is::IsParams::tiny()),
            Workload::Tsp => tsp::sequential(&tsp::TspParams::tiny()),
            Workload::Qsort => qsort::sequential(&qsort::QsortParams::tiny()),
            Workload::Water288 | Workload::Water1728 => {
                water::sequential(&water::WaterParams::tiny())
            }
            Workload::BarnesHut => barnes::sequential(&barnes::BarnesParams::tiny()),
            Workload::Fft3d => fft3d::sequential(&fft3d::FftParams::tiny()),
            Workload::Ilink => ilink::sequential(&ilink::IlinkParams::tiny()),
        }
    }

    pub fn run_parallel(w: Workload, sys: System, n: usize) -> AppRun {
        macro_rules! go {
            ($m:ident, $params:expr) => {
                match sys {
                    System::TreadMarks(protocol) => $m::treadmarks_with(n, &$params, protocol),
                    System::Pvm => $m::pvm(n, &$params),
                }
            };
        }
        match w {
            Workload::Ep => go!(ep, ep::EpParams::tiny()),
            Workload::SorZero => go!(sor, sor::SorParams::tiny(true)),
            Workload::SorNonzero => go!(sor, sor::SorParams::tiny(false)),
            Workload::IsSmall | Workload::IsLarge => go!(is, is::IsParams::tiny()),
            Workload::Tsp => go!(tsp, tsp::TspParams::tiny()),
            Workload::Qsort => go!(qsort, qsort::QsortParams::tiny()),
            Workload::Water288 | Workload::Water1728 => go!(water, water::WaterParams::tiny()),
            Workload::BarnesHut => go!(barnes, barnes::BarnesParams::tiny()),
            Workload::Fft3d => go!(fft3d, fft3d::FftParams::tiny()),
            Workload::Ilink => go!(ilink, ilink::IlinkParams::tiny()),
        }
    }
}

#[test]
fn every_application_agrees_across_paradigms_at_three_processes() {
    for w in Workload::all() {
        let s = seq(w);
        let tol = s.checksum.abs() * 1e-6 + 1e-6;
        let mut tmk_checksums = Vec::new();
        for protocol in ProtocolKind::all() {
            let t = run(w, System::TreadMarks(protocol), 3);
            assert!(
                (t.checksum - s.checksum).abs() < tol,
                "{}: TreadMarks/{protocol} {} vs sequential {}",
                w.name(),
                t.checksum,
                s.checksum
            );
            tmk_checksums.push(t.checksum);
        }
        // The two protocol backends are observationally identical: bit-equal
        // application results, not merely within tolerance.
        assert_eq!(
            tmk_checksums[0],
            tmk_checksums[1],
            "{}: LRC and HLRC disagree",
            w.name()
        );
        let m = run(w, System::Pvm, 3);
        assert!(
            (m.checksum - s.checksum).abs() < tol,
            "{}: PVM {} vs sequential {}",
            w.name(),
            m.checksum,
            s.checksum
        );
    }
}

#[test]
fn single_process_runs_match_the_sequential_answer() {
    for w in [
        Workload::Ep,
        Workload::IsSmall,
        Workload::Qsort,
        Workload::Fft3d,
    ] {
        let s = seq(w);
        for protocol in ProtocolKind::all() {
            let t = run(w, System::TreadMarks(protocol), 1);
            let tol = s.checksum.abs() * 1e-9 + 1e-9;
            assert!(
                (t.checksum - s.checksum).abs() < tol,
                "{} under {protocol}",
                w.name()
            );
            // A single DSM process exchanges no messages at all.
            assert_eq!(t.messages, 0, "{} under {protocol}", w.name());
        }
    }
}

#[test]
fn treadmarks_always_sends_at_least_as_many_messages_as_pvm() {
    // The paper's across-the-board observation: the separation of
    // synchronization and data transfer plus the request/response protocol
    // means the DSM never sends fewer messages than hand-written message
    // passing — under either coherence protocol.
    for w in Workload::all() {
        let m = run(w, System::Pvm, 4);
        for protocol in ProtocolKind::all() {
            let t = run(w, System::TreadMarks(protocol), 4);
            assert!(
                t.messages >= m.messages,
                "{}: TreadMarks/{protocol} {} msgs < PVM {} msgs",
                w.name(),
                t.messages,
                m.messages
            );
        }
    }
}

#[test]
fn parallel_time_never_beats_the_work_bound() {
    // Virtual parallel time can never be smaller than the sequential work
    // divided by the process count (no superlinear artefacts in the model).
    for w in [Workload::Ep, Workload::SorNonzero, Workload::Ilink] {
        let s = seq(w);
        for protocol in ProtocolKind::all() {
            for n in [2usize, 4] {
                let t = run(w, System::TreadMarks(protocol), n);
                assert!(
                    t.time * (n as f64) * 1.02 >= s.time * 0.95,
                    "{} under {protocol} at {n} procs: {} * {n} < {}",
                    w.name(),
                    t.time,
                    s.time
                );
            }
        }
    }
}

//! `netws` — reproduction of *"Message Passing Versus Distributed Shared
//! Memory on Networks of Workstations"* (Lu, Dwarkadas, Cox, Zwaenepoel,
//! SC'95).
//!
//! This facade crate re-exports the workspace components so that examples and
//! integration tests can use a single dependency:
//!
//! * [`cluster`] — the simulated network-of-workstations substrate,
//! * [`msgpass`] — the PVM-style message passing library,
//! * [`treadmarks`] — the TreadMarks-style software DSM (lazy release
//!   consistency, multiple-writer protocol),
//! * [`apps`] — the nine applications of the study, in both paradigms.
//!
//! See README.md for a repo tour, the protocol-backend documentation,
//! and the reproduction methodology.

pub use apps;
pub use cluster;
pub use msgpass;
pub use treadmarks;

/// The two parallel-programming paradigms compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Explicit message passing (PVM-style).
    MessagePassing,
    /// Software distributed shared memory (TreadMarks-style).
    SharedMemory,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Paradigm::MessagePassing => write!(f, "PVM"),
            Paradigm::SharedMemory => write!(f, "TreadMarks"),
        }
    }
}

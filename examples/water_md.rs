//! Water molecular dynamics — the paper's Figure 8/9 workload.
//!
//! Runs the SPLASH Water kernel on a small and a larger molecule count and
//! shows how the TreadMarks/PVM gap narrows as the computation-to-
//! communication ratio grows (the paper's Water-288 versus Water-1728
//! comparison).
//!
//! Run with: `cargo run --release --example water_md`

use netws::apps::water::{self, WaterParams};

fn main() {
    for (label, params) in [
        (
            "Water-144",
            WaterParams {
                molecules: 144,
                steps: 2,
            },
        ),
        (
            "Water-576",
            WaterParams {
                molecules: 576,
                steps: 2,
            },
        ),
    ] {
        let seq = water::sequential(&params);
        let t = water::treadmarks(8, &params);
        let m = water::pvm(8, &params);
        println!(
            "{label}: {} molecules, sequential {:.2}s",
            params.molecules, seq.time
        );
        println!(
            "  TreadMarks: speedup {:.2}, {} msgs, {:.0} KB",
            t.speedup(seq.time),
            t.messages,
            t.kilobytes
        );
        println!(
            "  PVM:        speedup {:.2}, {} msgs, {:.0} KB",
            m.speedup(seq.time),
            m.messages,
            m.kilobytes
        );
        println!("  TMK/PVM time ratio: {:.2}\n", t.time / m.time);
    }
    println!("The ratio moves toward 1.0 for the larger input, as in the paper.");
}

//! Quickstart: the same tiny program written against both runtime systems.
//!
//! Four simulated workstations cooperatively sum a shared table — once with
//! TreadMarks-style shared memory (a lock-protected shared array and
//! barriers) and once with PVM-style message passing (explicit sends to a
//! master).  The example prints the virtual execution time, message count
//! and data volume of each version, which is exactly the comparison the
//! paper makes at full application scale.
//!
//! Run with: `cargo run --release --example quickstart`

use netws::cluster::{Cluster, ClusterConfig};
use netws::msgpass::Pvm;
use netws::treadmarks::Tmk;

const SLOTS: usize = 1024;

fn main() {
    let nprocs = 4;

    // --- TreadMarks (software distributed shared memory) -------------------
    let dsm = Cluster::run(ClusterConfig::calibrated_fddi(nprocs), |p| {
        let tmk = Tmk::new(p);
        let table = tmk.malloc(SLOTS * 8);
        tmk.barrier(0);

        // Each process fills its block of the shared table.
        let per = SLOTS / p.nprocs();
        let mine = p.id() * per..(p.id() + 1) * per;
        for i in mine {
            tmk.write_i64(table + i * 8, (i * i) as i64);
        }
        tmk.barrier(1);

        // Everyone reads the whole table and computes the total.
        let mut total = 0i64;
        for i in 0..SLOTS {
            total += tmk.read_i64(table + i * 8);
        }
        tmk.exit();
        total
    });

    // --- PVM (explicit message passing) -------------------------------------
    let mp = Cluster::run(ClusterConfig::calibrated_fddi(nprocs), |p| {
        let pvm = Pvm::new(p);
        let per = SLOTS / p.nprocs();
        let mine: Vec<i64> = (p.id() * per..(p.id() + 1) * per)
            .map(|i| (i * i) as i64)
            .collect();
        if p.id() == 0 {
            let mut table = mine;
            for _ in 1..p.nprocs() {
                let mut m = pvm.recv(None, 1);
                table.extend(m.unpack_i64(per));
            }
            let total: i64 = table.iter().sum();
            let mut b = pvm.new_buffer();
            b.pack_i64(&[total]);
            pvm.bcast(2, b);
            total
        } else {
            let mut b = pvm.new_buffer();
            b.pack_i64(&mine);
            pvm.send(0, 1, b);
            pvm.recv(Some(0), 2).unpack_i64(1)[0]
        }
    });

    let expected: i64 = (0..SLOTS as i64).map(|i| i * i).sum();
    assert!(dsm.results.iter().all(|&v| v == expected));
    assert!(mp.results.iter().all(|&v| v == expected));

    println!("shared sum = {expected} computed by both paradigms on {nprocs} workstations\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "system", "time (ms)", "messages", "kilobytes"
    );
    println!(
        "{:<12} {:>12.2} {:>12} {:>12.1}",
        "TreadMarks",
        dsm.parallel_time() * 1e3,
        dsm.total_datagrams(),
        dsm.total_kilobytes()
    );
    println!(
        "{:<12} {:>12.2} {:>12} {:>12.1}",
        "PVM",
        mp.parallel_time() * 1e3,
        mp.total_messages(),
        mp.total_kilobytes()
    );
    println!("\nThe DSM version is shorter to write but sends more messages —");
    println!("the trade-off the paper quantifies across nine applications.");
}

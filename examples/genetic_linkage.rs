//! ILINK genetic linkage analysis — the paper's Figure 12 workload, run on a
//! synthetic pedigree (the CLP clinical data set is proprietary; README.md §Design notes
//! documents the substitution).
//!
//! Prints the likelihood computed by the sequential, TreadMarks and PVM
//! versions and the speedup of each system at 8 simulated workstations.
//!
//! Run with: `cargo run --release --example genetic_linkage`

use netws::apps::ilink::{self, IlinkParams};

fn main() {
    let params = IlinkParams::scaled();
    let seq = ilink::sequential(&params);
    println!(
        "ILINK: {} nuclear families, genarrays of {} genotypes ({}% non-zero)",
        params.families,
        params.genarray,
        (params.density * 100.0) as u32
    );
    println!(
        "sequential log-likelihood {:.6}, time {:.2}s\n",
        seq.checksum, seq.time
    );

    println!("{:>6} {:>12} {:>12}", "procs", "TreadMarks", "PVM");
    for n in [2, 4, 8] {
        let t = ilink::treadmarks(n, &params);
        let m = ilink::pvm(n, &params);
        assert!((t.checksum - seq.checksum).abs() < 1e-6);
        assert!((m.checksum - seq.checksum).abs() < 1e-6);
        println!(
            "{:>6} {:>12.2} {:>12.2}",
            n,
            t.speedup(seq.time),
            m.speedup(seq.time)
        );
    }
    println!(
        "\nThe high per-element computation keeps both systems close (the paper \
         reports TreadMarks within ~10% of PVM for ILINK), even though the DSM \
         version sends one diff request per genarray page and suffers false \
         sharing from the round-robin element assignment."
    );
}

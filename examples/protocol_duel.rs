//! Every DSM coherence backend head to head on the workloads that separate
//! them: false sharing (multiple concurrent writers of one page) and
//! migratory data (a block rewritten by each process in turn).
//!
//! LRC (the paper's TreadMarks protocol) answers a fault with diff requests
//! to every concurrent writer and accumulates old diffs at the responders;
//! HLRC flushes diffs to a per-page home at every release and answers a
//! fault with one full-page fetch; SC (the sequential-consistency baseline)
//! has no diffs at all — a single writer owns each page, so false sharing
//! makes the page (and a round of invalidations) ping-pong on every
//! alternating write, which is exactly the column to watch below.  The
//! example prints, for each workload and backend, the virtual time, message
//! count, data volume, and the fault-service round trips (the flushes
//! column is HLRC's eager-flush count; it is structurally zero for LRC and
//! SC).
//!
//! The backend list comes from `ProtocolKind::all()`, so a new protocol
//! joins the duel automatically.
//!
//! Run with: `cargo run --release --example protocol_duel`

use netws::cluster::{Cluster, ClusterConfig};
use netws::treadmarks::{ProtocolKind, Tmk, TmkStats};

fn false_sharing(protocol: ProtocolKind) -> (f64, u64, f64, TmkStats) {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(4), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let a = tmk.malloc_aligned(4 * 4096, 4096);
        tmk.barrier(0);
        for round in 0..8u32 {
            if tmk.id() < 3 {
                for page in 0..4 {
                    let base = a + page * 4096 + tmk.id() * 1024;
                    for i in 0..16 {
                        tmk.write_i64(base + i * 8, (round as usize * 100 + i) as i64);
                    }
                }
            }
            tmk.barrier(1 + 2 * round);
            let mut sink = 0i64;
            for page in 0..4 {
                sink ^= tmk.read_i64(a + page * 4096);
            }
            std::hint::black_box(sink);
            tmk.barrier(2 + 2 * round);
        }
        let st = tmk.stats();
        tmk.exit();
        st
    });
    summarize(rep)
}

fn migratory(protocol: ProtocolKind) -> (f64, u64, f64, TmkStats) {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(4), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let a = tmk.malloc_aligned(16 * 1024, 4096);
        tmk.barrier(0);
        for round in 0..16u32 {
            if tmk.id() == (round as usize) % 4 {
                tmk.lock_acquire(0);
                let data = vec![round as i32 + 1; 4096];
                tmk.write_i32_slice(a, &data);
                tmk.lock_release(0);
            }
            tmk.barrier(1 + round);
        }
        let st = tmk.stats();
        tmk.exit();
        st
    });
    summarize(rep)
}

fn summarize(rep: netws::cluster::ClusterReport<TmkStats>) -> (f64, u64, f64, TmkStats) {
    let mut agg = TmkStats::default();
    for st in &rep.results {
        agg.merge(st);
    }
    (
        rep.parallel_time(),
        rep.total_datagrams(),
        rep.total_kilobytes(),
        agg,
    )
}

fn main() {
    for (name, run) in [
        (
            "false sharing (3 writers/page)",
            false_sharing as fn(ProtocolKind) -> (f64, u64, f64, TmkStats),
        ),
        ("migratory block under a lock", migratory),
    ] {
        println!("\n{name}:");
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12} {:>10}",
            "proto", "time (s)", "msgs", "KB", "fault trips", "flushes"
        );
        for protocol in ProtocolKind::all() {
            let (time, msgs, kb, stats) = run(protocol);
            println!(
                "{:>6} {:>10.4} {:>10} {:>10.1} {:>12} {:>10}",
                protocol.name(),
                time,
                msgs,
                kb,
                stats.fault_round_trips(),
                stats.diff_flushes_sent,
            );
        }
    }
}

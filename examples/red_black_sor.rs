//! Red-Black SOR under both systems — the paper's Figure 2/3 workload at a
//! reduced size, printing the speedup of each system for 1, 2, 4 and 8
//! simulated workstations and the message/data counts at 8.
//!
//! Run with: `cargo run --release --example red_black_sor`

use netws::apps::sor::{self, SorParams};

fn main() {
    let params = SorParams {
        rows: 256,
        cols: 1536, // one shared row = 6 KB = 1.5 pages, as in the paper
        iters: 8,
        zero_interior: true,
    };
    let seq = sor::sequential(&params);
    println!(
        "Red-Black SOR {}x{} ({} iterations), sequential time {:.2}s\n",
        params.rows, params.cols, params.iters, seq.time
    );
    println!("{:>6} {:>12} {:>12}", "procs", "TreadMarks", "PVM");
    for n in [1, 2, 4, 8] {
        let t = sor::treadmarks(n, &params);
        let m = sor::pvm(n, &params);
        println!(
            "{:>6} {:>12.2} {:>12.2}",
            n,
            t.speedup(seq.time),
            m.speedup(seq.time)
        );
        if n == 8 {
            println!(
                "\nat 8 processors: TreadMarks {} msgs / {:.0} KB, PVM {} msgs / {:.0} KB",
                t.messages, t.kilobytes, m.messages, m.kilobytes
            );
            println!(
                "(with a zero interior the diffs are tiny, so TreadMarks moves LESS data \
                 than PVM while sending more messages — Section 3.4 of the paper)"
            );
        }
    }
}

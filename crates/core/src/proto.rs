//! Wire protocol of the DSM runtime: message tags, interval records (write
//! notices), and their encodings.
//!
//! Message sizes matter for the reproduction: Table 2 of the paper counts the
//! UDP messages and the total amount of data TreadMarks sends, so every
//! protocol message here is encoded into real bytes whose length is what the
//! simulated network charges and counts.

use crate::page::{Diff, DiffRun, PageId};
use crate::vc::VectorClock;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Lock acquire request, requester → lock manager.
pub const TAG_LOCK_ACQ: u32 = 100;
/// Forwarded acquire request, manager → last requester.
pub const TAG_LOCK_FWD: u32 = 101;
/// Lock grant (with piggybacked write notices), last releaser → requester.
pub const TAG_LOCK_GRANT: u32 = 102;
/// Barrier arrival (with write notices), client → barrier manager.
pub const TAG_BARRIER_ARRIVE: u32 = 103;
/// Barrier release (with write notices), manager → client.
pub const TAG_BARRIER_RELEASE: u32 = 104;
/// Diff request, faulting process → a writer of the page.
pub const TAG_DIFF_REQ: u32 = 105;
/// Diff response carrying one or more diffs of the requested page.
pub const TAG_DIFF_RESP: u32 = 106;
/// Termination protocol: worker → process 0, "I am done".
pub const TAG_DONE: u32 = 107;
/// Termination protocol: process 0 → worker, "everyone is done, stop serving".
pub const TAG_TERMINATE: u32 = 108;
/// HLRC diff flush (one interval's diffs for one home), writer → home.
pub const TAG_DIFF_FLUSH: u32 = 109;
/// HLRC flush acknowledgement, home → writer.
pub const TAG_FLUSH_ACK: u32 = 110;
/// HLRC full-page fetch request, faulting process → page home.
pub const TAG_PAGE_REQ: u32 = 111;
/// HLRC full-page fetch response carrying the master copy, home → requester.
pub const TAG_PAGE_RESP: u32 = 112;
/// SC write-ownership request, faulting writer → page manager.
pub const TAG_SC_WRITE_REQ: u32 = 120;
/// SC forwarded write-ownership request, manager → the previous requester
/// (the token chain; same `(page, requester)` payload as the request).
pub const TAG_SC_WRITE_FWD: u32 = 121;
/// SC ownership transfer carrying the page (and the copyset to invalidate),
/// old owner → new owner.
pub const TAG_SC_PAGE_XFER: u32 = 122;
/// SC read-copy request, faulting reader → page manager.
pub const TAG_SC_READ_REQ: u32 = 123;
/// SC forwarded read-copy request, manager → the token-chain predecessor
/// (same `(page, requester)` payload as the request).
pub const TAG_SC_READ_FWD: u32 = 124;
/// SC read copy of the page, owner → reader.
pub const TAG_SC_PAGE_COPY: u32 = 125;
/// SC invalidation, new owner → copyset member.
pub const TAG_SC_INVAL: u32 = 126;
/// SC invalidation acknowledgement, member → new owner.
pub const TAG_SC_INVAL_ACK: u32 = 127;

/// A reusable wire-encoding buffer for the hot send paths.
///
/// Every message used to be encoded into a fresh `BytesMut::new()`, which
/// grew by doubling while records were appended — several reallocations and
/// copies per message — before one more copy froze it into its final
/// allocation.  A `WireBuf` instead computes the exact message size up
/// front, stages the bytes in one long-lived `BytesMut` that is reused
/// (and therefore stops growing) across messages, and copies once into an
/// exactly-sized immutable [`Bytes`].
#[derive(Debug, Default)]
pub struct WireBuf {
    buf: BytesMut,
}

impl WireBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a message of exactly `size` bytes.
    fn begin(&mut self, size: usize) -> &mut BytesMut {
        debug_assert!(self.buf.is_empty(), "unfinished message in the wire buffer");
        self.buf.reserve(size);
        &mut self.buf
    }

    /// Freeze the written message out of the buffer, asserting its exact
    /// size, and clear the buffer (retaining its allocation) for the next
    /// message.
    fn finish(&mut self, expect: usize) -> Bytes {
        debug_assert_eq!(self.buf.len(), expect, "wire message mis-sized");
        let out = Bytes::copy_from_slice(&self.buf);
        self.buf.clear();
        out
    }
}

/// Encode a lock grant or barrier message — the two share the layout
/// `(u32 head, vc, records)` — with the records spliced in by the caller
/// from their pre-encoded wire buffers.  `nrecords`/`records_len` are the
/// count and summed byte length the splice will write; the message is
/// encoded into `wire` at exactly that pre-computed size.  Byte-identical
/// to [`encode_lock_grant`] / [`encode_barrier`] over the same records.
pub fn encode_sync_spliced(
    wire: &mut WireBuf,
    head: u32,
    vc: &VectorClock,
    nrecords: usize,
    records_len: usize,
    splice: impl FnOnce(&mut BytesMut),
) -> Bytes {
    let size = 8 + 4 * vc.len() + records_len;
    let b = wire.begin(size);
    b.put_u32_le(head);
    put_vc(b, vc);
    b.put_u32_le(nrecords as u32);
    splice(b);
    wire.finish(size)
}

/// Wire size of one encoded diff (what [`encode_diff_response_preencoded`]
/// writes per diff after the `(creator, seq, vc)` prefix).
fn diff_wire_len(diff: &Diff) -> usize {
    4 + diff.runs.iter().map(|r| 4 + r.data.len()).sum::<usize>()
}

/// [`encode_diff_response_preencoded`] into a reusable, exactly pre-sized
/// [`WireBuf`] — the serving path of the diff store.
pub fn encode_diff_response_into(
    wire: &mut WireBuf,
    page: PageId,
    parts: &[DiffResponsePart<'_>],
) -> Bytes {
    let size = 8
        + parts
            .iter()
            .map(|(_, _, vcw, diff)| 8 + vcw.len() + diff_wire_len(diff))
            .sum::<usize>();
    let b = wire.begin(size);
    b.put_u32_le(page);
    b.put_u32_le(parts.len() as u32);
    for (creator, seq, vc_wire, diff) in parts {
        b.put_u32_le(*creator as u32);
        b.put_u32_le(*seq);
        b.put_slice(vc_wire);
        put_diff(b, diff);
    }
    wire.finish(size)
}

/// True if `tag` is a request that must be served by the runtime's service
/// loop even while the process is blocked waiting for something else.
pub fn is_request_tag(tag: u32) -> bool {
    matches!(
        tag,
        TAG_LOCK_ACQ
            | TAG_LOCK_FWD
            | TAG_BARRIER_ARRIVE
            | TAG_DIFF_REQ
            | TAG_DONE
            | TAG_DIFF_FLUSH
            | TAG_PAGE_REQ
            | TAG_SC_WRITE_REQ
            | TAG_SC_WRITE_FWD
            | TAG_SC_READ_REQ
            | TAG_SC_READ_FWD
            | TAG_SC_INVAL
    )
}

/// A write-notice record: one closed interval of one process, listing the
/// pages that process modified during the interval, together with the
/// interval's vector timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Process that created the interval.
    pub creator: usize,
    /// 1-based sequence number of the interval on its creator.
    pub seq: u32,
    /// Vector timestamp of the interval.
    pub vc: VectorClock,
    /// Pages modified during the interval (the write notices).
    pub pages: Vec<PageId>,
}

/// Append `vc` to `buf` in wire order (little-endian `u32` entries).
pub fn put_vc(buf: &mut BytesMut, vc: &VectorClock) {
    for &e in vc.entries() {
        buf.put_u32_le(e);
    }
}

/// The standalone wire encoding of `vc`.
///
/// Hot senders pre-encode vector clocks once (when a record or stored diff
/// is created) and splice the buffer into every later message instead of
/// cloning the clock and re-serialising it per send.
pub fn vc_wire(vc: &VectorClock) -> Bytes {
    let mut b = BytesMut::with_capacity(4 * vc.len());
    put_vc(&mut b, vc);
    b.freeze()
}

fn get_vc(buf: &mut Bytes, nprocs: usize) -> VectorClock {
    let entries = (0..nprocs).map(|_| buf.get_u32_le()).collect();
    VectorClock::from_entries(entries)
}

/// The standalone wire encoding of one interval record, computed once when
/// the record enters a process's interval log and spliced (a memcpy) into
/// every lock grant or barrier message that later carries the record.
pub fn record_wire(r: &IntervalRecord) -> Bytes {
    let mut b = BytesMut::with_capacity(16 + 4 * r.vc.len() + 4 * r.pages.len());
    put_record(&mut b, r);
    b.freeze()
}

fn put_record(buf: &mut BytesMut, r: &IntervalRecord) {
    buf.put_u32_le(r.creator as u32);
    buf.put_u32_le(r.seq);
    put_vc(buf, &r.vc);
    buf.put_u32_le(r.pages.len() as u32);
    for &p in &r.pages {
        buf.put_u32_le(p);
    }
}

fn get_record(buf: &mut Bytes, nprocs: usize) -> IntervalRecord {
    let creator = buf.get_u32_le() as usize;
    let seq = buf.get_u32_le();
    let vc = get_vc(buf, nprocs);
    let npages = buf.get_u32_le() as usize;
    let pages = (0..npages).map(|_| buf.get_u32_le()).collect();
    IntervalRecord {
        creator,
        seq,
        vc,
        pages,
    }
}

/// Encode a list of interval records preceded by their count.
pub fn put_records(buf: &mut BytesMut, records: &[IntervalRecord]) {
    buf.put_u32_le(records.len() as u32);
    for r in records {
        put_record(buf, r);
    }
}

/// Encode a list of interval records from their pre-encoded wire buffers
/// (see [`record_wire`]): the count header followed by a splice per record.
/// Byte-identical to [`put_records`] over the same records.
pub fn put_records_preencoded(buf: &mut BytesMut, wires: &[&Bytes]) {
    buf.put_u32_le(wires.len() as u32);
    for w in wires {
        buf.put_slice(w);
    }
}

/// Decode a list of interval records.
pub fn get_records(buf: &mut Bytes, nprocs: usize) -> Vec<IntervalRecord> {
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| get_record(buf, nprocs)).collect()
}

/// Lock acquire / forwarded acquire: `(lock_id, requester, requester_vc)`.
pub fn encode_lock_request(lock_id: u32, requester: usize, vc: &VectorClock) -> Bytes {
    let mut b = BytesMut::with_capacity(12 + 4 * vc.len());
    b.put_u32_le(lock_id);
    b.put_u32_le(requester as u32);
    put_vc(&mut b, vc);
    b.freeze()
}

/// Decode a lock acquire / forwarded acquire.
pub fn decode_lock_request(mut payload: Bytes, nprocs: usize) -> (u32, usize, VectorClock) {
    let lock_id = payload.get_u32_le();
    let requester = payload.get_u32_le() as usize;
    let vc = get_vc(&mut payload, nprocs);
    (lock_id, requester, vc)
}

/// [`encode_lock_grant`] from pre-encoded record buffers — the hot-path
/// variant used by the runtime's grant path (no record clones, no
/// re-serialisation).
pub fn encode_lock_grant_preencoded(lock_id: u32, vc: &VectorClock, wires: &[&Bytes]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(lock_id);
    put_vc(&mut b, vc);
    put_records_preencoded(&mut b, wires);
    b.freeze()
}

/// Lock grant: `(lock_id, granter_vc, write notices the requester lacks)`.
pub fn encode_lock_grant(lock_id: u32, vc: &VectorClock, records: &[IntervalRecord]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(lock_id);
    put_vc(&mut b, vc);
    put_records(&mut b, records);
    b.freeze()
}

/// Decode a lock grant.
pub fn decode_lock_grant(
    mut payload: Bytes,
    nprocs: usize,
) -> (u32, VectorClock, Vec<IntervalRecord>) {
    let lock_id = payload.get_u32_le();
    let vc = get_vc(&mut payload, nprocs);
    let records = get_records(&mut payload, nprocs);
    (lock_id, vc, records)
}

/// [`encode_barrier`] from pre-encoded record buffers (hot-path variant).
pub fn encode_barrier_preencoded(epoch: u32, vc: &VectorClock, wires: &[&Bytes]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(epoch);
    put_vc(&mut b, vc);
    put_records_preencoded(&mut b, wires);
    b.freeze()
}

/// Barrier arrival / release: `(epoch, vc, records)`.
pub fn encode_barrier(epoch: u32, vc: &VectorClock, records: &[IntervalRecord]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(epoch);
    put_vc(&mut b, vc);
    put_records(&mut b, records);
    b.freeze()
}

/// Decode a barrier arrival / release.
pub fn decode_barrier(
    mut payload: Bytes,
    nprocs: usize,
) -> (u32, VectorClock, Vec<IntervalRecord>) {
    let epoch = payload.get_u32_le();
    let vc = get_vc(&mut payload, nprocs);
    let records = get_records(&mut payload, nprocs);
    (epoch, vc, records)
}

/// Diff request: `(page, requester, applied_vc, global_vc)`.
///
/// `applied_vc` says which intervals' modifications the requester has already
/// incorporated into its copy of the page; `global_vc` says which intervals
/// the requester knows about at all.  The responder returns every diff it
/// holds for the page whose interval lies between the two.
pub fn encode_diff_request(
    page: PageId,
    requester: usize,
    applied_vc: &VectorClock,
    global_vc: &VectorClock,
) -> Bytes {
    let mut b = BytesMut::with_capacity(12 + 8 * applied_vc.len());
    b.put_u32_le(page);
    b.put_u32_le(requester as u32);
    put_vc(&mut b, applied_vc);
    put_vc(&mut b, global_vc);
    b.freeze()
}

/// Decode a diff request into `(page, requester, applied_vc, global_vc)`.
pub fn decode_diff_request(
    mut payload: Bytes,
    nprocs: usize,
) -> (PageId, usize, VectorClock, VectorClock) {
    let page = payload.get_u32_le();
    let requester = payload.get_u32_le() as usize;
    let applied = get_vc(&mut payload, nprocs);
    let global = get_vc(&mut payload, nprocs);
    (page, requester, applied, global)
}

/// One diff travelling in a diff response: who created it, in which interval,
/// and the runs themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiff {
    /// Creator process of the diff.
    pub creator: usize,
    /// Interval sequence number of the diff on its creator.
    pub seq: u32,
    /// Vector timestamp of the creating interval (used to order application).
    pub vc: VectorClock,
    /// The diff itself.
    pub diff: Diff,
}

fn put_diff(buf: &mut BytesMut, diff: &Diff) {
    buf.put_u32_le(diff.runs.len() as u32);
    for run in &diff.runs {
        buf.put_u16_le(run.offset);
        buf.put_u16_le(run.data.len() as u16);
        buf.put_slice(&run.data);
    }
}

fn get_diff(buf: &mut Bytes) -> Diff {
    let nruns = buf.get_u32_le() as usize;
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let offset = buf.get_u16_le();
        let len = buf.get_u16_le() as usize;
        let mut data = vec![0u8; len];
        buf.copy_to_slice(&mut data);
        runs.push(DiffRun { offset, data });
    }
    Diff { runs }
}

/// One borrowed entry of a diff response: `(creator, seq, pre-encoded
/// creating-interval clock, diff)`.
pub type DiffResponsePart<'a> = (usize, u32, &'a Bytes, &'a Diff);

/// [`encode_diff_response`] from borrowed parts with pre-encoded vector
/// clocks — the hot-path variant used when serving a diff request straight
/// out of the diff store (no `Diff` clones, no clock re-serialisation).
pub fn encode_diff_response_preencoded(page: PageId, parts: &[DiffResponsePart<'_>]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(page);
    b.put_u32_le(parts.len() as u32);
    for (creator, seq, vc_wire, diff) in parts {
        b.put_u32_le(*creator as u32);
        b.put_u32_le(*seq);
        b.put_slice(vc_wire);
        put_diff(&mut b, diff);
    }
    b.freeze()
}

/// Diff response: `(page, diffs)`.
pub fn encode_diff_response(page: PageId, diffs: &[WireDiff]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(page);
    b.put_u32_le(diffs.len() as u32);
    for wd in diffs {
        b.put_u32_le(wd.creator as u32);
        b.put_u32_le(wd.seq);
        put_vc(&mut b, &wd.vc);
        put_diff(&mut b, &wd.diff);
    }
    b.freeze()
}

/// Decode a diff response.
pub fn decode_diff_response(mut payload: Bytes, nprocs: usize) -> (PageId, Vec<WireDiff>) {
    let page = payload.get_u32_le();
    let n = payload.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let creator = payload.get_u32_le() as usize;
        let seq = payload.get_u32_le();
        let vc = get_vc(&mut payload, nprocs);
        let diff = get_diff(&mut payload);
        out.push(WireDiff {
            creator,
            seq,
            vc,
            diff,
        });
    }
    (page, out)
}

/// HLRC diff flush: `(creator, seq, [(page, diff)])` — one closed interval's
/// diffs destined for one home, batched into a single message.
pub fn encode_diff_flush(creator: usize, seq: u32, entries: &[(PageId, Diff)]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u32_le(creator as u32);
    b.put_u32_le(seq);
    b.put_u32_le(entries.len() as u32);
    for (page, diff) in entries {
        b.put_u32_le(*page);
        put_diff(&mut b, diff);
    }
    b.freeze()
}

/// Decode an HLRC diff flush.
pub fn decode_diff_flush(mut payload: Bytes) -> (usize, u32, Vec<(PageId, Diff)>) {
    let creator = payload.get_u32_le() as usize;
    let seq = payload.get_u32_le();
    let n = payload.get_u32_le() as usize;
    let entries = (0..n)
        .map(|_| {
            let page = payload.get_u32_le();
            let diff = get_diff(&mut payload);
            (page, diff)
        })
        .collect();
    (creator, seq, entries)
}

/// HLRC flush acknowledgement: echoes `(creator, seq)` of the flushed
/// interval so the writer can match acknowledgements to flushes.
pub fn encode_flush_ack(creator: usize, seq: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u32_le(creator as u32);
    b.put_u32_le(seq);
    b.freeze()
}

/// Decode an HLRC flush acknowledgement.
pub fn decode_flush_ack(mut payload: Bytes) -> (usize, u32) {
    let creator = payload.get_u32_le() as usize;
    let seq = payload.get_u32_le();
    (creator, seq)
}

/// HLRC page fetch request: `(page, requester)`.
pub fn encode_page_request(page: PageId, requester: usize) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u32_le(page);
    b.put_u32_le(requester as u32);
    b.freeze()
}

/// Decode an HLRC page fetch request.
pub fn decode_page_request(mut payload: Bytes) -> (PageId, usize) {
    let page = payload.get_u32_le();
    let requester = payload.get_u32_le() as usize;
    (page, requester)
}

/// HLRC page fetch response: `(page, home's applied clock, full page)`.
pub fn encode_page_response(page: PageId, applied: &VectorClock, data: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(8 + 4 * applied.len() + data.len());
    b.put_u32_le(page);
    put_vc(&mut b, applied);
    b.put_u32_le(data.len() as u32);
    b.put_slice(data);
    b.freeze()
}

/// Decode an HLRC page fetch response.
pub fn decode_page_response(mut payload: Bytes, nprocs: usize) -> (PageId, VectorClock, Vec<u8>) {
    let page = payload.get_u32_le();
    let applied = get_vc(&mut payload, nprocs);
    let len = payload.get_u32_le() as usize;
    let mut data = vec![0u8; len];
    payload.copy_to_slice(&mut data);
    (page, applied, data)
}

/// SC request: `(page, process)` — the shape shared by write requests, read
/// requests, forwarded read requests and invalidations (the process is the
/// requester, or for an invalidation the new owner awaiting the ack).
pub fn encode_sc_request(page: PageId, process: usize) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u32_le(page);
    b.put_u32_le(process as u32);
    b.freeze()
}

/// Decode an SC `(page, process)` request.
pub fn decode_sc_request(mut payload: Bytes) -> (PageId, usize) {
    let page = payload.get_u32_le();
    let process = payload.get_u32_le() as usize;
    (page, process)
}

fn put_procs(buf: &mut BytesMut, procs: &[usize]) {
    buf.put_u32_le(procs.len() as u32);
    for &p in procs {
        buf.put_u32_le(p as u32);
    }
}

fn get_procs(buf: &mut Bytes) -> Vec<usize> {
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| buf.get_u32_le() as usize).collect()
}

/// SC ownership transfer: `(page, copyset, data)` — the full page always
/// travels with the token (an owner that merely upgrades a downgraded copy
/// never sends a message at all).
pub fn encode_sc_page_transfer(page: PageId, copyset: &[usize], data: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(8 + 4 * copyset.len() + data.len());
    b.put_u32_le(page);
    put_procs(&mut b, copyset);
    b.put_slice(data);
    b.freeze()
}

/// Decode an SC ownership transfer.
pub fn decode_sc_page_transfer(mut payload: Bytes) -> (PageId, Vec<usize>, Vec<u8>) {
    let page = payload.get_u32_le();
    let copyset = get_procs(&mut payload);
    let mut data = vec![0u8; payload.remaining()];
    payload.copy_to_slice(&mut data);
    (page, copyset, data)
}

/// SC read copy: `(page, data)`.
pub fn encode_sc_page_copy(page: PageId, data: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + data.len());
    b.put_u32_le(page);
    b.put_slice(data);
    b.freeze()
}

/// Decode an SC read copy.
pub fn decode_sc_page_copy(mut payload: Bytes) -> (PageId, Vec<u8>) {
    let page = payload.get_u32_le();
    let mut data = vec![0u8; payload.remaining()];
    payload.copy_to_slice(&mut data);
    (page, data)
}

/// SC invalidation acknowledgement: the invalidated page.
pub fn encode_sc_ack(page: PageId) -> Bytes {
    let mut b = BytesMut::with_capacity(4);
    b.put_u32_le(page);
    b.freeze()
}

/// Decode an SC invalidation acknowledgement.
pub fn decode_sc_ack(mut payload: Bytes) -> PageId {
    payload.get_u32_le()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::new_page;

    fn vc(v: &[u32]) -> VectorClock {
        VectorClock::from_entries(v.to_vec())
    }

    #[test]
    fn lock_request_round_trip() {
        let payload = encode_lock_request(7, 3, &vc(&[1, 2, 3, 4]));
        let (lock, req, v) = decode_lock_request(payload, 4);
        assert_eq!(lock, 7);
        assert_eq!(req, 3);
        assert_eq!(v.entries(), &[1, 2, 3, 4]);
    }

    #[test]
    fn lock_grant_round_trip_with_records() {
        let records = vec![
            IntervalRecord {
                creator: 1,
                seq: 5,
                vc: vc(&[0, 5]),
                pages: vec![10, 11, 12],
            },
            IntervalRecord {
                creator: 0,
                seq: 2,
                vc: vc(&[2, 0]),
                pages: vec![],
            },
        ];
        let payload = encode_lock_grant(3, &vc(&[2, 5]), &records);
        let (lock, v, recs) = decode_lock_grant(payload, 2);
        assert_eq!(lock, 3);
        assert_eq!(v.entries(), &[2, 5]);
        assert_eq!(recs, records);
    }

    #[test]
    fn barrier_round_trip() {
        let records = vec![IntervalRecord {
            creator: 2,
            seq: 1,
            vc: vc(&[0, 0, 1]),
            pages: vec![42],
        }];
        let payload = encode_barrier(9, &vc(&[1, 1, 1]), &records);
        let (epoch, v, recs) = decode_barrier(payload, 3);
        assert_eq!(epoch, 9);
        assert_eq!(v.entries(), &[1, 1, 1]);
        assert_eq!(recs, records);
    }

    #[test]
    fn diff_request_round_trip() {
        let applied = vc(&[1, 0, 0, 0, 0, 0, 0, 0]);
        let global = vc(&[9, 8, 7, 6, 5, 4, 3, 2]);
        let payload = encode_diff_request(77, 5, &applied, &global);
        let (page, req, a, g) = decode_diff_request(payload, 8);
        assert_eq!(page, 77);
        assert_eq!(req, 5);
        assert_eq!(a, applied);
        assert_eq!(g.get(0), 9);
    }

    #[test]
    fn diff_response_round_trip() {
        let twin = new_page();
        let mut page = new_page();
        page[100] = 1;
        page[2000] = 2;
        let d = Diff::create(&twin, &page);
        let wire = vec![WireDiff {
            creator: 4,
            seq: 3,
            vc: vc(&[0, 0, 0, 0, 3]),
            diff: d.clone(),
        }];
        let payload = encode_diff_response(12, &wire);
        let (pid, diffs) = decode_diff_response(payload, 5);
        assert_eq!(pid, 12);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].diff, d);
        assert_eq!(diffs[0].creator, 4);
    }

    #[test]
    fn request_tags_are_classified() {
        assert!(is_request_tag(TAG_LOCK_ACQ));
        assert!(is_request_tag(TAG_DIFF_REQ));
        assert!(is_request_tag(TAG_BARRIER_ARRIVE));
        assert!(is_request_tag(TAG_DIFF_FLUSH));
        assert!(is_request_tag(TAG_PAGE_REQ));
        assert!(is_request_tag(TAG_SC_WRITE_REQ));
        assert!(is_request_tag(TAG_SC_WRITE_FWD));
        assert!(is_request_tag(TAG_SC_READ_REQ));
        assert!(is_request_tag(TAG_SC_READ_FWD));
        assert!(is_request_tag(TAG_SC_INVAL));
        assert!(!is_request_tag(TAG_LOCK_GRANT));
        assert!(!is_request_tag(TAG_BARRIER_RELEASE));
        assert!(!is_request_tag(TAG_DIFF_RESP));
        assert!(!is_request_tag(TAG_FLUSH_ACK));
        assert!(!is_request_tag(TAG_PAGE_RESP));
        assert!(!is_request_tag(TAG_SC_PAGE_XFER));
        assert!(!is_request_tag(TAG_SC_PAGE_COPY));
        assert!(!is_request_tag(TAG_SC_INVAL_ACK));
        assert!(!is_request_tag(TAG_TERMINATE));
    }

    #[test]
    fn sc_messages_round_trip() {
        let (page, proc) = decode_sc_request(encode_sc_request(7, 3));
        assert_eq!((page, proc), (7, 3));

        let mut data = new_page().to_vec();
        data[0] = 1;
        data[4095] = 2;
        let (page, cs, got) = decode_sc_page_transfer(encode_sc_page_transfer(5, &[1, 4], &data));
        assert_eq!(page, 5);
        assert_eq!(cs, vec![1, 4]);
        assert_eq!(got, data);

        let (page, got) = decode_sc_page_copy(encode_sc_page_copy(11, &data));
        assert_eq!(page, 11);
        assert_eq!(got, data);

        assert_eq!(decode_sc_ack(encode_sc_ack(42)), 42);
    }

    #[test]
    fn diff_flush_round_trip() {
        let twin = new_page();
        let mut page = new_page();
        page[10] = 3;
        page[900] = 4;
        let d = Diff::create(&twin, &page);
        let entries = vec![(5u32, d.clone()), (9u32, Diff::default())];
        let payload = encode_diff_flush(2, 7, &entries);
        let (creator, seq, got) = decode_diff_flush(payload);
        assert_eq!(creator, 2);
        assert_eq!(seq, 7);
        assert_eq!(got, entries);
    }

    #[test]
    fn flush_ack_round_trip() {
        let (creator, seq) = decode_flush_ack(encode_flush_ack(3, 11));
        assert_eq!((creator, seq), (3, 11));
    }

    #[test]
    fn page_fetch_round_trip() {
        let (page, requester) = decode_page_request(encode_page_request(42, 6));
        assert_eq!((page, requester), (42, 6));

        let mut data = new_page().to_vec();
        data[0] = 1;
        data[4095] = 2;
        let applied = vc(&[3, 0, 1]);
        let payload = encode_page_response(42, &applied, &data);
        let (pid, got_applied, got_data) = decode_page_response(payload, 3);
        assert_eq!(pid, 42);
        assert_eq!(got_applied, applied);
        assert_eq!(got_data, data);
    }

    #[test]
    fn preencoded_paths_are_byte_identical_to_the_reference_encoders() {
        let records = vec![
            IntervalRecord {
                creator: 1,
                seq: 5,
                vc: vc(&[0, 5, 2]),
                pages: vec![10, 11, 12],
            },
            IntervalRecord {
                creator: 0,
                seq: 2,
                vc: vc(&[2, 0, 0]),
                pages: vec![],
            },
        ];
        let wires: Vec<Bytes> = records.iter().map(record_wire).collect();
        let wire_refs: Vec<&Bytes> = wires.iter().collect();
        let clock = vc(&[2, 5, 0]);
        assert_eq!(
            encode_lock_grant_preencoded(3, &clock, &wire_refs),
            encode_lock_grant(3, &clock, &records)
        );
        assert_eq!(
            encode_barrier_preencoded(9, &clock, &wire_refs),
            encode_barrier(9, &clock, &records)
        );

        let twin = new_page();
        let mut page = new_page();
        page[100] = 1;
        page[2000] = 2;
        let d = Diff::create(&twin, &page);
        let dvc = vc(&[0, 3, 1]);
        let wire = vec![WireDiff {
            creator: 1,
            seq: 3,
            vc: dvc.clone(),
            diff: d.clone(),
        }];
        let dvcw = vc_wire(&dvc);
        assert_eq!(
            encode_diff_response_preencoded(12, &[(1, 3, &dvcw, &d)]),
            encode_diff_response(12, &wire)
        );
    }

    #[test]
    fn wire_buf_messages_are_byte_identical_and_reusable() {
        let records = vec![
            IntervalRecord {
                creator: 1,
                seq: 5,
                vc: vc(&[0, 5, 2]),
                pages: vec![10, 11, 12],
            },
            IntervalRecord {
                creator: 0,
                seq: 2,
                vc: vc(&[2, 0, 0]),
                pages: vec![],
            },
        ];
        let wires: Vec<Bytes> = records.iter().map(record_wire).collect();
        let records_len: usize = wires.iter().map(Bytes::len).sum();
        let clock = vc(&[2, 5, 0]);
        let mut wb = WireBuf::new();
        // The same buffer encodes message after message, each byte-identical
        // to the single-shot reference encoder.
        for _ in 0..3 {
            let got = encode_sync_spliced(&mut wb, 3, &clock, records.len(), records_len, |b| {
                for w in &wires {
                    b.put_slice(w);
                }
            });
            assert_eq!(got, encode_lock_grant(3, &clock, &records));
            let got = encode_sync_spliced(&mut wb, 9, &clock, records.len(), records_len, |b| {
                for w in &wires {
                    b.put_slice(w);
                }
            });
            assert_eq!(got, encode_barrier(9, &clock, &records));
        }

        let twin = new_page();
        let mut page = new_page();
        page[100] = 1;
        page[2000] = 2;
        let d = Diff::create(&twin, &page);
        let dvc = vc(&[0, 3, 1]);
        let dvcw = vc_wire(&dvc);
        let wire = vec![WireDiff {
            creator: 1,
            seq: 3,
            vc: dvc.clone(),
            diff: d.clone(),
        }];
        assert_eq!(
            encode_diff_response_into(&mut wb, 12, &[(1, 3, &dvcw, &d)]),
            encode_diff_response(12, &wire)
        );
    }

    #[test]
    fn message_sizes_scale_with_content() {
        // A grant with no notices is small; one with many notices is larger.
        let small = encode_lock_grant(0, &vc(&[0; 8]), &[]);
        let many: Vec<IntervalRecord> = (0..20)
            .map(|i| IntervalRecord {
                creator: i % 8,
                seq: i as u32,
                vc: vc(&[i as u32; 8]),
                pages: (0..10).collect(),
            })
            .collect();
        let big = encode_lock_grant(0, &vc(&[0; 8]), &many);
        assert!(small.len() < 64);
        assert!(big.len() > 20 * (8 + 4 * 8 + 4 * 10));
    }
}

//! The interval log: closing intervals, publishing and applying write
//! notices, and the barrier-time garbage collection of both halves of the
//! protocol metadata.
//!
//! An *interval* is the span between two synchronization operations of one
//! process; closing it produces a write-notice record (the pages modified)
//! and one diff per modified page.  This module owns the log of retained
//! records — stored exactly once, with a pre-encoded wire buffer spliced
//! into every grant or barrier message that carries the record — and the
//! receiver side that turns records into page invalidations.  What becomes
//! of each created diff, and which notices actually invalidate, are
//! [`ConsistencyProtocol`](crate::protocol::ConsistencyProtocol) policy hooks.

use crate::page::Diff;
use crate::proto::{encode_sync_spliced, record_wire, vc_wire, IntervalRecord};
use crate::state::{ClosedInterval, DsmState, Notice};
use crate::vc::VectorClock;
use bytes::{BufMut, Bytes, BytesMut};

/// One entry of a process's interval log: the record plus its wire encoding,
/// computed once when the record enters the log (created locally or received
/// from its creator) and spliced into every message that later carries it.
#[derive(Debug)]
pub(crate) struct LoggedInterval {
    record: IntervalRecord,
    wire: Bytes,
}

impl LoggedInterval {
    fn new(record: IntervalRecord) -> Self {
        let wire = record_wire(&record);
        LoggedInterval { record, wire }
    }
}

impl DsmState {
    /// Close the current interval if any page was written during it.
    ///
    /// Diffs are created *eagerly* here (real TreadMarks creates them lazily
    /// when first requested); this keeps uncommitted writes of a later
    /// interval out of earlier diffs while producing identical message and
    /// data counts.  What happens to each created diff is the protocol
    /// decision ([`retain_or_flush`](crate::protocol::ConsistencyProtocol::retain_or_flush)): LRC stores it
    /// for later diff requests (and eventual accumulation), HLRC hands it
    /// back for flushing to remote homes — and pages whose diff the policy
    /// suppresses entirely ([`diff_at_close`](crate::protocol::ConsistencyProtocol::diff_at_close), the
    /// home's own pages) produce none.  Returns `None` if nothing was
    /// written.
    pub fn close_interval(&mut self) -> Option<ClosedInterval> {
        if self.dirty_pages.is_empty() {
            return None;
        }
        let backend = self.backend;
        let seq = self.vc.increment(self.me);
        let vc = self.vc.clone();
        let interval_vc_wire = vc_wire(&vc);
        let mut pages = std::mem::take(&mut self.dirty_pages);
        pages.sort_unstable();
        pages.dedup();
        let mut flushes = Vec::new();
        for &page in &pages {
            let make_diff = backend.diff_at_close(self, page);
            let slot = &mut self.pages[page as usize];
            let twin = slot.twin.take().expect("dirty page must have a twin");
            slot.dirty = false;
            if !make_diff {
                self.pool.recycle(twin);
                continue;
            }
            let data = slot.data.as_ref().expect("dirty page must have data");
            let diff = Diff::create(&twin, data);
            self.pool.recycle(twin);
            self.stats.diffs_created += 1;
            self.stats.diff_bytes_created += diff.encoded_len() as u64;
            if let Some(flush) =
                backend.retain_or_flush(self, page, seq, &vc, &interval_vc_wire, diff)
            {
                flushes.push(flush);
            }
        }
        // The local copy of each dirty page now incorporates this interval.
        let nprocs = self.nprocs;
        let me = self.me;
        for &page in &pages {
            let slot = &mut self.pages[page as usize];
            let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
            applied.set(me, seq);
        }
        let record = IntervalRecord {
            creator: self.me,
            seq,
            vc,
            pages,
        };
        debug_assert_eq!(
            self.interval_base[self.me] + self.intervals[self.me].len() as u32,
            seq - 1
        );
        // The record is stored exactly once — in the creator's own log —
        // and retrieved by index when published; no shadow copy travels in
        // the return value.
        self.intervals[self.me].push(LoggedInterval::new(record));
        Some(ClosedInterval { seq, flushes })
    }

    /// The retained interval record `seq` of `creator`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is unknown or already garbage collected.
    pub fn interval_record(&self, creator: usize, seq: u32) -> &IntervalRecord {
        let base = self.interval_base[creator];
        assert!(
            seq > base,
            "interval ({creator}, {seq}) was garbage collected"
        );
        &self.intervals[creator][(seq - 1 - base) as usize].record
    }

    /// Incorporate a write-notice record received from another process:
    /// record the interval and invalidate the pages it modified (unless the
    /// protocol keeps the local copy authoritative, per
    /// [`invalidate_on_notice`](crate::protocol::ConsistencyProtocol::invalidate_on_notice)).
    /// Records already covered by the local clock are ignored.
    pub fn apply_interval_record(&mut self, rec: &IntervalRecord) {
        if rec.creator == self.me || self.vc.covers(rec.creator, rec.seq) {
            return;
        }
        debug_assert_eq!(
            self.interval_base[rec.creator] + self.intervals[rec.creator].len() as u32,
            rec.seq - 1,
            "interval records of one creator must arrive contiguously"
        );
        let backend = self.backend;
        self.vc.set(rec.creator, rec.seq);
        self.intervals[rec.creator].push(LoggedInterval::new(rec.clone()));
        self.stats.write_notices_received += rec.pages.len() as u64;
        for &page in &rec.pages {
            if !backend.invalidate_on_notice(self, page) {
                continue;
            }
            let slot = &mut self.pages[page as usize];
            slot.valid = false;
            slot.notices.push(Notice {
                creator: rec.creator,
                seq: rec.seq,
                vc: rec.vc.clone(),
            });
        }
    }

    /// Incorporate a batch of records, in an order consistent with `hb1`.
    pub fn apply_interval_records(&mut self, records: &[IntervalRecord]) {
        let mut sorted: Vec<&IntervalRecord> = records.iter().collect();
        sorted.sort_by_key(|r| (r.creator, r.seq));
        for r in sorted {
            self.apply_interval_record(r);
        }
    }

    /// All interval records known locally that are not covered by `other`.
    /// This is what a releaser piggybacks on a lock grant and what the
    /// barrier manager sends in each release message.
    pub fn records_not_covered_by(&self, other: &VectorClock) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        for creator in 0..self.nprocs {
            let known = self.vc.get(creator);
            let have = other.get(creator);
            let base = self.interval_base[creator];
            assert!(
                have >= base,
                "peer clock ({creator}:{have}) predates the GC horizon {base}"
            );
            for seq in (have + 1)..=known {
                out.push(
                    self.intervals[creator][(seq - 1 - base) as usize]
                        .record
                        .clone(),
                );
            }
        }
        out
    }

    /// The pre-encoded wire buffers of
    /// [`records_not_covered_by`](Self::records_not_covered_by), in the same
    /// order (kept as the reference the spliced encoding below is tested
    /// byte-identical against).
    #[cfg(test)]
    pub(crate) fn record_wires_not_covered_by(&self, other: &VectorClock) -> Vec<&Bytes> {
        let mut out = Vec::new();
        for creator in 0..self.nprocs {
            let known = self.vc.get(creator);
            let have = other.get(creator);
            let base = self.interval_base[creator];
            assert!(
                have >= base,
                "peer clock ({creator}:{have}) predates the GC horizon {base}"
            );
            for seq in (have + 1)..=known {
                out.push(&self.intervals[creator][(seq - 1 - base) as usize].wire);
            }
        }
        out
    }

    /// Encode a lock grant or barrier message `(head, this clock, records
    /// not covered by other)` into the state's reusable wire buffer: the
    /// hot send path of every grant and barrier message.  The record wires
    /// are spliced straight from the interval log — no per-send vector of
    /// references — and the message size is computed exactly up front, so
    /// the encoding neither allocates (in steady state) nor grows.
    /// Byte-identical to
    /// [`encode_barrier`](crate::proto::encode_barrier) /
    /// [`encode_lock_grant`](crate::proto::encode_lock_grant) over
    /// [`records_not_covered_by`](Self::records_not_covered_by).
    pub(crate) fn encode_sync_not_covered_by(&mut self, head: u32, other: &VectorClock) -> Bytes {
        let DsmState {
            intervals,
            interval_base,
            vc,
            wire,
            ..
        } = self;
        let (nrecords, records_len) = splice_size(intervals, interval_base, vc, other);
        encode_sync_spliced(wire, head, vc, nrecords, records_len, |b| {
            splice_records(intervals, interval_base, vc, other, b)
        })
    }

    /// [`encode_sync_not_covered_by`](Self::encode_sync_not_covered_by)
    /// against this process's own last barrier clock — the worker's barrier
    /// arrival message (a separate entry point because the covering clock
    /// is a field of the same state the encoder borrows).
    pub(crate) fn encode_barrier_arrival(&mut self, epoch: u32) -> Bytes {
        let DsmState {
            intervals,
            interval_base,
            vc,
            last_barrier_vc,
            wire,
            ..
        } = self;
        let (nrecords, records_len) = splice_size(intervals, interval_base, vc, last_barrier_vc);
        encode_sync_spliced(wire, epoch, vc, nrecords, records_len, |b| {
            splice_records(intervals, interval_base, vc, last_barrier_vc, b)
        })
    }

    /// Total number of interval records currently retained (for tests).
    pub fn intervals_retained(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    /// Garbage-collect protocol metadata covered by `up_to` — the paper's
    /// barrier-time GC: once every process has validated its pages up to a
    /// cluster-wide clock (which the barrier protocol in
    /// `process.rs` arranges), interval records and stored diffs at or below
    /// that clock can never be requested again and are dropped.  Without
    /// this, the interval logs and the diff store grow without bound for
    /// the lifetime of a run — the diff garbage the paper itself calls out.
    pub fn gc(&mut self, up_to: &VectorClock) {
        for creator in 0..self.nprocs {
            let covered = up_to.get(creator);
            let base = self.interval_base[creator];
            let drop_n = (covered.saturating_sub(base) as usize).min(self.intervals[creator].len());
            if drop_n > 0 {
                self.intervals[creator].drain(..drop_n);
                self.interval_base[creator] = base + drop_n as u32;
                self.stats.intervals_collected += drop_n as u64;
            }
        }
        self.stats.diffs_collected += self.gc_diffs(up_to) as u64;
        self.stats.gc_collections += 1;
    }
}

/// Count and summed wire length of the retained records not covered by
/// `other` — the exact size pre-pass of the spliced sync encoding.
fn splice_size(
    intervals: &[Vec<LoggedInterval>],
    interval_base: &[u32],
    vc: &VectorClock,
    other: &VectorClock,
) -> (usize, usize) {
    let mut count = 0usize;
    let mut len = 0usize;
    for (creator, log) in intervals.iter().enumerate() {
        let known = vc.get(creator);
        let have = other.get(creator);
        let base = interval_base[creator];
        assert!(
            have >= base,
            "peer clock ({creator}:{have}) predates the GC horizon {base}"
        );
        for seq in (have + 1)..=known {
            count += 1;
            len += log[(seq - 1 - base) as usize].wire.len();
        }
    }
    (count, len)
}

/// Splice the same records, in the same order, into `buf`.
fn splice_records(
    intervals: &[Vec<LoggedInterval>],
    interval_base: &[u32],
    vc: &VectorClock,
    other: &VectorClock,
    buf: &mut BytesMut,
) {
    for (creator, log) in intervals.iter().enumerate() {
        let known = vc.get(creator);
        let have = other.get(creator);
        let base = interval_base[creator];
        for seq in (have + 1)..=known {
            buf.put_slice(&log[(seq - 1 - base) as usize].wire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: usize, n: usize) -> DsmState {
        DsmState::new(me, n, 1 << 20)
    }

    /// Close the open interval and return a clone of its logged record.
    fn close_record(s: &mut DsmState) -> IntervalRecord {
        let seq = s.close_interval().expect("interval must close").seq;
        s.interval_record(s.me, seq).clone()
    }

    #[test]
    fn close_interval_creates_diffs_and_advances_clock() {
        let mut s = state(0, 2);
        let addr = s.malloc(16, 8);
        s.mark_dirty(s.page_of(addr));
        s.write_bytes(addr, &[1; 16]);
        let rec = close_record(&mut s);
        assert_eq!(rec.creator, 0);
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.pages, vec![s.page_of(addr)]);
        assert_eq!(s.vc.get(0), 1);
        assert_eq!(s.diffs_held_for(s.page_of(addr)), 1);
        // No dirty pages -> no new interval.
        assert!(s.close_interval().is_none());
    }

    #[test]
    fn interval_record_invalidates_pages_at_receiver() {
        let mut writer = state(0, 2);
        let mut reader = state(1, 2);
        let addr = writer.malloc(16, 8);
        let _ = reader.malloc(16, 8);
        writer.mark_dirty(writer.page_of(addr));
        writer.write_bytes(addr, &[7; 16]);
        let rec = close_record(&mut writer);

        assert!(reader.is_valid(reader.page_of(addr)));
        reader.apply_interval_record(&rec);
        assert!(!reader.is_valid(reader.page_of(addr)));
        assert_eq!(reader.vc.get(0), 1);
        // Applying the same record twice is a no-op.
        reader.apply_interval_record(&rec);
        assert_eq!(reader.notices_of(reader.page_of(addr)).len(), 1);
    }

    #[test]
    fn records_not_covered_by_returns_exactly_the_gap() {
        let mut s = state(0, 2);
        let addr = s.malloc(8, 8);
        for _ in 0..3 {
            s.mark_dirty(s.page_of(addr));
            s.write_bytes(addr, &[9; 8]);
            s.close_interval();
        }
        let mut other = VectorClock::new(2);
        other.set(0, 1);
        let recs = s.records_not_covered_by(&other);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[1].seq, 3);
    }

    #[test]
    fn spliced_sync_encoding_matches_the_reference_encoders() {
        let mut s = state(0, 2);
        let addr = s.malloc(8, 8);
        for _ in 0..3 {
            s.mark_dirty(s.page_of(addr));
            s.write_bytes(addr, &[9; 8]);
            s.close_interval();
        }
        let mut other = VectorClock::new(2);
        other.set(0, 1);
        let reference =
            crate::proto::encode_lock_grant(7, &s.vc, &s.records_not_covered_by(&other));
        assert_eq!(
            crate::proto::encode_lock_grant_preencoded(
                7,
                &s.vc,
                &s.record_wires_not_covered_by(&other)
            ),
            reference
        );
        // Repeated encodes reuse the buffer and stay byte-identical.
        for _ in 0..3 {
            assert_eq!(s.encode_sync_not_covered_by(7, &other), reference);
        }
        // The barrier-arrival entry point covers against last_barrier_vc
        // (all zeros here), i.e. every record travels.
        let all = crate::proto::encode_barrier(1, &s.vc, &s.records_not_covered_by(&VectorClock::new(2)));
        assert_eq!(s.encode_barrier_arrival(1), all);
    }
}

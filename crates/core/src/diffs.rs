//! The diff store: protocol-neutral retention and service of page diffs.
//!
//! A twinning backend creates diffs when an interval closes; this module
//! owns what happens to diffs *held locally* — created here and retained
//! (LRC), or fetched from other processes.  It implements the selection
//! logic of diff requests (including *diff accumulation*: a responder
//! returns every diff the requester lacks, even ones later diffs completely
//! overwrite), the application of fetched diffs in `hb1` order, and the
//! lazy accounting of diff-creation cost (real TreadMarks creates a diff
//! only when it is first requested, so the page+twin scan is charged at
//! first serve, not at interval close).

use crate::page::{new_page, Diff, PageId};
use crate::proto::{vc_wire, DiffResponsePart, WireDiff};
use crate::state::{DsmState, Notice};
use crate::vc::VectorClock;
use bytes::Bytes;

/// A diff held locally, with the bookkeeping needed to charge its creation
/// cost lazily: real TreadMarks creates diffs only when they are first
/// requested, so the page+twin scan is charged to the creator the first
/// time the diff is served, not at interval close.  (Creation is still
/// *performed* eagerly here so later intervals cannot leak into earlier
/// diffs; only the accounting is lazy.)
#[derive(Debug)]
pub(crate) struct StoredDiff {
    vc: VectorClock,
    /// The clock's wire encoding, computed once at store time and spliced
    /// into every diff response that serves this diff.
    vc_wire: Bytes,
    diff: Diff,
    /// Whether the creation scan has been charged (true for fetched diffs,
    /// whose cost was paid by their creator).
    scan_charged: bool,
}

impl DsmState {
    /// Retain a diff created by this process at interval close so later
    /// diff requests can be served from it (the LRC disposition).
    pub(crate) fn retain_own_diff(
        &mut self,
        page: PageId,
        seq: u32,
        vc: &VectorClock,
        vc_wire: &Bytes,
        diff: Diff,
    ) {
        let handle = self.diff_slab.insert(StoredDiff {
            vc: vc.clone(),
            vc_wire: vc_wire.clone(),
            diff,
            scan_charged: false,
        });
        self.diffs.insert((page, self.me, seq), handle);
    }

    /// The set of processes to send diff requests to for `page`: the writers
    /// named in the pending notices whose most recent interval (for this
    /// page) is not dominated by another such writer's most recent interval.
    /// A processor that modified a page in an interval holds all diffs of the
    /// intervals that precede it, so asking only the maximal writers is
    /// sufficient — this is the optimisation described in Section 2.2.2.
    pub fn diff_request_targets(&self, page: PageId) -> Vec<usize> {
        let notices = self.notices_of(page);
        // Latest pending interval per writer.  A linear scan over a small
        // vector (there are at most `nprocs` writers), not a per-fault map.
        let mut writers: Vec<&Notice> = Vec::new();
        for n in notices {
            match writers.iter_mut().find(|w| w.creator == n.creator) {
                Some(cur) if cur.seq >= n.seq => {}
                Some(cur) => *cur = n,
                None => writers.push(n),
            }
        }
        let mut targets = Vec::new();
        for w in &writers {
            let dominated = writers.iter().any(|o| {
                !(o.creator == w.creator && o.seq == w.seq) && o.vc.dominates(&w.vc) && o.vc != w.vc
            });
            if !dominated && w.creator != self.me {
                targets.push(w.creator);
            }
        }
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Serve a diff request: every diff held locally for `page` whose
    /// interval (a) the requester knows about (it is covered by the
    /// requester's *global* clock, i.e. it happens-before the acquire that
    /// triggered the fault) and (b) the requester has not yet applied to its
    /// copy of the page.  This is where *diff accumulation* happens — the
    /// response includes diffs created by other processes that this process
    /// has previously fetched, even when later diffs completely overwrite
    /// them.
    /// Also returns the number of returned diffs whose creation scan has
    /// not been charged yet (they are marked charged by this call): the
    /// serving runtime charges the page+twin scan for exactly those, which
    /// is the lazy diff creation of the real system.
    pub fn diffs_for_request(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Vec<WireDiff>, usize) {
        let (keys, first_serves) = self.served_diff_keys(page, requester, applied_vc, global_vc);
        let out = keys
            .into_iter()
            .map(|(_, creator, seq, handle)| {
                let stored = self.diff_slab.get(handle);
                WireDiff {
                    creator,
                    seq,
                    vc: stored.vc.clone(),
                    diff: stored.diff.clone(),
                }
            })
            .collect();
        (out, first_serves)
    }

    /// Serve a diff request straight into its wire encoding: the same
    /// selection as [`diffs_for_request`](Self::diffs_for_request), but the
    /// response payload is built from the stored diffs and their pre-encoded
    /// clocks by reference — no `Diff` or `VectorClock` clones — into the
    /// state's reusable, exactly pre-sized wire buffer.  Returns the
    /// payload, the summed encoded size of the served diffs (the responder's
    /// copy cost), and the number of first-time serves (whose creation scan
    /// the caller charges — lazy diff creation).
    pub fn encode_diffs_for_request(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Bytes, usize, usize) {
        let (keys, first_serves) = self.served_diff_keys(page, requester, applied_vc, global_vc);
        let DsmState {
            diff_slab, wire, ..
        } = self;
        let mut diff_bytes = 0usize;
        let parts: Vec<DiffResponsePart<'_>> = keys
            .iter()
            .map(|&(_, creator, seq, handle)| {
                let stored = diff_slab.get(handle);
                diff_bytes += stored.diff.encoded_len();
                (creator, seq, &stored.vc_wire, &stored.diff)
            })
            .collect();
        let payload = crate::proto::encode_diff_response_into(wire, page, &parts);
        (payload, diff_bytes, first_serves)
    }

    /// The diffs this process would serve for `page`, as `(hb1 sort key,
    /// creator, seq, slab handle)` in response order, marking first-time
    /// serves as scan-charged.  A range scan over the page's keys in the
    /// ordered diff index — not a sweep over every diff held.
    fn served_diff_keys(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Vec<(u64, usize, u32, u32)>, usize) {
        let DsmState {
            diffs, diff_slab, ..
        } = self;
        let mut first_serves = 0usize;
        let mut keys: Vec<(u64, usize, u32, u32)> = Vec::new();
        for (&(_, creator, seq), &handle) in
            diffs.range((page, 0, 0)..=(page, usize::MAX, u32::MAX))
        {
            if creator == requester
                || seq <= applied_vc.get(creator)
                || !global_vc.covers(creator, seq)
            {
                continue;
            }
            let stored = diff_slab.get_mut(handle);
            if !stored.scan_charged {
                stored.scan_charged = true;
                first_serves += 1;
            }
            keys.push((stored.vc.sum(), creator, seq, handle));
        }
        keys.sort_unstable();
        (keys, first_serves)
    }

    /// Apply fetched diffs to `page` (in `hb1` order) and store them so they
    /// can be served to other processes later.
    ///
    /// Only the write notices actually covered by the updated per-page
    /// applied clock are cleared: a new notice can arrive *during* the fault
    /// (a barrier arrival served while waiting for diff responses applies
    /// fresh interval records), and wiping it here would leave the page
    /// permanently stale.  The page becomes valid only if no notice remains;
    /// the fault path re-faults otherwise.
    pub fn apply_wire_diffs(&mut self, page: PageId, mut diffs: Vec<WireDiff>) {
        diffs.sort_by_key(|d| (d.vc.sum(), d.creator, d.seq));
        {
            let slot = &mut self.pages[page as usize];
            let data = slot.data.get_or_insert_with(new_page);
            for wd in &diffs {
                wd.diff.apply(data);
                // Keep a concurrent writer's twin in sync so its own diff
                // stays minimal (does not duplicate the incoming changes).
                if let Some(twin) = slot.twin.as_mut() {
                    wd.diff.apply(twin);
                }
            }
        }
        let nprocs = self.nprocs;
        {
            let slot = &mut self.pages[page as usize];
            let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
            for wd in &diffs {
                if wd.seq > applied.get(wd.creator) {
                    applied.set(wd.creator, wd.seq);
                }
            }
        }
        {
            let DsmState {
                diffs: index,
                diff_slab,
                stats,
                ..
            } = &mut *self;
            for wd in diffs {
                stats.diffs_applied += 1;
                stats.diff_bytes_received += wd.diff.encoded_len() as u64;
                index.entry((page, wd.creator, wd.seq)).or_insert_with(|| {
                    diff_slab.insert(StoredDiff {
                        vc_wire: vc_wire(&wd.vc),
                        vc: wd.vc,
                        diff: wd.diff,
                        scan_charged: true,
                    })
                });
            }
        }
        self.revalidate_page(page);
    }

    /// Number of diffs currently held for `page` (for tests and ablations).
    pub fn diffs_held_for(&self, page: PageId) -> usize {
        self.diffs
            .range((page, 0, 0)..=(page, usize::MAX, u32::MAX))
            .count()
    }

    /// Total number of diffs currently held (for tests and the GC trigger).
    pub fn diffs_held(&self) -> usize {
        self.diffs.len()
    }

    /// Drop every stored diff covered by `up_to` (the GC's diff half; see
    /// [`DsmState::gc`]), recycling their slab slots.  Returns how many
    /// were collected.
    pub(crate) fn gc_diffs(&mut self, up_to: &VectorClock) -> usize {
        let DsmState {
            diffs, diff_slab, ..
        } = self;
        let before = diffs.len();
        diffs.retain(|&(_, creator, seq), &mut handle| {
            if seq > up_to.get(creator) {
                true
            } else {
                diff_slab.remove(handle);
                false
            }
        });
        debug_assert_eq!(diff_slab.len(), diffs.len());
        before - diffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::config::PAGE_SIZE;

    fn state(me: usize, n: usize) -> DsmState {
        DsmState::new(me, n, 1 << 20)
    }

    /// Close the open interval and return a clone of its logged record.
    fn close_record(s: &mut DsmState) -> crate::proto::IntervalRecord {
        let seq = s.close_interval().expect("interval must close").seq;
        s.interval_record(s.me, seq).clone()
    }

    #[test]
    fn diff_fetch_round_trip_updates_reader_copy() {
        let mut writer = state(0, 2);
        let mut reader = state(1, 2);
        let addr = writer.malloc(1024, 8);
        let _ = reader.malloc(1024, 8);
        let page = writer.page_of(addr);
        writer.mark_dirty(page);
        writer.write_bytes(addr, &[42u8; 1024]);
        let rec = close_record(&mut writer);
        reader.apply_interval_record(&rec);

        assert_eq!(reader.diff_request_targets(page), vec![0]);
        let diffs = writer
            .diffs_for_request(
                page,
                1,
                &reader.page_applied_vc(page),
                &reader.vc_snapshot_for_test(),
            )
            .0;
        assert_eq!(diffs.len(), 1);
        reader.apply_wire_diffs(page, diffs);
        assert!(reader.is_valid(page));
        let mut out = [0u8; 1024];
        reader.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 42));
    }

    #[test]
    fn diff_accumulation_returns_overlapping_old_diffs() {
        // Process 0 writes the page in interval 1; process 1 fetches, then
        // overwrites the same bytes in its own interval; process 0 fetches
        // back.  A later requester who has seen neither interval receives
        // BOTH diffs from process 1 even though the second completely
        // overwrites the first — the diff accumulation phenomenon.
        let mut p0 = state(0, 3);
        let mut p1 = state(1, 3);
        let mut p2 = state(2, 3);
        let addr = p0.malloc(512, 8);
        let _ = p1.malloc(512, 8);
        let _ = p2.malloc(512, 8);
        let page = p0.page_of(addr);

        p0.mark_dirty(page);
        p0.write_bytes(addr, &[1u8; 512]);
        let rec0 = close_record(&mut p0);

        p1.apply_interval_record(&rec0);
        let diffs = p0
            .diffs_for_request(
                page,
                1,
                &p1.page_applied_vc(page),
                &p1.vc_snapshot_for_test(),
            )
            .0;
        p1.apply_wire_diffs(page, diffs);
        p1.mark_dirty(page);
        p1.write_bytes(addr, &[2u8; 512]);
        let rec1 = close_record(&mut p1);

        p2.apply_interval_record(&rec0);
        p2.apply_interval_record(&rec1);
        // p1's interval dominates p0's, so p2 asks only p1...
        assert_eq!(p2.diff_request_targets(page), vec![1]);
        // ...but p1 answers with both diffs (accumulation).
        let diffs = p1
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        assert_eq!(diffs.len(), 2);
        p2.apply_wire_diffs(page, diffs);
        let mut out = [0u8; 512];
        p2.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn concurrent_writers_require_requests_to_both() {
        // False sharing: two processes write disjoint halves of one page in
        // concurrent intervals; a third must request diffs from both.
        let mut p0 = state(0, 3);
        let mut p1 = state(1, 3);
        let mut p2 = state(2, 3);
        for s in [&mut p0, &mut p1, &mut p2] {
            let _ = s.malloc(PAGE_SIZE, 8);
        }
        let page = 0;
        p0.mark_dirty(page);
        p0.write_bytes(0, &[1u8; 100]);
        let rec0 = close_record(&mut p0);
        p1.mark_dirty(page);
        p1.write_bytes(2000, &[2u8; 100]);
        let rec1 = close_record(&mut p1);

        p2.apply_interval_records(&[rec0, rec1]);
        let mut targets = p2.diff_request_targets(page);
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1]);

        let d0 = p0
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        let d1 = p1
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        p2.apply_wire_diffs(page, d0.into_iter().chain(d1).collect());
        let mut out = [0u8; 100];
        p2.read_bytes(0, &mut out);
        assert!(out.iter().all(|&b| b == 1));
        p2.read_bytes(2000, &mut out);
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn twin_kept_in_sync_with_incoming_diffs() {
        // A concurrent writer applies an incoming diff to both the page and
        // its twin, so its own later diff does not duplicate those bytes.
        let mut p0 = state(0, 2);
        let mut p1 = state(1, 2);
        let _ = p0.malloc(PAGE_SIZE, 8);
        let _ = p1.malloc(PAGE_SIZE, 8);
        let page = 0;
        p0.mark_dirty(page);
        p0.write_bytes(0, &[5u8; 64]);
        let rec0 = close_record(&mut p0);

        p1.mark_dirty(page);
        p1.write_bytes(1000, &[6u8; 64]);
        // Now p1 learns about p0's interval and fetches its diff while still
        // having its own uncommitted writes.
        p1.apply_interval_record(&rec0);
        let diffs = p0
            .diffs_for_request(
                page,
                1,
                &p1.page_applied_vc(page),
                &p1.vc_snapshot_for_test(),
            )
            .0;
        p1.apply_wire_diffs(page, diffs);
        let rec1 = close_record(&mut p1);
        assert_eq!(rec1.pages, vec![0]);
        let d = p1
            .diffs_for_request(0, 0, &rec0.vc, &p1.vc_snapshot_for_test())
            .0;
        assert_eq!(d.len(), 1);
        // p1's diff covers only its own 64 modified bytes, not p0's.
        assert_eq!(d[0].diff.modified_bytes(), 64);
    }
}

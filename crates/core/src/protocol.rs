//! The pluggable coherence-protocol engine.
//!
//! The DSM runtime separates *mechanism* (pages, twins, diffs, vector
//! clocks, the request service loop) from *policy* — what happens at an
//! access fault, what happens to the diffs created when an interval closes,
//! and which pages a write notice invalidates.  The policy seam is
//! [`ProtocolKind`], an enum-dispatched backend selected when a [`Tmk`]
//! endpoint is created:
//!
//! * [`ProtocolKind::Lrc`] — the paper's TreadMarks protocol: multiple-writer
//!   lazy release consistency with an invalidate protocol.  Diffs stay with
//!   their writers; a fault sends a diff request to each member of the
//!   minimal dominating set of writers, and responders practice *diff
//!   accumulation* (they return every diff the requester lacks, including
//!   ones later diffs overwrite).
//! * [`ProtocolKind::Hlrc`] — home-based LRC, the follow-up design the
//!   paper's results motivated: every page has a *home* process
//!   (round-robin over the shared heap, see [`crate::home`]).  Writers flush
//!   their diffs to the home eagerly when the interval closes
//!   (release/barrier), and an access fault fetches the whole page from the
//!   home in a single round trip.  Diffs are discarded after the flush is
//!   acknowledged — no diff accumulation, no diff garbage retention — at
//!   the cost of full-page fetch traffic and eager flush messages.
//!
//! Both backends share the interval/write-notice machinery of
//! [`crate::state::DsmState`]; everything protocol-specific lives here and
//! in [`crate::home`].

use crate::page::PageId;
use crate::process::Tmk;
use crate::proto::{decode_diff_response, encode_diff_request, TAG_DIFF_REQ, TAG_DIFF_RESP};
use crate::{MEM_BANDWIDTH, PAGE_FAULT_COST};

/// Which coherence protocol a DSM endpoint runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Multiple-writer, diff-based, invalidate lazy release consistency —
    /// the TreadMarks protocol of the paper.
    #[default]
    Lrc,
    /// Home-based LRC: diffs flushed eagerly to a per-page home at
    /// release/barrier, faults fetch the full page from the home.
    Hlrc,
}

impl ProtocolKind {
    /// Both protocol backends, in comparison order.
    pub fn all() -> [ProtocolKind; 2] {
        [ProtocolKind::Lrc, ProtocolKind::Hlrc]
    }

    /// The lowercase CLI name of the backend (`lrc` / `hlrc`).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Lrc => "lrc",
            ProtocolKind::Hlrc => "hlrc",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ProtocolKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lrc" | "treadmarks" | "tmk" => Ok(ProtocolKind::Lrc),
            "hlrc" | "home" | "home-based" => Ok(ProtocolKind::Hlrc),
            other => Err(format!("unknown protocol '{other}' (expected lrc or hlrc)")),
        }
    }
}

impl Tmk<'_> {
    /// The access-fault path, dispatched to the configured protocol backend.
    ///
    /// Both backends charge the fixed fault-entry cost and count the fault;
    /// what is fetched — and from whom — is the protocol decision.  One
    /// service round can leave the page invalid if a *new* write notice for
    /// it arrived while the fault was waiting for responses (a barrier
    /// arrival served in the meantime applies fresh interval records), so
    /// the fault repeats until the page is clean.
    pub(crate) fn fault_in(&self, page: PageId) {
        self.proc().compute(PAGE_FAULT_COST);
        self.st.borrow_mut().stats.page_faults += 1;
        loop {
            match self.protocol() {
                ProtocolKind::Lrc => self.lrc_fault_in(page),
                ProtocolKind::Hlrc => self.hlrc_fault_in(page),
            }
            if self.st.borrow().is_valid(page) {
                break;
            }
        }
    }

    /// LRC fault service: request diffs for `page` from the minimal
    /// dominating set of writers, apply them in `hb1` order, and mark the
    /// page valid.
    fn lrc_fault_in(&self, page: PageId) {
        let (targets, applied_vc, my_vc) = {
            let st = self.st.borrow();
            (
                st.diff_request_targets(page),
                st.page_applied_vc(page),
                st.vc.clone(),
            )
        };
        if targets.is_empty() {
            // All pending notices were for intervals whose diffs we already
            // hold (can happen after locally fetching for a neighbouring
            // access); just apply nothing and revalidate.
            self.st.borrow_mut().apply_wire_diffs(page, Vec::new());
            return;
        }
        for &t in &targets {
            let payload = encode_diff_request(page, self.id(), &applied_vc, &my_vc);
            self.proc().send(t, TAG_DIFF_REQ, payload);
            self.st.borrow_mut().stats.diff_requests_sent += 1;
        }
        let mut all = Vec::new();
        for _ in 0..targets.len() {
            let m = self.wait_reply(TAG_DIFF_RESP);
            let (pid, diffs) = decode_diff_response(m.payload, self.nprocs());
            assert_eq!(pid, page, "diff response for an unexpected page");
            all.extend(diffs);
        }
        let bytes: usize = all.iter().map(|d| d.diff.encoded_len()).sum();
        self.proc().compute(bytes as f64 / MEM_BANDWIDTH);
        self.st.borrow_mut().apply_wire_diffs(page, all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_print() {
        for kind in ProtocolKind::all() {
            let round: ProtocolKind = kind.name().parse().unwrap();
            assert_eq!(round, kind);
        }
        assert_eq!("HLRC".parse::<ProtocolKind>().unwrap(), ProtocolKind::Hlrc);
        assert_eq!(
            "treadmarks".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::Lrc
        );
        assert!("eager".parse::<ProtocolKind>().is_err());
    }

    #[test]
    fn default_is_the_paper_protocol() {
        assert_eq!(ProtocolKind::default(), ProtocolKind::Lrc);
    }
}

//! Shared-memory allocation and typed access.
//!
//! The real TreadMarks detects accesses to shared memory with the virtual
//! memory hardware; this reproduction detects them in software at the same
//! granularity (the 4 KB page): every accessor below checks the validity of
//! the pages it touches, triggers the fault path (diff request / response /
//! apply) for invalid pages, and creates twins on the first write of an
//! interval.  See README.md §Design notes for why this substitution preserves the
//! protocol behaviour the paper measures.
//!
//! Addresses are plain byte offsets into the shared heap, obtained from
//! [`Tmk::malloc`].  As long as all processes perform the same allocation
//! sequence (the SPMD convention used by every application in the study),
//! all processes agree on the addresses.

use crate::page::PageId;
use crate::process::Tmk;
use crate::MEM_BANDWIDTH;
use cluster::config::PAGE_SIZE;

/// An address in the shared heap (a byte offset).
pub type SharedAddr = usize;

/// A free list of page-sized buffers.
///
/// Twins are created on the first write of every interval and discarded when
/// the interval closes, so a long run churns through page-sized allocations
/// at interval rate.  The pool recycles those buffers: a retired twin (or
/// any other page-sized buffer) goes back on the free list and the next
/// twin is written into it instead of a fresh allocation.
#[derive(Debug, Default)]
pub struct PagePool {
    free: Vec<Box<[u8]>>,
}

/// Retaining more free pages than this returns them to the allocator: the
/// pool's job is to absorb the steady-state twin churn, not to hold the
/// high-water mark of a burst forever.
const POOL_CAP: usize = 64;

/// A typed slab: stable `u32` handles into a free-list-recycled arena.
///
/// The diff store keys its ordered index (a `BTreeMap`, kept because serving
/// a request is a range scan over one page's keys) by slab handle instead of
/// holding each value inline: map nodes stay small — splits and rebalances
/// move a few `u32`s, not whole diffs — and the insert/GC churn of a long
/// run recycles slots instead of going back to the allocator for every
/// retained diff.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// Store `value` and return its handle (a recycled slot if one is free).
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.entries[i as usize].is_none());
                self.entries[i as usize] = Some(value);
                i
            }
            None => {
                self.entries.push(Some(value));
                (self.entries.len() - 1) as u32
            }
        }
    }

    /// Remove and return the value behind `handle`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is vacant (double free).
    pub fn remove(&mut self, handle: u32) -> T {
        let v = self.entries[handle as usize]
            .take()
            .expect("slab handle removed twice");
        self.free.push(handle);
        v
    }

    /// The value behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is vacant.
    pub fn get(&self, handle: u32) -> &T {
        self.entries[handle as usize]
            .as_ref()
            .expect("vacant slab handle")
    }

    /// The value behind `handle`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the handle is vacant.
    pub fn get_mut(&mut self, handle: u32) -> &mut T {
        self.entries[handle as usize]
            .as_mut()
            .expect("vacant slab handle")
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PagePool {
    /// A zero-filled page (recycled if one is available).
    pub fn take_zeroed(&mut self) -> Box<[u8]> {
        match self.free.pop() {
            Some(mut b) => {
                b.fill(0);
                b
            }
            None => crate::page::new_page(),
        }
    }

    /// A page holding a copy of `src` (recycled if one is available).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not exactly one page long.
    pub fn take_copy(&mut self, src: &[u8]) -> Box<[u8]> {
        assert_eq!(src.len(), PAGE_SIZE, "pool buffers are one page");
        match self.free.pop() {
            Some(mut b) => {
                b.copy_from_slice(src);
                b
            }
            None => src.to_vec().into_boxed_slice(),
        }
    }

    /// Return a retired page-sized buffer to the free list.
    pub fn recycle(&mut self, buf: Box<[u8]>) {
        debug_assert_eq!(buf.len(), PAGE_SIZE, "pool buffers are one page");
        if self.free.len() < POOL_CAP {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

impl<'a> Tmk<'a> {
    /// Allocate `bytes` of shared memory (8-byte aligned) and return its
    /// address.  Equivalent to `Tmk_malloc`.
    pub fn malloc(&self, bytes: usize) -> SharedAddr {
        self.st.borrow_mut().malloc(bytes, 8)
    }

    /// Allocate `bytes` of shared memory with an explicit alignment.
    pub fn malloc_aligned(&self, bytes: usize, align: usize) -> SharedAddr {
        self.st.borrow_mut().malloc(bytes, align)
    }

    // ------------------------------------------------------------ raw bytes

    /// Read `out.len()` bytes of shared memory starting at `addr`.
    pub fn read_bytes(&self, addr: SharedAddr, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        self.read_bytes_unrecorded(addr, out);
        self.race_record(crate::race::AccessKind::Read, addr, out.len());
    }

    /// The read itself — fault path and all — without a race-detector
    /// record; the recorded accessors and the annotated `_unsync` readers
    /// share it so both cost exactly the same simulated time.
    fn read_bytes_unrecorded(&self, addr: SharedAddr, out: &mut [u8]) {
        self.ensure_valid(addr, out.len());
        self.st.borrow_mut().read_bytes(addr, out);
    }

    /// Read one `f64` as an *annotated unsynchronized read*: identical to
    /// [`Tmk::read_f64`] in cost and protocol behaviour, but exempt from the
    /// happens-before race detector — the DSM analogue of a relaxed atomic
    /// load or a ThreadSanitizer benign-race annotation.
    ///
    /// Use it only where a racy read is *intentional* and stale values are
    /// provably harmless (e.g. TSP's optimistic branch-and-bound incumbent,
    /// re-checked under its lock before every update).  The conflicting
    /// write stays recorded, so any unannotated racy reader is still
    /// caught.  `xtask lint` requires every call site to carry a
    /// `lint:allow(unsync-read)` justification marker.
    pub fn read_f64_unsync(&self, addr: SharedAddr) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes_unrecorded(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Write `src` to shared memory starting at `addr`.
    ///
    /// The write trap is the protocol's decision
    /// ([`crate::protocol::ConsistencyProtocol::prepare_write`]): the
    /// twinning backends validate the span and twin + dirty each page; SC
    /// acquires exclusive ownership.  `access_done` then lets the protocol
    /// serve whatever it deferred while acquiring (SC's ownership
    /// hand-offs).
    pub fn write_bytes(&self, addr: SharedAddr, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        self.backend.prepare_write(self, addr, src.len());
        self.st.borrow_mut().write_bytes(addr, src);
        self.backend.access_done(self);
        self.race_record(crate::race::AccessKind::Write, addr, src.len());
    }

    // --------------------------------------------------------- typed access

    /// Read one `f64`.
    pub fn read_f64(&self, addr: SharedAddr) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Write one `f64`.
    pub fn write_f64(&self, addr: SharedAddr, v: f64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read one `i64`.
    pub fn read_i64(&self, addr: SharedAddr) -> i64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        i64::from_le_bytes(b)
    }

    /// Write one `i64`.
    pub fn write_i64(&self, addr: SharedAddr, v: i64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read one `i32`.
    pub fn read_i32(&self, addr: SharedAddr) -> i32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        i32::from_le_bytes(b)
    }

    /// Write one `i32`.
    pub fn write_i32(&self, addr: SharedAddr, v: i32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read one `u32`.
    pub fn read_u32(&self, addr: SharedAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write one `u32`.
    pub fn write_u32(&self, addr: SharedAddr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read one `f32`.
    pub fn read_f32(&self, addr: SharedAddr) -> f32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        f32::from_le_bytes(b)
    }

    /// Write one `f32`.
    pub fn write_f32(&self, addr: SharedAddr, v: f32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Run `f` over this endpoint's reusable raw-byte scratch buffer, sized
    /// and zeroed to `len` bytes.
    ///
    /// The typed slice accessors convert through a byte staging buffer;
    /// allocating it per call made every `read_f64_slice` of a hot loop an
    /// allocator round trip.  The buffer is *taken* out of its cell for the
    /// duration of `f`, so a re-entrant access (a fault serviced mid-read
    /// ending in another typed access) falls back to a fresh allocation
    /// instead of aliasing the outer call's bytes.
    fn with_scratch<R>(&self, len: usize, f: impl FnOnce(&Self, &mut Vec<u8>) -> R) -> R {
        let mut raw = std::mem::take(&mut *self.scratch.borrow_mut());
        raw.clear();
        raw.resize(len, 0);
        let out = f(self, &mut raw);
        *self.scratch.borrow_mut() = raw;
        out
    }

    /// Read a contiguous run of `out.len()` `f64` values starting at `addr`.
    pub fn read_f64_slice(&self, addr: SharedAddr, out: &mut [f64]) {
        if out.is_empty() {
            return;
        }
        self.with_scratch(out.len() * 8, |tmk, raw| {
            tmk.read_bytes(addr, raw);
            for (i, chunk) in raw.chunks_exact(8).enumerate() {
                out[i] = f64::from_le_bytes(chunk.try_into().unwrap());
            }
        });
    }

    /// Write a contiguous run of `f64` values starting at `addr`.
    pub fn write_f64_slice(&self, addr: SharedAddr, src: &[f64]) {
        if src.is_empty() {
            return;
        }
        self.with_scratch(0, |tmk, raw| {
            for v in src {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            tmk.write_bytes(addr, raw);
        });
    }

    /// Read a contiguous run of `f32` values starting at `addr`.
    pub fn read_f32_slice(&self, addr: SharedAddr, out: &mut [f32]) {
        if out.is_empty() {
            return;
        }
        self.with_scratch(out.len() * 4, |tmk, raw| {
            tmk.read_bytes(addr, raw);
            for (i, chunk) in raw.chunks_exact(4).enumerate() {
                out[i] = f32::from_le_bytes(chunk.try_into().unwrap());
            }
        });
    }

    /// Write a contiguous run of `f32` values starting at `addr`.
    pub fn write_f32_slice(&self, addr: SharedAddr, src: &[f32]) {
        if src.is_empty() {
            return;
        }
        self.with_scratch(0, |tmk, raw| {
            for v in src {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            tmk.write_bytes(addr, raw);
        });
    }

    /// Read a contiguous run of `i32` values starting at `addr`.
    pub fn read_i32_slice(&self, addr: SharedAddr, out: &mut [i32]) {
        if out.is_empty() {
            return;
        }
        self.with_scratch(out.len() * 4, |tmk, raw| {
            tmk.read_bytes(addr, raw);
            for (i, chunk) in raw.chunks_exact(4).enumerate() {
                out[i] = i32::from_le_bytes(chunk.try_into().unwrap());
            }
        });
    }

    /// Write a contiguous run of `i32` values starting at `addr`.
    pub fn write_i32_slice(&self, addr: SharedAddr, src: &[i32]) {
        if src.is_empty() {
            return;
        }
        self.with_scratch(0, |tmk, raw| {
            for v in src {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            tmk.write_bytes(addr, raw);
        });
    }

    // --------------------------------------------------------------- faults

    /// Make every page overlapping `[addr, addr + len)` valid, triggering
    /// the configured protocol's fault-service path (see [`crate::protocol`])
    /// for the invalid ones.
    ///
    /// Servicing one page's fault can re-invalidate an earlier page of the
    /// same range (a barrier arrival served while waiting applies fresh
    /// write notices), so the scan repeats until the whole range is clean.
    /// No requests are served between this returning and the access itself,
    /// so the range stays valid for the caller.
    ///
    /// This is the software write/read trap on the hottest path of the
    /// whole simulation (every shared access), so the all-valid case — the
    /// overwhelming majority — must not allocate: pages are checked one at
    /// a time in ascending order rather than collected into a vector.
    pub fn ensure_valid(&self, addr: SharedAddr, len: usize) {
        loop {
            let pages = self.st.borrow().pages_spanning(addr, len);
            let mut faulted_any = false;
            for page in pages {
                if !self.st.borrow().is_valid(page) {
                    self.fault_in(page);
                    faulted_any = true;
                }
            }
            if !faulted_any {
                return;
            }
        }
    }

    /// Mark `page` dirty, charging the twin-copy cost if a twin is created.
    pub(crate) fn mark_dirty_charged(&self, page: PageId) {
        let twinned = self.st.borrow_mut().mark_dirty(page);
        if twinned {
            self.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
        }
    }
}

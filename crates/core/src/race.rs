//! Happens-before data-race detection for the DSM runtime.
//!
//! Lazy release consistency only guarantees sequentially-consistent results
//! for *data-race-free* programs, so the entire reproduction rests on the
//! nine applications being properly labeled.  This module turns that
//! assumption into a machine-checked property: when a run is started with
//! [`cluster::AnalysisLevel::Race`], every shared read and write is recorded
//! together with an **analysis vector clock**, and a post-mortem pass flags
//! every conflicting access pair (same page, overlapping byte ranges, at
//! least one write, different ranks) that is not ordered by happens-before.
//!
//! # Analysis clocks, not protocol clocks
//!
//! The detector deliberately does **not** reuse the protocol's interval
//! vector clocks: those only advance when an interval is dirty (and the SC
//! backend never advances them at all), so they cannot express the
//! happens-before order of the *program*.  Instead each rank keeps its own
//! analysis clock and applies the textbook lock/barrier vector-clock
//! algorithm, which makes detection uniform across LRC, HLRC and SC:
//!
//! * a rank's own component starts at `1`; accesses are stamped with the
//!   clock current at access time;
//! * at a **release edge** (lock release, barrier arrival) the rank first
//!   publishes its clock to the side table, then increments its own
//!   component;
//! * at an **acquire edge** (lock grant applied, barrier release applied)
//!   the rank joins the published clock into its own;
//! * access `a` happens-before access `b` iff
//!   `clock(b)[rank(a)] >= clock(a)[rank(a)]`.
//!
//! The side table ([`SyncClocks`]) is shared process memory, **not** wire
//! traffic: piggybacking analysis clocks on protocol messages would change
//! message sizes and therefore virtual times, and the analysis layer must be
//! invisible to the cost model.  Every table update happens on the releasing
//! side *before* the message that transfers the synchronisation right is
//! sent, and every read happens on the acquiring side *after* that message
//! is received, so the table is wall-clock ordered by the same queues that
//! order the simulated messages — recording stays deterministic.
//!
//! The lock release edge is taken at `lock_release` time rather than at
//! grant time on purpose: the runtime serves lock grants *anachronistically*
//! (the payload is computed at serve time while the departure is backdated
//! to the release time), so copying the clock at grant time would create
//! happens-before edges covering accesses the releaser performed after the
//! release — edges the DSM does not actually promise.
//!
//! See `docs/ANALYSIS.md` for the full model, including why the analyzer
//! checks both directions of every pair and how the report stays
//! byte-identical across reruns and executor widths.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::page::PageId;
use cluster::config::PAGE_SIZE;

/// Whether a recorded access read or wrote shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// The access wrote shared memory.
    Write,
    /// The access read shared memory.
    Read,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Write => write!(f, "write"),
            AccessKind::Read => write!(f, "read"),
        }
    }
}

/// The synchronisation context a segment of accesses executed in.
///
/// Purely descriptive — it names the last synchronisation operation the
/// rank performed, so a reported race can say *where* in the program's
/// synchronisation structure each access sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SyncCtx {
    /// Before the rank's first synchronisation operation.
    Start,
    /// After acquiring (and still conceptually inside) the named lock.
    AfterAcquire(u32),
    /// After releasing the named lock.
    AfterRelease(u32),
    /// After the barrier with the given application index
    /// (`u32::MAX` denotes the internal garbage-collection barrier).
    AfterBarrier(u32),
}

impl fmt::Display for SyncCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncCtx::Start => write!(f, "start"),
            SyncCtx::AfterAcquire(l) => write!(f, "holding lock {l}"),
            SyncCtx::AfterRelease(l) => write!(f, "after releasing lock {l}"),
            SyncCtx::AfterBarrier(u32::MAX) => write!(f, "after gc barrier"),
            SyncCtx::AfterBarrier(b) => write!(f, "after barrier {b}"),
        }
    }
}

fn join_into(dst: &mut [u32], src: &[u32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// State of one in-flight barrier episode in [`SyncClocks`].
#[derive(Debug, Default)]
struct BarrierSlot {
    /// Clocks published by arriving workers (order is wall-clock arrival
    /// order and therefore nondeterministic; only their componentwise
    /// maximum is ever used, which is order-free).
    arrivals: Vec<Vec<u32>>,
    /// The merged clock the manager published for the release.
    release: Option<Vec<u32>>,
    /// Workers that still have to read `release` before the slot can be
    /// garbage-collected.
    readers_left: usize,
}

/// Shared side table carrying analysis clocks across synchronisation edges.
///
/// One instance is shared by all ranks of a racechecked run.  It is *not*
/// part of the simulated machine: see the module docs for why the table is
/// deterministic despite living outside the virtual-time arbiter.
#[derive(Debug, Default)]
pub struct SyncClocks {
    locks: Mutex<BTreeMap<u32, Vec<u32>>>,
    barriers: Mutex<BTreeMap<u64, BarrierSlot>>,
}

impl SyncClocks {
    /// Create an empty table.
    pub fn new() -> Self {
        SyncClocks::default()
    }

    /// Release edge of `lock`: join the releaser's clock into the lock's
    /// published clock.  Called *before* the grant can possibly be sent.
    fn lock_release(&self, lock: u32, clock: &[u32]) {
        let mut locks = self.locks.lock().unwrap();
        match locks.get_mut(&lock) {
            Some(l) => join_into(l, clock),
            None => {
                locks.insert(lock, clock.to_vec());
            }
        }
    }

    /// Acquire edge of `lock`: read the published clock, if any rank has
    /// ever released this lock.
    fn lock_acquire(&self, lock: u32) -> Option<Vec<u32>> {
        self.locks.lock().unwrap().get(&lock).cloned()
    }

    /// A worker publishes its clock for barrier `episode` before sending
    /// its arrival message.
    fn barrier_publish(&self, episode: u64, clock: Vec<u32>) {
        self.barriers
            .lock()
            .unwrap()
            .entry(episode)
            .or_default()
            .arrivals
            .push(clock);
    }

    /// The manager merges all published arrival clocks with its own and
    /// publishes the result, to be read by `readers` workers.  Called after
    /// all arrival messages were received and before any release message is
    /// sent.
    fn barrier_merge(&self, episode: u64, own: &[u32], readers: usize) -> Vec<u32> {
        let mut barriers = self.barriers.lock().unwrap();
        let slot = barriers.entry(episode).or_default();
        assert_eq!(
            slot.arrivals.len(),
            readers,
            "barrier episode {episode}: manager merged before all arrivals were published"
        );
        let mut merged = own.to_vec();
        for a in &slot.arrivals {
            join_into(&mut merged, a);
        }
        slot.release = Some(merged.clone());
        slot.readers_left = readers;
        if readers == 0 {
            barriers.remove(&episode);
        }
        merged
    }

    /// A worker reads the merged clock after receiving its release message.
    fn barrier_read_release(&self, episode: u64) -> Vec<u32> {
        let mut barriers = self.barriers.lock().unwrap();
        let slot = barriers
            .get_mut(&episode)
            .expect("barrier release read before the manager merged");
        let merged = slot
            .release
            .clone()
            .expect("barrier release read before the manager merged");
        slot.readers_left -= 1;
        if slot.readers_left == 0 {
            barriers.remove(&episode);
        }
        merged
    }
}

/// A coalesced byte range of same-kind accesses within one page and one
/// segment.  `end` is exclusive; `first_ns` is the virtual time of the
/// earliest access the range covers.
#[derive(Debug, Clone, Copy)]
struct ByteRange {
    start: u32,
    end: u32,
    first_ns: u64,
}

/// Accesses of one segment to one page, coalesced per kind.
#[derive(Debug, Default)]
struct PageAccess {
    writes: Vec<ByteRange>,
    reads: Vec<ByteRange>,
}

/// Insert `[start, end)` into a sorted, non-overlapping range list, merging
/// ranges that overlap or touch and keeping the earliest first-access time.
fn insert_range(ranges: &mut Vec<ByteRange>, start: u32, end: u32, now_ns: u64) {
    // Find the first existing range that could merge with the new one.
    let i = ranges.partition_point(|r| r.end < start);
    let mut merged = ByteRange {
        start,
        end,
        first_ns: now_ns,
    };
    let mut j = i;
    while j < ranges.len() && ranges[j].start <= merged.end {
        merged.start = merged.start.min(ranges[j].start);
        merged.end = merged.end.max(ranges[j].end);
        merged.first_ns = merged.first_ns.min(ranges[j].first_ns);
        j += 1;
    }
    ranges.splice(i..j, std::iter::once(merged));
}

/// One maximal run of accesses with a constant analysis clock.
#[derive(Debug)]
struct Segment {
    /// The analysis clock all accesses of this segment are stamped with.
    clock: Vec<u32>,
    /// Synchronisation context the segment executed in.
    ctx: SyncCtx,
    /// Per-page coalesced accesses.
    pages: BTreeMap<PageId, PageAccess>,
}

impl Segment {
    fn new(clock: Vec<u32>, ctx: SyncCtx) -> Self {
        Segment {
            clock,
            ctx,
            pages: BTreeMap::new(),
        }
    }
}

/// Per-rank recorder driven by the DSM runtime's access and
/// synchronisation hooks.
///
/// Created by `Tmk::enable_racecheck`, harvested by `Tmk::take_race_log`.
/// Recording never touches the virtual clock or sends a message, so a
/// racechecked run reports bit-identical times, counters and checksums.
#[derive(Debug)]
pub struct Recorder {
    rank: usize,
    shared: Arc<SyncClocks>,
    clock: Vec<u32>,
    /// Analysis barrier-episode counter.  Barrier episodes are globally
    /// ordered in this SPMD runtime (including the GC barrier, which every
    /// rank enters together), so the counter identifies the same barrier on
    /// every rank — unlike the wire epoch, which the GC barrier reuses.
    episode: u64,
    cur: Segment,
    done: Vec<Segment>,
    accesses: u64,
}

impl Recorder {
    /// Create a recorder for `rank` of `nprocs` sharing `table`.
    pub fn new(rank: usize, nprocs: usize, table: Arc<SyncClocks>) -> Self {
        let mut clock = vec![0u32; nprocs];
        clock[rank] = 1;
        Recorder {
            rank,
            shared: table,
            cur: Segment::new(clock.clone(), SyncCtx::Start),
            clock,
            episode: 0,
            done: Vec::new(),
            accesses: 0,
        }
    }

    fn new_segment(&mut self, ctx: SyncCtx) {
        let next = Segment::new(self.clock.clone(), ctx);
        let prev = std::mem::replace(&mut self.cur, next);
        if !prev.pages.is_empty() {
            self.done.push(prev);
        }
    }

    /// Record a shared-memory access of `len` bytes at heap address `addr`.
    pub fn record(&mut self, kind: AccessKind, addr: usize, len: usize, now_ns: u64) {
        debug_assert!(len > 0);
        self.accesses += 1;
        let mut at = addr;
        let end = addr + len;
        while at < end {
            let page = (at / PAGE_SIZE) as PageId;
            let off = (at % PAGE_SIZE) as u32;
            let page_end = (at - at % PAGE_SIZE) + PAGE_SIZE;
            let stop = end.min(page_end);
            let upto = off + (stop - at) as u32;
            let pa = self.cur.pages.entry(page).or_default();
            let ranges = match kind {
                AccessKind::Write => &mut pa.writes,
                AccessKind::Read => &mut pa.reads,
            };
            insert_range(ranges, off, upto, now_ns);
            at = stop;
        }
    }

    /// Acquire edge: the grant for `lock` has been applied (or the rank
    /// still held the token locally).
    pub fn on_lock_acquired(&mut self, lock: u32) {
        if let Some(published) = self.shared.lock_acquire(lock) {
            join_into(&mut self.clock, &published);
        }
        self.new_segment(SyncCtx::AfterAcquire(lock));
    }

    /// Release edge for `lock`: publish, then advance the own component.
    /// Must run before the grant message can be sent.
    pub fn on_lock_release(&mut self, lock: u32) {
        self.shared.lock_release(lock, &self.clock);
        self.clock[self.rank] += 1;
        self.new_segment(SyncCtx::AfterRelease(lock));
    }

    /// Barrier arrival on a worker rank: publish the clock for this
    /// episode, then advance the own component.  Must run before the
    /// arrival message is sent.
    pub fn on_barrier_publish(&mut self) {
        self.shared
            .barrier_publish(self.episode, self.clock.clone());
        self.clock[self.rank] += 1;
    }

    /// Barrier release applied on a worker rank: join the merged clock.
    /// Must run after the release message was received.
    pub fn on_barrier_done(&mut self, index: u32) {
        let merged = self.shared.barrier_read_release(self.episode);
        join_into(&mut self.clock, &merged);
        self.episode += 1;
        self.new_segment(SyncCtx::AfterBarrier(index));
    }

    /// The whole barrier on the manager rank: merge all published arrival
    /// clocks with its own.  Must run after all arrivals were received and
    /// before any release message is sent.
    pub fn on_barrier_manager(&mut self, index: u32, workers: usize) {
        let merged = self
            .shared
            .barrier_merge(self.episode, &self.clock, workers);
        self.clock[self.rank] += 1;
        join_into(&mut self.clock, &merged);
        self.episode += 1;
        self.new_segment(SyncCtx::AfterBarrier(index));
    }

    /// A barrier on a single-process run: a pure segment boundary.
    pub fn on_barrier_local(&mut self, index: u32) {
        self.clock[self.rank] += 1;
        self.episode += 1;
        self.new_segment(SyncCtx::AfterBarrier(index));
    }

    /// Finish recording and hand back the rank's access log.
    pub fn finish(mut self) -> RaceLog {
        self.new_segment(SyncCtx::Start);
        RaceLog {
            rank: self.rank,
            accesses: self.accesses,
            segments: self.done,
        }
    }
}

/// The complete access log of one rank, as returned by `Tmk::take_race_log`.
#[derive(Debug)]
pub struct RaceLog {
    rank: usize,
    accesses: u64,
    segments: Vec<Segment>,
}

/// One side of a reported race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    /// Rank that performed the access.
    pub rank: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// First byte of the recorded (coalesced) range within the page.
    pub start: u32,
    /// One past the last byte of the recorded range.
    pub end: u32,
    /// Virtual time (nanoseconds) of the earliest access in the range.
    pub time_ns: u64,
    /// Synchronisation context the access executed in.
    pub ctx: SyncCtx,
}

/// A conflicting access pair not ordered by happens-before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Page both accesses touched.
    pub page: PageId,
    /// First byte of the conflicting overlap within the page.
    pub overlap_start: u32,
    /// One past the last byte of the conflicting overlap.
    pub overlap_end: u32,
    /// The site with the lower (rank, time) identity.
    pub a: RaceSite,
    /// The other site.
    pub b: RaceSite,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page {} bytes [{}, {}): rank {} {} [{}, {}) @ {} ns ({}) || rank {} {} [{}, {}) @ {} ns ({})",
            self.page,
            self.overlap_start,
            self.overlap_end,
            self.a.rank,
            self.a.kind,
            self.a.start,
            self.a.end,
            self.a.time_ns,
            self.a.ctx,
            self.b.rank,
            self.b.kind,
            self.b.start,
            self.b.end,
            self.b.time_ns,
            self.b.ctx,
        )
    }
}

/// Result of the post-mortem happens-before analysis of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Number of simulated processes the run used.
    pub nprocs: usize,
    /// Total number of access records the ranks logged (before
    /// coalescing into byte ranges).
    pub accesses: u64,
    /// All detected races, deduplicated per access-site pair and sorted
    /// deterministically.
    pub races: Vec<Race>,
}

impl RaceReport {
    /// Whether the run was data-race-free.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Render the report as deterministic human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.races.is_empty() {
            let _ = writeln!(
                out,
                "racecheck: 0 races ({} accesses, {} procs)",
                self.accesses, self.nprocs
            );
            return out;
        }
        let _ = writeln!(
            out,
            "racecheck: {} race(s) ({} accesses, {} procs)",
            self.races.len(),
            self.accesses,
            self.nprocs
        );
        const MAX_SHOWN: usize = 64;
        for race in self.races.iter().take(MAX_SHOWN) {
            let _ = writeln!(out, "  race: {race}");
        }
        if self.races.len() > MAX_SHOWN {
            let _ = writeln!(out, "  ... and {} more", self.races.len() - MAX_SHOWN);
        }
        out
    }
}

/// One flattened access record during analysis.
#[derive(Debug, Clone, Copy)]
struct Rec {
    rank: usize,
    seg: usize,
    kind: AccessKind,
    start: u32,
    end: u32,
    ns: u64,
}

/// Run the happens-before analysis over the per-rank logs of one run.
///
/// `logs` must be ordered by rank (`logs[r].rank == r`).  The result is a
/// pure function of the logs: records are processed in a deterministically
/// sorted order and the final report is deduplicated and sorted, so two
/// identical runs render byte-identical reports regardless of executor
/// width or wall-clock interleaving.
pub fn analyze(nprocs: usize, logs: Vec<RaceLog>) -> RaceReport {
    assert_eq!(logs.len(), nprocs, "one log per rank");
    for (r, log) in logs.iter().enumerate() {
        assert_eq!(log.rank, r, "logs must be ordered by rank");
    }
    let accesses = logs.iter().map(|l| l.accesses).sum();

    // Flatten to per-page record lists.  BTreeMap iteration keeps pages in
    // a deterministic order.
    let mut by_page: BTreeMap<PageId, Vec<Rec>> = BTreeMap::new();
    for log in &logs {
        for (seg_idx, seg) in log.segments.iter().enumerate() {
            for (&page, pa) in &seg.pages {
                let recs = by_page.entry(page).or_default();
                for (kind, ranges) in [
                    (AccessKind::Write, &pa.writes),
                    (AccessKind::Read, &pa.reads),
                ] {
                    for r in ranges {
                        recs.push(Rec {
                            rank: log.rank,
                            seg: seg_idx,
                            kind,
                            start: r.start,
                            end: r.end,
                            ns: r.first_ns,
                        });
                    }
                }
            }
        }
    }

    let clock_of = |rec: &Rec| -> &[u32] { &logs[rec.rank].segments[rec.seg].clock };
    // `a` happens-before `b` iff b's clock covers a's own component.
    let hb = |a: &Rec, b: &Rec| -> bool { clock_of(b)[a.rank] >= clock_of(a)[a.rank] };

    // Dedup key: the identity of an access-site pair (page + both sites'
    // rank/segment/kind).  Byte ranges and times are accumulated.
    type PairKey = (PageId, usize, usize, AccessKind, usize, usize, AccessKind);
    let mut found: BTreeMap<PairKey, Race> = BTreeMap::new();

    for (&page, recs) in by_page.iter_mut() {
        // Deterministic processing order: virtual time, then identity.
        recs.sort_by_key(|r| (r.ns, r.rank, r.seg, r.kind, r.start, r.end));

        // Per-rank cursors over this page's records support sound pruning:
        // a rank's segment clocks only grow, so the clock of its *next*
        // unprocessed record bounds all its future records from below.
        let by_rank: Vec<Vec<usize>> = {
            let mut v = vec![Vec::new(); nprocs];
            for (i, r) in recs.iter().enumerate() {
                v[r.rank].push(i);
            }
            v
        };
        let mut cursor = vec![0usize; nprocs];
        let mut shadow: Vec<usize> = Vec::new();
        let mut since_prune = 0usize;

        for i in 0..recs.len() {
            let b = recs[i];
            cursor[b.rank] += 1;
            for &ai in &shadow {
                let a = recs[ai];
                if a.rank == b.rank {
                    continue; // program order
                }
                if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                    continue;
                }
                let (os, oe) = (a.start.max(b.start), a.end.min(b.end));
                if os >= oe {
                    continue;
                }
                // Both directions: the anachronistic lock grant means
                // happens-before is not always consistent with virtual-time
                // order, so `b hb a` is possible even though a sorts first.
                if hb(&a, &b) || hb(&b, &a) {
                    continue;
                }
                let site = |r: &Rec| RaceSite {
                    rank: r.rank,
                    kind: r.kind,
                    start: r.start,
                    end: r.end,
                    time_ns: r.ns,
                    ctx: logs[r.rank].segments[r.seg].ctx,
                };
                // Order the pair by identity, not discovery order.
                let (x, y) = if (a.rank, a.seg, a.kind, a.start) <= (b.rank, b.seg, b.kind, b.start)
                {
                    (a, b)
                } else {
                    (b, a)
                };
                let key = (page, x.rank, x.seg, x.kind, y.rank, y.seg, y.kind);
                found
                    .entry(key)
                    .and_modify(|race| {
                        race.overlap_start = race.overlap_start.min(os);
                        race.overlap_end = race.overlap_end.max(oe);
                        for (site, rec) in [(&mut race.a, &x), (&mut race.b, &y)] {
                            site.start = site.start.min(rec.start);
                            site.end = site.end.max(rec.end);
                            site.time_ns = site.time_ns.min(rec.ns);
                        }
                    })
                    .or_insert_with(|| Race {
                        page,
                        overlap_start: os,
                        overlap_end: oe,
                        a: site(&x),
                        b: site(&y),
                    });
            }
            shadow.push(i);
            since_prune += 1;
            if since_prune >= 64 {
                since_prune = 0;
                shadow.retain(|&ai| {
                    let a = recs[ai];
                    let own = clock_of(&a)[a.rank];
                    // Keep `a` while some other rank may still produce a
                    // record not ordered after it.
                    (0..nprocs).any(|s| {
                        s != a.rank
                            && cursor[s] < by_rank[s].len()
                            && clock_of(&recs[by_rank[s][cursor[s]]])[a.rank] < own
                    })
                });
            }
        }
    }

    RaceReport {
        nprocs,
        accesses,
        races: found.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(table: &Arc<SyncClocks>) -> (Recorder, Recorder) {
        (
            Recorder::new(0, 2, Arc::clone(table)),
            Recorder::new(1, 2, Arc::clone(table)),
        )
    }

    fn report(logs: Vec<RaceLog>) -> RaceReport {
        let n = logs.len();
        analyze(n, logs)
    }

    #[test]
    fn insert_range_coalesces_overlapping_and_touching() {
        let mut v = Vec::new();
        insert_range(&mut v, 10, 20, 5);
        insert_range(&mut v, 30, 40, 6);
        insert_range(&mut v, 20, 30, 7); // bridges both
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].start, v[0].end, v[0].first_ns), (10, 40, 5));
        insert_range(&mut v, 50, 60, 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn unsynchronized_writes_race() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.record(AccessKind::Write, 0, 8, 10);
        r1.record(AccessKind::Write, 4, 8, 12);
        let rep = report(vec![r0.finish(), r1.finish()]);
        assert_eq!(rep.races.len(), 1);
        let race = &rep.races[0];
        assert_eq!(race.page, 0);
        assert_eq!((race.overlap_start, race.overlap_end), (4, 8));
        assert_eq!((race.a.rank, race.b.rank), (0, 1));
        assert_eq!(race.a.kind, AccessKind::Write);
        assert_eq!(race.b.kind, AccessKind::Write);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.record(AccessKind::Read, 0, 64, 10);
        r1.record(AccessKind::Read, 0, 64, 12);
        assert!(report(vec![r0.finish(), r1.finish()]).is_race_free());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.record(AccessKind::Write, 0, 8, 10);
        r1.record(AccessKind::Write, 8, 8, 12);
        assert!(report(vec![r0.finish(), r1.finish()]).is_race_free());
    }

    #[test]
    fn lock_handoff_orders_the_accesses() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        // Global order: r0's critical section completes, then r1's begins.
        r0.on_lock_acquired(7);
        r0.record(AccessKind::Write, 0, 8, 10);
        r0.on_lock_release(7);
        r1.on_lock_acquired(7);
        r1.record(AccessKind::Write, 0, 8, 20);
        r1.on_lock_release(7);
        assert!(report(vec![r0.finish(), r1.finish()]).is_race_free());
    }

    #[test]
    fn access_after_release_races_with_later_critical_section() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.on_lock_acquired(7);
        r0.on_lock_release(7);
        // r0 writes *after* releasing: concurrent with r1's section.
        r0.record(AccessKind::Write, 0, 8, 10);
        r1.on_lock_acquired(7);
        r1.record(AccessKind::Write, 0, 8, 20);
        let rep = report(vec![r0.finish(), r1.finish()]);
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].a.ctx, SyncCtx::AfterRelease(7));
        assert_eq!(rep.races[0].b.ctx, SyncCtx::AfterAcquire(7));
    }

    /// Run one barrier across two recorders in the manager/worker order the
    /// runtime uses (worker publishes, manager merges, worker joins).
    fn barrier(r0: &mut Recorder, r1: &mut Recorder, index: u32) {
        r1.on_barrier_publish();
        r0.on_barrier_manager(index, 1);
        r1.on_barrier_done(index);
    }

    #[test]
    fn barrier_orders_writes_before_reads() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.record(AccessKind::Write, 100, 8, 10);
        barrier(&mut r0, &mut r1, 0);
        r1.record(AccessKind::Read, 100, 8, 20);
        assert!(report(vec![r0.finish(), r1.finish()]).is_race_free());
    }

    #[test]
    fn writes_on_both_sides_of_a_barrier_still_race_within_a_side() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        barrier(&mut r0, &mut r1, 0);
        // Post-barrier accesses of different ranks are concurrent.
        r0.record(AccessKind::Write, 0, 8, 30);
        r1.record(AccessKind::Read, 0, 8, 40);
        let rep = report(vec![r0.finish(), r1.finish()]);
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].a.ctx, SyncCtx::AfterBarrier(0));
        assert_eq!(rep.races[0].b.ctx, SyncCtx::AfterBarrier(0));
        assert_eq!(rep.races[0].b.kind, AccessKind::Read);
    }

    #[test]
    fn pruning_does_not_drop_a_live_early_record() {
        // Rank 0 writes once at the start and never synchronises on lock 1;
        // rank 1 spins through many critical sections (driving the pruning
        // pass) before touching the same bytes.  The early record must
        // survive and the race must be found.
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        r0.record(AccessKind::Write, 0, 8, 1);
        for i in 0..200u64 {
            r1.on_lock_acquired(1);
            r1.record(AccessKind::Write, 4096, 8, 10 + i);
            r1.on_lock_release(1);
        }
        r1.record(AccessKind::Read, 0, 8, 1000);
        let rep = report(vec![r0.finish(), r1.finish()]);
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].page, 0);
    }

    #[test]
    fn many_ordered_rounds_stay_race_free_and_prune() {
        // Barrier-separated alternating writers: fully ordered, and the
        // pruning keeps the shadow state from growing with the round count.
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        for round in 0..300u32 {
            if round % 2 == 0 {
                r0.record(AccessKind::Write, 0, 8, u64::from(round) * 10);
            } else {
                r1.record(AccessKind::Write, 0, 8, u64::from(round) * 10);
            }
            barrier(&mut r0, &mut r1, round);
        }
        assert!(report(vec![r0.finish(), r1.finish()]).is_race_free());
    }

    #[test]
    fn report_renders_deterministically() {
        let mk = || {
            let table = Arc::new(SyncClocks::new());
            let (mut r0, mut r1) = pair(&table);
            r0.record(AccessKind::Write, 0, 16, 10);
            r1.record(AccessKind::Write, 8, 16, 12);
            r1.record(AccessKind::Read, 4096, 8, 14);
            r0.record(AccessKind::Write, 4096, 8, 16);
            report(vec![r0.finish(), r1.finish()])
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("race"));
    }

    #[test]
    fn cross_page_access_is_split_per_page() {
        let table = Arc::new(SyncClocks::new());
        let (mut r0, mut r1) = pair(&table);
        // Straddles the page-0/page-1 boundary.
        r0.record(AccessKind::Write, 4090, 12, 10);
        r1.record(AccessKind::Write, 4094, 8, 12);
        let rep = report(vec![r0.finish(), r1.finish()]);
        assert_eq!(rep.races.len(), 2);
        assert_eq!(rep.races[0].page, 0);
        assert_eq!(rep.races[1].page, 1);
    }
}

//! Vector timestamps representing the `hb1` partial order on intervals.
//!
//! The execution of each TreadMarks process is divided into *intervals*; a
//! new interval begins every time the process synchronizes.  Intervals are
//! partially ordered: program order on one process, release→acquire edges
//! between processes, and transitive closure.  Vector timestamps represent
//! this partial order: entry `p` of a process's clock is the number of
//! intervals of process `p` whose write notices the process has seen.

use serde::{Deserialize, Serialize};

/// A vector timestamp over `nprocs` processes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// The zero clock for `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        VectorClock {
            entries: vec![0; nprocs],
        }
    }

    /// Build a clock from raw entries.
    pub fn from_entries(entries: Vec<u32>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the clock covers zero processes (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for process `p`: how many of `p`'s intervals are known.
    pub fn get(&self, p: usize) -> u32 {
        self.entries[p]
    }

    /// Set the entry for process `p`.
    pub fn set(&mut self, p: usize, v: u32) {
        self.entries[p] = v;
    }

    /// Increment the entry for process `p` and return the new value.
    pub fn increment(&mut self, p: usize) -> u32 {
        self.entries[p] += 1;
        self.entries[p]
    }

    /// Component-wise maximum with `other`.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.len(), other.len(), "merging clocks of different size");
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Does this clock already cover interval `seq` of process `creator`?
    ///
    /// Interval sequence numbers are 1-based: the first closed interval of a
    /// process has `seq == 1`, and a clock entry of `k` covers intervals
    /// `1..=k`.
    pub fn covers(&self, creator: usize, seq: u32) -> bool {
        self.entries[creator] >= seq
    }

    /// True if every entry of `self` is `>=` the corresponding entry of
    /// `other`, i.e. `self` knows at least as much as `other`.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len());
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a >= b)
    }

    /// Sum of the entries — a linear extension key for `hb1`: if interval A
    /// happens-before interval B then `A.vc.sum() < B.vc.sum()`, so sorting
    /// diffs by this key applies them in an order consistent with `hb1`.
    pub fn sum(&self) -> u64 {
        self.entries.iter().map(|&e| e as u64).sum()
    }

    /// Raw entries, for wire encoding.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_and_covers() {
        let mut vc = VectorClock::new(4);
        assert!(!vc.covers(2, 1));
        assert_eq!(vc.increment(2), 1);
        assert!(vc.covers(2, 1));
        assert!(!vc.covers(2, 2));
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from_entries(vec![3, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 4, 2]);
        a.merge(&b);
        assert_eq!(a.entries(), &[3, 4, 5]);
    }

    #[test]
    fn dominates_is_a_partial_order() {
        let a = VectorClock::from_entries(vec![2, 2]);
        let b = VectorClock::from_entries(vec![1, 2]);
        let c = VectorClock::from_entries(vec![2, 1]);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&c));
        assert!(!c.dominates(&b));
        assert!(a.dominates(&a));
    }

    #[test]
    fn sum_is_a_linear_extension_key() {
        // b happens-before a (componentwise <=, strictly less somewhere).
        let a = VectorClock::from_entries(vec![2, 3, 1]);
        let b = VectorClock::from_entries(vec![2, 2, 1]);
        assert!(a.dominates(&b) && a != b);
        assert!(b.sum() < a.sum());
    }

    #[test]
    #[should_panic]
    fn merging_mismatched_sizes_panics() {
        let mut a = VectorClock::new(2);
        a.merge(&VectorClock::new(3));
    }
}

//! The home-based LRC (HLRC) backend: home assignment, eager diff flushing,
//! and full-page fault service.
//!
//! Every shared page is assigned a *home* process, round-robin over the
//! shared heap ([`home_of`]).  The home's copy of its pages is the master
//! copy and is never invalidated by write notices:
//!
//! * when a writer closes an interval (lock release or barrier arrival),
//!   the diffs of that interval are *flushed* to each modified page's home
//!   in one message per home, and the writer waits for the homes'
//!   acknowledgements before the synchronization proceeds — this is what
//!   makes the home's copy current before any process can learn of the
//!   interval through a write notice;
//! * an access fault on an invalidated page sends a single request to the
//!   page's home and receives the *full page* in one round trip, however
//!   many writers modified it;
//! * after the flush is acknowledged the writer discards the diff — HLRC
//!   keeps no diff history, so there is no diff accumulation and no
//!   protocol garbage to retain.
//!
//! The trade against the paper's TreadMarks protocol ([`super::lrc`]) is
//! exactly the one the follow-up literature measures: fewer fault
//! round-trips (one per fault instead of one per concurrent writer) and no
//! accumulated-diff traffic, in exchange for eager flush messages on every
//! release and full-page fetches on every fault.

use crate::page::{new_page, Diff, PageId};
use crate::process::Tmk;
use crate::proto::{
    decode_diff_flush, decode_flush_ack, decode_page_request, decode_page_response,
    encode_diff_flush, encode_flush_ack, encode_page_request, encode_page_response, TAG_DIFF_FLUSH,
    TAG_FLUSH_ACK, TAG_PAGE_REQ, TAG_PAGE_RESP,
};
use crate::protocol::{diff_counter_summary, ConsistencyProtocol, ProtocolKind};
use crate::state::{ClosedInterval, DsmState};
use crate::stats::TmkStats;
use crate::vc::VectorClock;
use crate::{MEM_BANDWIDTH, REQUEST_SERVICE_COST};
use bytes::Bytes;
use cluster::config::PAGE_SIZE;
use cluster::Message;
use std::collections::BTreeMap;

/// The home of `page`: pages are distributed round-robin over the processes
/// of the cluster, so consecutive pages of the shared heap live on
/// consecutive homes.
pub fn home_of(page: PageId, nprocs: usize) -> usize {
    page as usize % nprocs
}

/// The home-based-LRC backend singleton.
pub struct Hlrc;

impl ConsistencyProtocol for Hlrc {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Hlrc
    }

    fn describe(&self) -> &'static str {
        "home-based lazy release consistency: diffs flushed eagerly to a per-page home \
         at release/barrier, faults fetch the full page from the home"
    }

    /// Under HLRC the home's copy is the master copy: flushes keep it
    /// current before the notice can arrive, so it is never invalidated.
    fn invalidate_on_notice(&self, st: &DsmState, page: PageId) -> bool {
        home_of(page, st.nprocs) != st.me
    }

    /// The home's own writes are already in its master copy: no diff is
    /// needed for a page homed here, ever.
    fn diff_at_close(&self, st: &DsmState, page: PageId) -> bool {
        home_of(page, st.nprocs) != st.me
    }

    /// Every created diff is destined for a remote home; nothing is
    /// retained locally.
    fn retain_or_flush(
        &self,
        _st: &mut DsmState,
        page: PageId,
        _seq: u32,
        _vc: &VectorClock,
        _vc_wire: &Bytes,
        diff: Diff,
    ) -> Option<(PageId, Diff)> {
        Some((page, diff))
    }

    /// HLRC fault service: fetch the full page from its home in one round
    /// trip.
    fn serve_fault(&self, rt: &Tmk, page: PageId) {
        let home = rt.st.borrow().home_of(page);
        debug_assert_ne!(home, rt.id(), "the home never faults on its own pages");
        rt.proc()
            .send(home, TAG_PAGE_REQ, encode_page_request(page, rt.id()));
        rt.st.borrow_mut().stats.page_requests_sent += 1;
        let m = rt.wait_reply(TAG_PAGE_RESP);
        let (pid, home_applied, data) = decode_page_response(m.payload, rt.nprocs());
        assert_eq!(pid, page, "page response for an unexpected page");
        // Installing the incoming page is a page-sized copy.
        rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
        rt.st.borrow_mut().apply_page(page, &data, &home_applied);
    }

    /// Writer side of the eager flush: group the closed interval's diffs by
    /// home, send one flush message per home, and wait for every
    /// acknowledgement (serving incoming protocol requests meanwhile).
    ///
    /// Called from the interval-close path, i.e. before the release or
    /// barrier arrival that publishes the interval's write notices — which
    /// is the ordering that guarantees the home is current before anyone
    /// can fault on the page.
    fn publish_interval(&self, rt: &Tmk, closed: ClosedInterval) {
        if closed.flushes.is_empty() {
            return;
        }
        rt.proc()
            .span_begin(cluster::SpanCat::Flush, closed.flushes.len() as u64);
        let seq = closed.seq;
        let mut by_home: BTreeMap<usize, Vec<(PageId, Diff)>> = BTreeMap::new();
        for (page, diff) in closed.flushes {
            let home = rt.st.borrow().home_of(page);
            debug_assert_ne!(home, rt.id(), "own-homed pages are applied in place");
            by_home.entry(home).or_default().push((page, diff));
        }
        let homes = by_home.len();
        for (home, entries) in by_home {
            let bytes: usize = entries.iter().map(|(_, d)| d.encoded_len()).sum();
            let payload = encode_diff_flush(rt.id(), seq, &entries);
            // Creating each flushed diff scans the page and its twin (HLRC
            // pays diff creation eagerly, at flush time), and copying the
            // diffs into the flush message costs memory bandwidth too.
            let scan = entries.len() as f64 * 2.0 * PAGE_SIZE as f64;
            rt.proc().compute((scan + bytes as f64) / MEM_BANDWIDTH);
            rt.proc().send(home, TAG_DIFF_FLUSH, payload);
            let mut st = rt.st.borrow_mut();
            st.stats.diff_flushes_sent += 1;
            st.stats.flush_bytes_sent += bytes as u64;
        }
        for _ in 0..homes {
            let m = rt.wait_reply(TAG_FLUSH_ACK);
            let (creator, acked_seq) = decode_flush_ack(m.payload);
            assert_eq!(creator, rt.id(), "flush ack for another process");
            assert_eq!(acked_seq, seq, "flush ack for another interval");
        }
        rt.proc().span_end(cluster::SpanCat::Flush);
    }

    fn serve_request(&self, rt: &Tmk, m: Message) -> bool {
        match m.tag {
            TAG_DIFF_FLUSH => {
                serve_flush(rt, m);
                true
            }
            TAG_PAGE_REQ => {
                serve_page_request(rt, m);
                true
            }
            _ => false,
        }
    }

    fn counter_summary(&self, stats: &TmkStats) -> String {
        diff_counter_summary(stats)
    }
}

/// Serve an incoming diff flush (home side): apply each diff to the master
/// copy and acknowledge at the request's arrival time plus the service cost.
fn serve_flush(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (creator, seq, entries) = decode_diff_flush(m.payload);
    let bytes: usize = entries.iter().map(|(_, d)| d.encoded_len()).sum();
    {
        let mut st = rt.st.borrow_mut();
        for (page, diff) in &entries {
            st.apply_flush(*page, creator, seq, diff);
        }
    }
    // Applying the diffs to the master copy costs memory bandwidth.
    rt.proc().compute(bytes as f64 / MEM_BANDWIDTH);
    rt.proc().send_at(
        creator,
        TAG_FLUSH_ACK,
        encode_flush_ack(creator, seq),
        m.arrival + REQUEST_SERVICE_COST,
    );
}

/// Serve an incoming page fetch (home side): reply with the master copy at
/// the request's arrival time plus the service cost.
fn serve_page_request(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, requester) = decode_page_request(m.payload);
    let payload = {
        let mut st = rt.st.borrow_mut();
        st.stats.page_requests_served += 1;
        let (data, applied) = st.page_snapshot(page);
        encode_page_response(page, &applied, &data)
    };
    // Copying the page into the response steals cycles at the home.
    rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
    rt.proc().send_at(
        requester,
        TAG_PAGE_RESP,
        payload,
        m.arrival + REQUEST_SERVICE_COST,
    );
}

impl DsmState {
    /// The home of `page` in this cluster.
    pub fn home_of(&self, page: PageId) -> usize {
        home_of(page, self.nprocs)
    }

    /// Home side of a flush: incorporate one interval's diff for a page
    /// this process homes into the master copy.
    ///
    /// Concurrent intervals of a data-race-free program modify disjoint
    /// bytes, and causally ordered flushes arrive in causal order (a later
    /// writer must have fetched the page — and therefore the earlier flush —
    /// before writing), so applying flushes in arrival order is sound.
    pub fn apply_flush(&mut self, page: PageId, creator: usize, seq: u32, diff: &Diff) {
        debug_assert_eq!(self.home_of(page), self.me, "flush sent to a non-home");
        let nprocs = self.nprocs;
        let slot = &mut self.pages[page as usize];
        debug_assert!(slot.valid, "the home's master copy must stay valid");
        let data = slot.data.get_or_insert_with(new_page);
        diff.apply(data);
        // Keep an open local interval's twin in sync so the home's own diff
        // stays minimal, exactly as the LRC fetch path does.
        if let Some(twin) = slot.twin.as_mut() {
            diff.apply(twin);
        }
        let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
        if seq > applied.get(creator) {
            applied.set(creator, seq);
        }
        self.stats.diff_flushes_served += 1;
        self.stats.diff_bytes_received += diff.encoded_len() as u64;
    }

    /// Home side of a page fetch: the master copy of `page` and the clock of
    /// intervals incorporated into it.
    ///
    /// If the home itself is mid-interval on the page (dirty, twinned), the
    /// *twin* is served: it carries every committed flush (twins are kept in
    /// sync by [`Self::apply_flush`]) but not the home's own uncommitted
    /// writes, which no correctly synchronized reader may observe yet.
    pub fn page_snapshot(&self, page: PageId) -> (Vec<u8>, VectorClock) {
        debug_assert_eq!(self.home_of(page), self.me, "page fetch sent to a non-home");
        let slot = &self.pages[page as usize];
        let data = match (&slot.twin, &slot.data) {
            (Some(twin), _) => twin.to_vec(),
            (None, Some(data)) => data.to_vec(),
            (None, None) => vec![0u8; PAGE_SIZE],
        };
        let applied = slot
            .applied
            .clone()
            .unwrap_or_else(|| VectorClock::new(self.nprocs));
        (data, applied)
    }

    /// Requester side of a page fetch: adopt the home's copy as the local
    /// copy and clear the pending notices the home's clock covers.
    ///
    /// If the local process has uncommitted writes on the page (an open
    /// interval), they are replayed on top of the incoming copy and the twin
    /// is rebased, so the eventual flush of this interval carries only the
    /// local modifications.  A notice that arrived *during* the fetch (a
    /// barrier arrival served while waiting applies fresh interval records)
    /// may not be covered by the home's copy yet; it is retained and the
    /// page stays invalid, so the fault path fetches again.
    pub fn apply_page(&mut self, page: PageId, incoming: &[u8], home_applied: &VectorClock) {
        assert_eq!(incoming.len(), PAGE_SIZE, "page response must be one page");
        let nprocs = self.nprocs;
        let slot = &mut self.pages[page as usize];
        if slot.dirty {
            let twin = slot.twin.as_mut().expect("dirty page must have a twin");
            let data = slot.data.as_mut().expect("dirty page must have data");
            let local = Diff::create(twin, data);
            data.copy_from_slice(incoming);
            twin.copy_from_slice(incoming);
            local.apply(data);
        } else {
            let data = slot.data.get_or_insert_with(new_page);
            data.copy_from_slice(incoming);
        }
        let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
        applied.merge(home_applied);
        self.revalidate_page(page);
        self.stats.page_bytes_fetched += PAGE_SIZE as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: usize, n: usize) -> DsmState {
        DsmState::new_with(me, n, 1 << 20, ProtocolKind::Hlrc)
    }

    /// Drive one HLRC interval close at the state level, returning what the
    /// runtime would flush (the policy path exercised by `close_interval`).
    fn close(s: &mut DsmState) -> ClosedInterval {
        s.close_interval().expect("interval must close")
    }

    #[test]
    fn homes_are_round_robin_over_the_heap() {
        assert_eq!(home_of(0, 4), 0);
        assert_eq!(home_of(1, 4), 1);
        assert_eq!(home_of(4, 4), 0);
        assert_eq!(home_of(7, 4), 3);
        assert_eq!(home_of(5, 1), 0);
    }

    #[test]
    fn flush_updates_master_copy_and_version() {
        // Page 1 is homed on process 1 (of 2).
        let mut writer = state(0, 2);
        let mut home = state(1, 2);
        let addr = PAGE_SIZE; // page 1
        let _ = writer.malloc(2 * PAGE_SIZE, 8);
        let _ = home.malloc(2 * PAGE_SIZE, 8);
        writer.mark_dirty(writer.page_of(addr));
        writer.write_bytes(addr, &[9u8; 64]);
        let closed = close(&mut writer);
        assert_eq!(closed.flushes.len(), 1);
        let (page, diff) = &closed.flushes[0];
        home.apply_flush(*page, 0, closed.seq, diff);

        let (snapshot, applied) = home.page_snapshot(*page);
        assert!(snapshot[..64].iter().all(|&b| b == 9));
        assert!(applied.covers(0, 1));
        // HLRC keeps no diff history at the writer.
        assert_eq!(writer.diffs_held_for(*page), 0);
    }

    #[test]
    fn own_homed_pages_are_applied_in_place_without_flush() {
        let mut s = state(0, 2);
        let _ = s.malloc(2 * PAGE_SIZE, 8);
        s.mark_dirty(0); // page 0 is homed on process 0
        s.write_bytes(0, &[5u8; 16]);
        let closed = close(&mut s);
        assert!(closed.flushes.is_empty());
        let (snapshot, applied) = s.page_snapshot(0);
        assert!(snapshot[..16].iter().all(|&b| b == 5));
        assert!(applied.covers(0, 1));
    }

    #[test]
    fn snapshot_of_a_dirty_home_page_serves_the_twin() {
        let mut home = state(0, 2);
        let _ = home.malloc(PAGE_SIZE, 8);
        home.mark_dirty(0);
        home.write_bytes(0, &[1u8; 8]);
        home.close_interval();
        // A second, still-open interval must not leak into the snapshot.
        home.mark_dirty(0);
        home.write_bytes(8, &[2u8; 8]);
        let (snapshot, _) = home.page_snapshot(0);
        assert!(snapshot[..8].iter().all(|&b| b == 1));
        assert!(snapshot[8..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn fetch_rebases_an_open_interval_on_the_incoming_page() {
        let mut reader = state(0, 3);
        let _ = reader.malloc(3 * PAGE_SIZE, 8);
        let page = 1; // homed on process 1
        let addr = PAGE_SIZE;
        reader.mark_dirty(page);
        reader.write_bytes(addr, &[7u8; 8]);

        // The home's copy carries another writer's committed interval.
        let mut incoming = vec![0u8; PAGE_SIZE];
        incoming[100..108].copy_from_slice(&[3u8; 8]);
        let mut home_applied = VectorClock::new(3);
        home_applied.set(2, 1);
        // Pretend we were notified of that interval, then fetch.
        reader.apply_page(page, &incoming, &home_applied);

        let mut own = [0u8; 8];
        reader.read_bytes(addr, &mut own);
        assert_eq!(own, [7u8; 8], "local uncommitted writes survive the fetch");
        let mut other = [0u8; 8];
        reader.read_bytes(addr + 100, &mut other);
        assert_eq!(other, [3u8; 8], "the home's committed data is adopted");

        // The rebased twin keeps the eventual flush minimal.
        let closed = close(&mut reader);
        let (_, diff) = &closed.flushes[0];
        assert_eq!(diff.modified_bytes(), 8);
    }

    #[test]
    fn write_notices_do_not_invalidate_the_home() {
        use crate::proto::IntervalRecord;
        let mut home = state(0, 2);
        let mut other = state(1, 2);
        let _ = home.malloc(2 * PAGE_SIZE, 8);
        let _ = other.malloc(2 * PAGE_SIZE, 8);
        // Process 1 modifies pages 0 (homed at 0) and 1 (homed at 1).
        let rec = IntervalRecord {
            creator: 1,
            seq: 1,
            vc: VectorClock::from_entries(vec![0, 1]),
            pages: vec![0, 1],
        };
        home.apply_interval_record(&rec);
        assert!(home.is_valid(0), "own-homed page stays valid");
        assert!(!home.is_valid(1), "remote-homed page is invalidated");
        assert!(home.notices_of(0).is_empty());
        assert_eq!(home.notices_of(1).len(), 1);
        let _ = other;
    }
}

//! The sequential-consistency baseline: a single-writer, invalidate-on-write
//! ownership protocol — the naive page-based DSM (in the IVY tradition) that
//! the paper's multiple-writer, lazy design arguments are measured against.
//!
//! Every page has exactly one *owner* at a time (the holder of its ownership
//! token, whose copy is the master) and a static *manager* (round-robin,
//! like HLRC homes) that serializes ownership changes exactly the way the
//! runtime's lock managers serialize lock tokens: the manager records only
//! the *last requester*, forwards each incoming request to the requester
//! before it, and the page itself — its contents **and its copyset** (who
//! holds a readable copy) — travels along that chain:
//!
//! * a **write** to a page not held exclusively asks the manager; the
//!   request chains to the current owner, which transfers the full page,
//!   the token and the copyset (invalidating its own copy); the new owner
//!   then invalidates every copyset member — and waits for their
//!   acknowledgements — before the write proceeds.  A write by an owner
//!   whose page was merely downgraded by readers invalidates its copyset
//!   locally, with no manager round trip.  Consecutive writes by the
//!   exclusive owner are free;
//! * a **read** of an invalid page fetches a shared copy from the owner via
//!   the same chain (the owner records the reader in the copyset and
//!   downgrades from exclusive to shared);
//! * there are **no twins, diffs or intervals**: data moves at access time,
//!   eagerly, so false sharing costs page ping-pong and every first write
//!   costs an invalidation round — exactly the overheads lazy release
//!   consistency exists to remove.
//!
//! Liveness is the lock-token argument: a forwarded request reaching a
//! process that does not hold the page yet is *queued* there and served
//! when that process's own access completes
//! ([`ConsistencyProtocol::access_done`]); since each request waits on its
//! serialization predecessor and the earliest requester waits on the actual
//! holder, every chain bottoms out.  A reader whose copy is invalidated
//! while its fetch is in flight discards the stale copy and refaults, so a
//! stale page can never be installed over a newer invalidation.

use crate::page::{new_page, PageId};
use crate::process::Tmk;
use crate::proto::{
    decode_sc_ack, decode_sc_page_copy, decode_sc_page_transfer, decode_sc_request, encode_sc_ack,
    encode_sc_page_copy, encode_sc_page_transfer, encode_sc_request, TAG_SC_INVAL,
    TAG_SC_INVAL_ACK, TAG_SC_PAGE_COPY, TAG_SC_PAGE_XFER, TAG_SC_READ_FWD, TAG_SC_READ_REQ,
    TAG_SC_WRITE_FWD, TAG_SC_WRITE_REQ,
};
use crate::protocol::{ConsistencyProtocol, ProtocolKind};
use crate::state::{DsmState, PageSlot};
use crate::stats::TmkStats;
use crate::{MEM_BANDWIDTH, PAGE_FAULT_COST, REQUEST_SERVICE_COST};
use cluster::config::PAGE_SIZE;
use cluster::Message;
use std::collections::{BTreeMap, VecDeque};

/// The sequential-consistency backend singleton.
pub struct Sc;

/// Local coherence state of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No readable copy here.
    Invalid,
    /// A readable copy; the owner holds this mode after serving readers.
    Shared,
    /// The only copy in the cluster; writes are free.
    Exclusive,
}

/// What a process is blocked acquiring (one access at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acquire {
    Read,
    Write,
}

/// A forwarded request that reached this process before its turn with the
/// page ended (or before the page even arrived); served when the current
/// access completes.
#[derive(Debug)]
enum Deferred {
    /// Hand the page, the ownership token and the copyset to `requester`.
    Transfer { page: PageId, requester: usize },
    /// Send `requester` a read copy and record it in the copyset.
    Copy { page: PageId, requester: usize },
}

impl Deferred {
    fn page(&self) -> PageId {
        match self {
            Deferred::Transfer { page, .. } | Deferred::Copy { page, .. } => *page,
        }
    }
}

/// Per-process protocol-private state, created by [`Sc`]'s
/// [`ConsistencyProtocol::make_state`] and stored opaquely in [`DsmState`].
pub(crate) struct ScState {
    me: usize,
    nprocs: usize,
    /// Local mode of every page.  Everything starts `Shared`: all copies are
    /// valid zero pages, owned by their managers.
    mode: Vec<Mode>,
    /// Whether this process holds the ownership token of each page
    /// (initially true at the page's manager).
    owner: Vec<bool>,
    /// Owner-side: the processes (other than the owner) holding readable
    /// copies.  Travels with the token on every transfer.  Absent = the
    /// initial era: every other process (all copies start valid).
    copyset: BTreeMap<PageId, Vec<usize>>,
    /// Manager-side: the most recent write requester — where the token is
    /// headed, and therefore where the next request must chain to.
    last_requester: BTreeMap<PageId, usize>,
    /// Requests queued here until the current access completes (FIFO, which
    /// together with in-order delivery keeps reads ahead of the write that
    /// follows them in the manager's serialization).
    deferred: VecDeque<Deferred>,
    /// Pages already acquired for the write span in progress: pinned until
    /// the access completes, so a span is taken atomically.  Without this,
    /// two writers of overlapping multi-page spans steal each other's
    /// first page while blocked acquiring the second and livelock; pages
    /// are acquired in ascending order, so pinning cannot deadlock (a
    /// holder of a pinned page only ever waits for a higher-numbered one).
    pinned: Vec<PageId>,
    /// The page this process is currently acquiring, if any.
    acquiring: Option<(PageId, Acquire)>,
    /// An invalidation hit the page being read-acquired: the in-flight copy
    /// is stale and must be discarded.
    retry_read: bool,
}

impl ScState {
    /// The static manager of `page` (round-robin over the heap).
    fn manager_of(&self, page: PageId) -> usize {
        page as usize % self.nprocs
    }

    /// Manager-side: the process the token is currently headed to.
    fn last_requester(&self, page: PageId) -> usize {
        self.last_requester
            .get(&page)
            .copied()
            .unwrap_or_else(|| self.manager_of(page))
    }

    /// Owner-side: take the copyset (leaving it empty).
    fn take_copyset(&mut self, page: PageId) -> Vec<usize> {
        let (me, nprocs) = (self.me, self.nprocs);
        std::mem::take(
            self.copyset
                .entry(page)
                .or_insert_with(|| initial_copyset(me, nprocs)),
        )
    }

    /// Owner-side: record `p` as a copy holder (kept sorted so every
    /// iteration order is deterministic).
    fn copyset_add(&mut self, page: PageId, p: usize) {
        let (me, nprocs) = (self.me, self.nprocs);
        let cs = self
            .copyset
            .entry(page)
            .or_insert_with(|| initial_copyset(me, nprocs));
        if !cs.contains(&p) {
            cs.push(p);
            cs.sort_unstable();
        }
    }

    /// Whether this process is mid-acquisition of `page`.
    fn acquiring_page(&self, page: PageId) -> bool {
        matches!(self.acquiring, Some((p, _)) if p == page)
    }

    /// Whether an incoming request for `page` can be served right now: the
    /// token is here, this process is neither mid-acquisition of the page
    /// nor holding it pinned for an in-progress multi-page span, and
    /// nothing for the page is already queued (serving past the queue
    /// would reorder a transfer ahead of a read the manager serialized
    /// before it).  Anything not serveable is deferred to `access_done`.
    fn can_serve(&self, page: PageId) -> bool {
        self.owner[page as usize]
            && !self.acquiring_page(page)
            && !self.pinned.contains(&page)
            && !self.deferred.iter().any(|d| d.page() == page)
    }
}

/// The initial-era copyset of a page whose owner is `me`: every other
/// process holds a valid zero copy (all pages start valid everywhere,
/// owned by their managers).
fn initial_copyset(me: usize, nprocs: usize) -> Vec<usize> {
    (0..nprocs).filter(|&p| p != me).collect()
}

/// Split one `DsmState` borrow into the pieces the SC paths touch together.
fn parts(st: &mut DsmState) -> (&mut Vec<PageSlot>, &mut ScState, &mut TmkStats) {
    let (pages, protocol_state, stats) = st.pages_protocol_state_stats();
    (
        pages,
        protocol_state
            .downcast_mut::<ScState>()
            .expect("SC endpoint without SC state"),
        stats,
    )
}

/// Run `f` over the SC state under a fresh borrow of the endpoint's state.
fn with_state<R>(
    rt: &Tmk,
    f: impl FnOnce(&mut Vec<PageSlot>, &mut ScState, &mut TmkStats) -> R,
) -> R {
    let mut st = rt.st.borrow_mut();
    let (pages, s, stats) = parts(&mut st);
    f(pages, s, stats)
}

impl ConsistencyProtocol for Sc {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Sc
    }

    fn describe(&self) -> &'static str {
        "sequential consistency (single-writer baseline): page ownership transfer with \
         invalidate-on-write — no twins, diffs or intervals"
    }

    fn make_state(&self, me: usize, nprocs: usize, npages: usize) -> Box<dyn std::any::Any> {
        Box::new(ScState {
            me,
            nprocs,
            mode: vec![Mode::Shared; npages],
            owner: (0..npages).map(|page| page % nprocs == me).collect(),
            copyset: BTreeMap::new(),
            last_requester: BTreeMap::new(),
            deferred: VecDeque::new(),
            pinned: Vec::new(),
            acquiring: None,
            retry_read: false,
        })
    }

    /// SC never twins: writes are trapped through exclusive ownership, and
    /// no interval ever closes.
    fn uses_twins(&self) -> bool {
        false
    }

    /// Read-fault service: fetch a shared copy from the owner through the
    /// manager's chain.  If an invalidation hits while the copy is in
    /// flight, the stale copy is discarded and the generic fault loop
    /// re-requests.
    fn serve_fault(&self, rt: &Tmk, page: PageId) {
        let me = rt.id();
        let mgr = with_state(rt, |_, s, stats| {
            stats.page_requests_sent += 1;
            debug_assert!(s.acquiring.is_none(), "nested page acquisition");
            s.acquiring = Some((page, Acquire::Read));
            s.retry_read = false;
            s.manager_of(page)
        });
        if mgr == me {
            let prev = with_state(rt, |_, s, _| s.last_requester(page));
            assert_ne!(prev, me, "an owner-to-be cannot be read-faulting");
            rt.proc()
                .send(prev, TAG_SC_READ_FWD, encode_sc_request(page, me));
        } else {
            rt.proc()
                .send(mgr, TAG_SC_READ_REQ, encode_sc_request(page, me));
        }
        let m = rt.wait_reply(TAG_SC_PAGE_COPY);
        let (pid, data) = decode_sc_page_copy(m.payload);
        assert_eq!(pid, page, "read copy for an unexpected page");
        // Installing the incoming page is a page-sized copy.
        rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
        with_state(rt, |pages, s, stats| {
            stats.page_bytes_fetched += PAGE_SIZE as u64;
            s.acquiring = None;
            if s.retry_read {
                s.retry_read = false;
                return; // page stays invalid; the fault loop re-requests
            }
            let slot = &mut pages[page as usize];
            slot.data
                .get_or_insert_with(new_page)
                .copy_from_slice(&data);
            slot.valid = true;
            s.mode[page as usize] = Mode::Shared;
        });
    }

    /// The SC write trap: every page of the span must be held exclusively,
    /// and the span is taken atomically — each page is pinned as soon as
    /// the ascending scan confirms it, so a request for an earlier page of
    /// the span defers instead of stealing it while this process blocks
    /// acquiring a later one (without the pin, two writers of overlapping
    /// spans swap pages forever; with it, the ascending order rules out
    /// circular waits: a pinned-page holder only ever waits for a
    /// higher-numbered page).  The scan still repeats until a clean pass
    /// (a pinned page cannot be lost, so the second pass is a pure
    /// check).
    fn prepare_write(&self, rt: &Tmk, addr: usize, len: usize) {
        loop {
            let pages = rt.st.borrow().pages_spanning(addr, len);
            let mut acted = false;
            for page in pages {
                let exclusive = with_state(rt, |_, s, _| s.mode[page as usize] == Mode::Exclusive);
                if !exclusive {
                    acquire_exclusive(rt, page);
                    acted = true;
                }
                // Pin the page for the rest of the span: requests for it
                // now defer to `access_done` instead of stealing it while a
                // later page of the span is still being acquired.
                with_state(rt, |_, s, _| {
                    if !s.pinned.contains(&page) {
                        s.pinned.push(page);
                    }
                });
            }
            if !acted {
                return;
            }
        }
    }

    /// The access completed: release the span pins, then serve the
    /// transfers and copies that were queued while this process was
    /// acquiring or using the pages.
    fn access_done(&self, rt: &Tmk) {
        with_state(rt, |_, s, _| s.pinned.clear());
        loop {
            let next = with_state(rt, |_, s, _| s.deferred.pop_front());
            let Some(d) = next else { return };
            match d {
                Deferred::Transfer { page, requester } => transfer_page(rt, page, requester, None),
                Deferred::Copy { page, requester } => send_copy(rt, page, requester, None),
            }
        }
    }

    /// SC has no intervals: a release is pure synchronization (the data
    /// already moved, eagerly, at access time).
    fn at_release(&self, rt: &Tmk) {
        let _ = rt;
    }

    /// SC has no intervals: a barrier arrival publishes nothing.
    fn at_barrier(&self, rt: &Tmk) {
        let _ = rt;
    }

    fn serve_request(&self, rt: &Tmk, m: Message) -> bool {
        match m.tag {
            TAG_SC_WRITE_REQ => serve_write_req(rt, m),
            TAG_SC_WRITE_FWD => serve_write_fwd(rt, m),
            TAG_SC_READ_REQ => serve_read_req(rt, m),
            TAG_SC_READ_FWD => serve_read_fwd(rt, m),
            TAG_SC_INVAL => serve_inval(rt, m),
            _ => return false,
        }
        true
    }

    fn counter_summary(&self, stats: &TmkStats) -> String {
        format!(
            "{:>8} faults {:>8} page-req {:>8} transfers {:>8} invals {:>10} page-KB",
            stats.page_faults,
            stats.page_requests_sent,
            stats.ownership_transfers,
            stats.invalidations_sent,
            (stats.page_bytes_fetched / 1024),
        )
    }
}

/// Acquire exclusive ownership of `page` (the write fault).  An owner whose
/// page was downgraded by readers invalidates its copyset directly; anyone
/// else requests the page through the manager's chain, installs the
/// transferred copy, and then invalidates the copyset that travelled with
/// it.  Either way the write proceeds only after every acknowledgement.
fn acquire_exclusive(rt: &Tmk, page: PageId) {
    // The write fault counts its own `page_faults` (it does not route
    // through `Tmk::fault_in`), so it opens its own fault span too — the
    // one-span-per-counted-fault cross-check holds under SC as well.
    rt.proc().span_begin(cluster::SpanCat::Fault, page as u64);
    rt.proc().compute(PAGE_FAULT_COST);
    let me = rt.id();
    let (is_owner, mgr) = with_state(rt, |_, s, stats| {
        stats.page_faults += 1;
        debug_assert!(s.acquiring.is_none(), "nested page acquisition");
        s.acquiring = Some((page, Acquire::Write));
        (s.owner[page as usize], s.manager_of(page))
    });
    let targets: Vec<usize> = if is_owner {
        // Shared-owner upgrade: readers took copies since the last write;
        // the local copy is current and the copyset is here — invalidate
        // it without a manager round trip.
        with_state(rt, |_, s, _| s.take_copyset(page))
    } else {
        rt.st.borrow_mut().stats.page_requests_sent += 1;
        if mgr == me {
            let prev = with_state(rt, |_, s, _| {
                let prev = s.last_requester(page);
                s.last_requester.insert(page, me);
                prev
            });
            assert_ne!(prev, me, "a faulting writer cannot be its own predecessor");
            rt.proc()
                .send(prev, TAG_SC_WRITE_FWD, encode_sc_request(page, me));
        } else {
            rt.proc()
                .send(mgr, TAG_SC_WRITE_REQ, encode_sc_request(page, me));
        }
        let m = rt.wait_reply(TAG_SC_PAGE_XFER);
        let (pid, cs, data) = decode_sc_page_transfer(m.payload);
        assert_eq!(pid, page, "ownership transfer for an unexpected page");
        // Installing the incoming page is a page-sized copy.
        rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
        with_state(rt, |pages, s, stats| {
            stats.page_bytes_fetched += PAGE_SIZE as u64;
            stats.ownership_transfers += 1;
            pages[page as usize]
                .data
                .get_or_insert_with(new_page)
                .copy_from_slice(&data);
            // The token is here; requests arriving from now on queue
            // behind this acquisition instead of chaining further.
            s.owner[page as usize] = true;
            s.copyset.insert(page, Vec::new());
            cs.into_iter().filter(|&p| p != me).collect()
        })
    };
    for &t in &targets {
        rt.proc().send(t, TAG_SC_INVAL, encode_sc_request(page, me));
        rt.st.borrow_mut().stats.invalidations_sent += 1;
    }
    for _ in 0..targets.len() {
        let m = rt.wait_reply(TAG_SC_INVAL_ACK);
        assert_eq!(decode_sc_ack(m.payload), page, "ack for an unexpected page");
    }
    with_state(rt, |pages, s, _| {
        debug_assert!(
            s.owner[page as usize],
            "completing a write without the token"
        );
        pages[page as usize].valid = true;
        s.mode[page as usize] = Mode::Exclusive;
        s.acquiring = None;
    });
    rt.proc().span_end(cluster::SpanCat::Fault);
}

/// Hand `page`, its ownership token and its copyset to `requester`,
/// invalidating the local copy.  `depart` is the interrupt-style departure
/// time when the transfer answers an incoming request directly; `None`
/// sends now (a queued transfer drained after an access).
fn transfer_page(rt: &Tmk, page: PageId, requester: usize, depart: Option<f64>) {
    let payload = with_state(rt, |pages, s, stats| {
        debug_assert!(s.owner[page as usize], "transferring a page not owned here");
        stats.page_requests_served += 1;
        let mut cs = s.take_copyset(page);
        cs.retain(|&p| p != requester); // the new owner is no copy-holder
        let slot = &mut pages[page as usize];
        let payload = match &slot.data {
            Some(data) => encode_sc_page_transfer(page, &cs, data),
            None => encode_sc_page_transfer(page, &cs, &new_page()),
        };
        // The transfer invalidates this copy itself, so this process never
        // appears in the copyset it sends.
        slot.valid = false;
        s.owner[page as usize] = false;
        s.mode[page as usize] = Mode::Invalid;
        payload
    });
    // Copying the page into the transfer steals cycles here.
    rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
    match depart {
        Some(t) => rt.proc().send_at(requester, TAG_SC_PAGE_XFER, payload, t),
        None => rt.proc().send(requester, TAG_SC_PAGE_XFER, payload),
    }
}

/// Send `requester` a read copy of `page`, recording it in the copyset and
/// downgrading an exclusive owner to shared.
fn send_copy(rt: &Tmk, page: PageId, requester: usize, depart: Option<f64>) {
    let payload = with_state(rt, |pages, s, stats| {
        debug_assert!(
            s.owner[page as usize],
            "serving a copy of a page not owned here"
        );
        stats.page_requests_served += 1;
        s.copyset_add(page, requester);
        if s.mode[page as usize] == Mode::Exclusive {
            s.mode[page as usize] = Mode::Shared;
        }
        match &pages[page as usize].data {
            Some(data) => encode_sc_page_copy(page, data),
            None => encode_sc_page_copy(page, &new_page()),
        }
    });
    // Copying the page into the response steals cycles here.
    rt.proc().compute(PAGE_SIZE as f64 / MEM_BANDWIDTH);
    match depart {
        Some(t) => rt.proc().send_at(requester, TAG_SC_PAGE_COPY, payload, t),
        None => rt.proc().send(requester, TAG_SC_PAGE_COPY, payload),
    }
}

/// Serve (or queue) a chained ownership transfer: the requester's turn
/// comes right after this process's.
fn route_transfer(rt: &Tmk, page: PageId, requester: usize, depart: Option<f64>) {
    let serve_now = with_state(rt, |_, s, _| {
        if s.can_serve(page) {
            true
        } else {
            s.deferred.push_back(Deferred::Transfer { page, requester });
            false
        }
    });
    if serve_now {
        transfer_page(rt, page, requester, depart);
    }
}

/// Serve (or queue) a chained read-copy request.
fn route_copy(rt: &Tmk, page: PageId, requester: usize, depart: Option<f64>) {
    let serve_now = with_state(rt, |_, s, _| {
        if s.can_serve(page) {
            true
        } else {
            s.deferred.push_back(Deferred::Copy { page, requester });
            false
        }
    });
    if serve_now {
        send_copy(rt, page, requester, depart);
    }
}

/// Manager side of a write fault: chain the request to the previous
/// requester (lock-token style) and record the new one.
fn serve_write_req(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, requester) = decode_sc_request(m.payload.clone());
    let me = rt.id();
    let depart = m.arrival + REQUEST_SERVICE_COST;
    let prev = with_state(rt, |_, s, _| {
        debug_assert_eq!(
            s.manager_of(page),
            me,
            "write request sent to a non-manager"
        );
        let prev = s.last_requester(page);
        s.last_requester.insert(page, requester);
        prev
    });
    assert_ne!(
        prev, requester,
        "a faulting writer cannot be its own predecessor"
    );
    if prev == me {
        route_transfer(rt, page, requester, Some(depart));
    } else {
        rt.proc().send_at(prev, TAG_SC_WRITE_FWD, m.payload, depart);
    }
}

/// Chained-owner side of a forwarded write fault.
fn serve_write_fwd(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, requester) = decode_sc_request(m.payload);
    route_transfer(rt, page, requester, Some(m.arrival + REQUEST_SERVICE_COST));
}

/// Manager side of a read fault: chain the request to where the token is
/// headed (reads do not move the token).
fn serve_read_req(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, requester) = decode_sc_request(m.payload.clone());
    let me = rt.id();
    let depart = m.arrival + REQUEST_SERVICE_COST;
    let prev = with_state(rt, |_, s, _| {
        debug_assert_eq!(s.manager_of(page), me, "read request sent to a non-manager");
        s.last_requester(page)
    });
    assert_ne!(prev, requester, "a faulting reader cannot hold the token");
    if prev == me {
        route_copy(rt, page, requester, Some(depart));
    } else {
        rt.proc().send_at(prev, TAG_SC_READ_FWD, m.payload, depart);
    }
}

/// Chained-owner side of a forwarded read fault.
fn serve_read_fwd(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, requester) = decode_sc_request(m.payload);
    route_copy(rt, page, requester, Some(m.arrival + REQUEST_SERVICE_COST));
}

/// Copyset-member side of an invalidation: discard the local copy and
/// acknowledge.  A read fetch in flight for the page is marked stale so the
/// reader discards and refaults instead of installing it.
fn serve_inval(rt: &Tmk, m: Message) {
    rt.proc().compute(REQUEST_SERVICE_COST);
    let (page, new_owner) = decode_sc_request(m.payload);
    with_state(rt, |pages, s, stats| {
        stats.invalidations_received += 1;
        debug_assert!(!s.owner[page as usize], "an owner can never be invalidated");
        if matches!(s.acquiring, Some((p, Acquire::Read)) if p == page) {
            s.retry_read = true;
        }
        s.mode[page as usize] = Mode::Invalid;
        pages[page as usize].valid = false;
    });
    rt.proc().send_at(
        new_owner,
        TAG_SC_INVAL_ACK,
        encode_sc_ack(page),
        m.arrival + REQUEST_SERVICE_COST,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig};

    fn run<R: Send>(n: usize, f: impl Fn(&Tmk) -> R + Send + Sync) -> cluster::ClusterReport<R> {
        Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
            let tmk = Tmk::with_protocol(p, ProtocolKind::Sc);
            let r = f(&tmk);
            tmk.exit();
            r
        })
    }

    #[test]
    fn single_process_needs_no_messages() {
        let rep = run(1, |tmk| {
            let a = tmk.malloc(1024);
            tmk.barrier(0);
            tmk.write_f64(a, 2.5);
            tmk.barrier(1);
            tmk.read_f64(a)
        });
        assert_eq!(rep.results[0], 2.5);
        assert_eq!(rep.total_messages(), 0);
    }

    #[test]
    fn first_write_invalidates_every_initial_copy() {
        let n = 4;
        let rep = run(n, move |tmk| {
            let a = tmk.malloc(8);
            if tmk.id() == 1 {
                tmk.write_i64(a, 7);
            }
            tmk.barrier(0);
            let v = tmk.read_i64(a);
            tmk.barrier(1);
            (v, tmk.stats())
        });
        assert!(rep.results.iter().all(|(v, _)| *v == 7));
        let writer = &rep.results[1].1;
        // All initial copies start valid, so the first write invalidates
        // every other process except the transferring owner (the manager).
        assert_eq!(writer.ownership_transfers, 1);
        assert_eq!(writer.invalidations_sent, (n - 2) as u64);
        // Nothing twin/diff shaped ever happens.
        assert_eq!(writer.twins_created, 0);
        assert_eq!(writer.diffs_created, 0);
        assert_eq!(writer.diff_requests_sent, 0);
    }

    #[test]
    fn consecutive_writes_by_the_owner_are_free() {
        let rep = run(2, |tmk| {
            let a = tmk.malloc(64);
            if tmk.id() == 0 {
                for i in 0..8 {
                    tmk.write_i64(a + i * 8, i as i64);
                }
            }
            tmk.barrier(0);
            tmk.stats()
        });
        // One exclusive acquisition covers all eight writes, and the
        // manager-owner upgrades locally without a request message.
        assert_eq!(rep.results[0].page_faults, 1);
        assert_eq!(rep.results[0].page_requests_sent, 0);
        assert_eq!(rep.results[0].invalidations_sent, 1);
    }

    #[test]
    fn ownership_ping_pongs_between_alternating_writers() {
        let rep = run(2, |tmk| {
            let a = tmk.malloc(8);
            tmk.barrier(0);
            for round in 0..3u32 {
                if tmk.id() == round as usize % 2 {
                    let v = tmk.read_i64(a);
                    tmk.write_i64(a, v + 1);
                }
                tmk.barrier(1 + round);
            }
            tmk.read_i64(a)
        });
        assert!(rep.results.iter().all(|&v| v == 3));
    }

    #[test]
    fn readers_refetch_after_a_remote_write() {
        let n = 3;
        let rep = run(n, move |tmk| {
            let a = tmk.malloc(8);
            tmk.barrier(0);
            if tmk.id() == 0 {
                tmk.write_i64(a, 10);
            }
            tmk.barrier(1);
            let first = tmk.read_i64(a);
            tmk.barrier(2);
            if tmk.id() == 1 {
                tmk.write_i64(a, 20);
            }
            tmk.barrier(3);
            first * 100 + tmk.read_i64(a)
        });
        assert!(rep.results.iter().all(|&v| v == 1020));
    }

    #[test]
    fn lock_protected_counter_is_exact() {
        let n = 4;
        let iters = 6;
        let rep = run(n, move |tmk| {
            let counter = tmk.malloc(8);
            tmk.barrier(0);
            for _ in 0..iters {
                tmk.lock_acquire(0);
                let v = tmk.read_i64(counter);
                tmk.write_i64(counter, v + 1);
                tmk.lock_release(0);
            }
            tmk.barrier(1);
            tmk.read_i64(counter)
        });
        assert!(rep.results.iter().all(|&v| v == (n * iters) as i64));
    }

    #[test]
    fn false_sharing_costs_transfers_not_corruption() {
        // Two processes write disjoint halves of one page between barriers:
        // under a single-writer protocol the page ping-pongs, but both
        // halves must survive.
        let rep = run(2, |tmk| {
            let a = tmk.malloc_aligned(4096, 4096);
            tmk.barrier(0);
            let me = tmk.id();
            for i in 0..16 {
                tmk.write_i64(a + me * 2048 + i * 8, (me * 100 + i) as i64);
            }
            tmk.barrier(1);
            let other = 1 - me;
            let mut ok = true;
            for i in 0..16 {
                ok &= tmk.read_i64(a + other * 2048 + i * 8) == (other * 100 + i) as i64;
            }
            (ok, tmk.stats())
        });
        assert!(rep.results.iter().all(|(ok, _)| *ok));
        let transfers: u64 = rep.results.iter().map(|(_, s)| s.ownership_transfers).sum();
        assert!(transfers >= 2, "concurrent writers must trade ownership");
    }

    #[test]
    fn multi_page_write_spans_under_contention_stay_coherent() {
        // A single `write_bytes` spanning two pages acquires them one at a
        // time; requests for the already-acquired page queue while the next
        // is still being acquired, and later requests must not jump that
        // queue (regression: `can_serve` must respect the deferred queue).
        // Two writers rewrite an overlapping two-page span while readers
        // poll it, round after round.
        let n = 4;
        let rounds = 4u32;
        let rep = run(n, move |tmk| {
            let a = tmk.malloc_aligned(2 * PAGE_SIZE, PAGE_SIZE);
            tmk.barrier(0);
            let mut sum = 0i64;
            for round in 0..rounds {
                let writer = (round as usize) % 2;
                if tmk.id() == writer {
                    // One span crossing the page boundary: both pages must
                    // be held exclusively before the bytes land.
                    let src = vec![round as u8 + 1; PAGE_SIZE];
                    tmk.write_bytes(a + PAGE_SIZE / 2, &src);
                }
                tmk.barrier(1 + round);
                let mut buf = [0u8; 16];
                tmk.read_bytes(a + PAGE_SIZE - 8, &mut buf);
                assert!(
                    buf.iter().all(|&b| b == round as u8 + 1),
                    "round {round}: read {buf:?} across the boundary"
                );
                sum += i64::from(buf[0]);
                tmk.barrier(100 + round);
            }
            sum
        });
        let expect: i64 = (0..rounds).map(|r| i64::from(r as u8 + 1)).sum();
        assert!(rep.results.iter().all(|&v| v == expect));
    }

    #[test]
    fn concurrent_overlapping_spans_make_progress() {
        // Regression (livelock): without span pinning, two writers
        // hammering the same boundary-crossing two-page span steal each
        // other's already-acquired page while blocked acquiring the other,
        // and the repeat-until-clean-pass write trap swaps the pages
        // forever (this exact shape hangs if `can_serve` ignores
        // `pinned`).  The race is benign — both write the same bytes — so
        // the values are still determined.
        let iters = 25;
        let rep = run(2, move |tmk| {
            let a = tmk.malloc_aligned(2 * PAGE_SIZE, PAGE_SIZE);
            tmk.barrier(0);
            let src = vec![9u8; PAGE_SIZE];
            for _ in 0..iters {
                tmk.write_bytes(a + PAGE_SIZE / 2, &src);
            }
            tmk.barrier(1);
            let mut buf = [0u8; 128];
            tmk.read_bytes(a + PAGE_SIZE - 64, &mut buf);
            assert!(buf.iter().all(|&b| b == 9));
            tmk.barrier(2);
            i64::from(buf[0])
        });
        assert!(rep.results.iter().all(|&v| v == 9));
    }

    #[test]
    fn sc_is_deterministic() {
        let go = || {
            run(4, |tmk| {
                let a = tmk.malloc(4096);
                tmk.barrier(0);
                for round in 0..2u32 {
                    if tmk.id() == round as usize % 4 {
                        for i in 0..32 {
                            tmk.write_i64(a + i * 8, (round as usize * 1000 + i) as i64);
                        }
                    }
                    tmk.barrier(1 + round);
                }
                tmk.read_i64(a)
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        for (sa, sb) in a.stats.iter().zip(&b.stats) {
            assert_eq!(sa.finish_time.to_bits(), sb.finish_time.to_bits());
            assert_eq!(sa.messages_sent, sb.messages_sent);
        }
    }
}

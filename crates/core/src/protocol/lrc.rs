//! The paper's TreadMarks protocol: multiple-writer lazy release consistency
//! with an invalidate protocol.
//!
//! Diffs stay with their writers: closing an interval stores the created
//! diffs in the local diff store ([`crate::diffs`]), an access fault sends a
//! diff request to each member of the minimal dominating set of writers
//! named by the page's pending write notices, and responders practice *diff
//! accumulation* — they return every diff the requester lacks, including
//! ones later diffs completely overwrite.  Garbage collection must first
//! validate every invalid page and synchronize (so no peer's in-flight
//! request can name a collected diff); this is the validate-and-sync step of
//! the paper's barrier-time GC.

use crate::page::PageId;
use crate::process::Tmk;
use crate::proto::{
    decode_diff_request, decode_diff_response, encode_diff_request, TAG_DIFF_REQ, TAG_DIFF_RESP,
};
use crate::protocol::{diff_counter_summary, ConsistencyProtocol, ProtocolKind};
use crate::stats::TmkStats;
use crate::{MEM_BANDWIDTH, REQUEST_SERVICE_COST};
use cluster::config::PAGE_SIZE;
use cluster::Message;

/// The lazy-release-consistency backend singleton.
pub struct Lrc;

impl ConsistencyProtocol for Lrc {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Lrc
    }

    fn describe(&self) -> &'static str {
        "multiple-writer lazy release consistency (the paper's TreadMarks protocol): \
         diffs stay with their writers, faults fetch from the dominating writer set"
    }

    /// LRC fault service: request diffs for `page` from the minimal
    /// dominating set of writers, apply them in `hb1` order, and mark the
    /// page valid.
    fn serve_fault(&self, rt: &Tmk, page: PageId) {
        let (targets, applied_vc, my_vc) = {
            let st = rt.st.borrow();
            (
                st.diff_request_targets(page),
                st.page_applied_vc(page),
                st.vc.clone(),
            )
        };
        if targets.is_empty() {
            // All pending notices were for intervals whose diffs we already
            // hold (can happen after locally fetching for a neighbouring
            // access); just apply nothing and revalidate.
            rt.st.borrow_mut().apply_wire_diffs(page, Vec::new());
            return;
        }
        for &t in &targets {
            let payload = encode_diff_request(page, rt.id(), &applied_vc, &my_vc);
            rt.proc().send(t, TAG_DIFF_REQ, payload);
            rt.st.borrow_mut().stats.diff_requests_sent += 1;
        }
        let mut all = Vec::new();
        for _ in 0..targets.len() {
            let m = rt.wait_reply(TAG_DIFF_RESP);
            let (pid, diffs) = decode_diff_response(m.payload, rt.nprocs());
            assert_eq!(pid, page, "diff response for an unexpected page");
            all.extend(diffs);
        }
        let bytes: usize = all.iter().map(|d| d.diff.encoded_len()).sum();
        rt.proc().compute(bytes as f64 / MEM_BANDWIDTH);
        rt.st.borrow_mut().apply_wire_diffs(page, all);
    }

    /// Serve a diff request straight out of the diff store, charging the
    /// lazily deferred creation scan for first-time serves.
    fn serve_request(&self, rt: &Tmk, m: Message) -> bool {
        if m.tag != TAG_DIFF_REQ {
            return false;
        }
        rt.proc().compute(REQUEST_SERVICE_COST);
        let (page, requester, applied_vc, global_vc) = decode_diff_request(m.payload, rt.nprocs());
        let (payload, bytes, first_serves) = {
            let mut st = rt.st.borrow_mut();
            st.stats.diff_requests_served += 1;
            st.encode_diffs_for_request(page, requester, &applied_vc, &global_vc)
        };
        // Diffs served for the first time are created now (the lazy diff
        // creation of the real system): scan the page and twin.
        let scan = first_serves as f64 * 2.0 * PAGE_SIZE as f64 / MEM_BANDWIDTH;
        // Copying the diffs into the response steals cycles here.
        rt.proc().compute(scan + bytes as f64 / MEM_BANDWIDTH);
        rt.proc().send_at(
            requester,
            TAG_DIFF_RESP,
            payload,
            m.arrival + REQUEST_SERVICE_COST,
        );
        true
    }

    /// Validate every invalid page (applying every outstanding diff at or
    /// below the merged clock), then run an internal sync barrier so no
    /// peer is still validating when metadata at or below the clock is
    /// dropped; without this, a peer's in-flight diff request could name a
    /// diff already collected.
    fn prepare_gc(&self, rt: &Tmk) {
        let npages = (rt.st.borrow().heap_size() / PAGE_SIZE) as u32;
        for page in 0..npages {
            if !rt.st.borrow().is_valid(page) {
                rt.fault_in(page);
            }
        }
        rt.gc_sync_barrier();
    }

    fn counter_summary(&self, stats: &TmkStats) -> String {
        diff_counter_summary(stats)
    }
}

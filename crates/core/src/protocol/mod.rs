//! The pluggable coherence-protocol layer.
//!
//! The DSM runtime separates *mechanism* from *policy*.  The mechanism — the
//! page table, twins and diffs, vector clocks, the interval log, the wire
//! codec and the request service loop — is protocol-neutral and lives in
//! [`crate::state`], [`crate::diffs`], [`crate::page`], [`crate::proto`] and
//! [`crate::process`].  The policy — what happens at an access fault, what
//! becomes of the diffs created when an interval closes, which pages a write
//! notice invalidates, and which wire messages exist at all — is a
//! [`ConsistencyProtocol`] implementation, selected per endpoint by
//! [`ProtocolKind`] when a [`Tmk`] is created:
//!
//! * [`ProtocolKind::Lrc`] ([`lrc`]) — the paper's TreadMarks protocol:
//!   multiple-writer lazy release consistency with an invalidate protocol.
//!   Diffs stay with their writers; a fault sends a diff request to each
//!   member of the minimal dominating set of writers, and responders
//!   practice *diff accumulation*.
//! * [`ProtocolKind::Hlrc`] ([`hlrc`]) — home-based LRC: every page has a
//!   *home*; writers flush diffs to the home eagerly at release/barrier and
//!   a fault fetches the whole page from the home in one round trip.
//! * [`ProtocolKind::Sc`] ([`sc`]) — the sequential-consistency baseline:
//!   a single-writer, invalidate-on-write ownership protocol with no twins,
//!   diffs or intervals — the naive DSM the paper's design arguments are
//!   measured against.
//!
//! Every backend is a stateless singleton ([`ProtocolKind::backend`])
//! implementing the trait's hooks over the shared core; protocol-private
//! per-process state (e.g. SC's ownership tables) lives in an opaque slot of
//! [`DsmState`] created by [`ConsistencyProtocol::make_state`].  Adding a
//! protocol means adding one module here — see
//! `docs/ARCHITECTURE.md` §"Writing a new protocol backend".

pub mod hlrc;
pub mod lrc;
pub mod sc;

use crate::page::PageId;
use crate::process::Tmk;
use crate::state::{ClosedInterval, DsmState};
use crate::stats::TmkStats;
use crate::vc::VectorClock;
use crate::{Diff, PAGE_FAULT_COST};
use bytes::Bytes;
use cluster::Message;

/// Which coherence protocol a DSM endpoint runs.
///
/// # Example
///
/// ```
/// use treadmarks::ProtocolKind;
///
/// // Three backends, one namespace: parse CLI names, print labels.
/// assert_eq!(ProtocolKind::all().len(), 3);
/// assert_eq!("hlrc".parse::<ProtocolKind>().unwrap(), ProtocolKind::Hlrc);
/// assert_eq!("sc".parse::<ProtocolKind>().unwrap(), ProtocolKind::Sc);
/// assert_eq!(ProtocolKind::Sc.name(), "sc");
/// assert_eq!(ProtocolKind::Sc.system_label(), "TMK-SC");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Multiple-writer, diff-based, invalidate lazy release consistency —
    /// the TreadMarks protocol of the paper.
    #[default]
    Lrc,
    /// Home-based LRC: diffs flushed eagerly to a per-page home at
    /// release/barrier, faults fetch the full page from the home.
    Hlrc,
    /// Sequential consistency: single-writer pages with ownership transfer
    /// and invalidate-on-write — no twins, no diffs, no intervals.
    Sc,
}

impl ProtocolKind {
    /// Every protocol backend, in comparison order.
    pub fn all() -> [ProtocolKind; 3] {
        [ProtocolKind::Lrc, ProtocolKind::Hlrc, ProtocolKind::Sc]
    }

    /// The lowercase CLI name of the backend (`lrc` / `hlrc` / `sc`).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Lrc => "lrc",
            ProtocolKind::Hlrc => "hlrc",
            ProtocolKind::Sc => "sc",
        }
    }

    /// The system label used in the paper-style tables and figures.  The
    /// paper's own protocol keeps the bare "TreadMarks" name; the other
    /// backends are the additions of this reproduction.
    pub fn system_label(&self) -> &'static str {
        match self {
            ProtocolKind::Lrc => "TreadMarks",
            ProtocolKind::Hlrc => "TMK-HLRC",
            ProtocolKind::Sc => "TMK-SC",
        }
    }

    /// The backend singleton implementing this protocol's policy.
    pub fn backend(&self) -> &'static dyn ConsistencyProtocol {
        match self {
            ProtocolKind::Lrc => &lrc::Lrc,
            ProtocolKind::Hlrc => &hlrc::Hlrc,
            ProtocolKind::Sc => &sc::Sc,
        }
    }

    /// One-line description used by `reproduce --list`.
    pub fn describe(&self) -> &'static str {
        self.backend().describe()
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ProtocolKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lrc" | "treadmarks" | "tmk" => Ok(ProtocolKind::Lrc),
            "hlrc" | "home" | "home-based" => Ok(ProtocolKind::Hlrc),
            "sc" | "seqcon" | "sequential" => Ok(ProtocolKind::Sc),
            other => Err(format!(
                "unknown protocol '{other}' (expected lrc, hlrc or sc)"
            )),
        }
    }
}

/// The policy seam of the DSM: everything one coherence protocol decides,
/// expressed as hooks over the protocol-neutral core.
///
/// Hooks come in two layers.  *State-level* hooks take a [`DsmState`] and
/// make pure policy decisions for the state machine (no networking):
/// [`invalidate_on_notice`](Self::invalidate_on_notice),
/// [`diff_at_close`](Self::diff_at_close),
/// [`retain_or_flush`](Self::retain_or_flush).  *Runtime-level* hooks take
/// the full [`Tmk`] endpoint and may exchange messages:
/// [`serve_fault`](Self::serve_fault) (the access-fault path),
/// [`at_release`](Self::at_release) / [`at_barrier`](Self::at_barrier)
/// (the synchronization edges), [`publish_interval`](Self::publish_interval)
/// (what becomes of a closed interval),
/// [`serve_request`](Self::serve_request) (incoming wire messages),
/// [`prepare_gc`](Self::prepare_gc) (making barrier-time collection safe)
/// and [`counter_summary`](Self::counter_summary) (the protocol's Table-2
/// stats contribution).
///
/// Backends are stateless singletons; per-process protocol-private state
/// lives in the opaque slot created by [`make_state`](Self::make_state).
/// Every default implements the multiple-writer (twin/diff/interval)
/// behaviour shared by LRC and HLRC, so a twinning backend overrides only
/// what it changes, and a non-twinning backend (SC) opts out wholesale via
/// [`uses_twins`](Self::uses_twins).
pub trait ConsistencyProtocol: Sync {
    /// The kind this backend implements.
    fn kind(&self) -> ProtocolKind;

    /// One-line description of the backend for `reproduce --list`.
    fn describe(&self) -> &'static str;

    /// Create the protocol-private per-process state, stored opaquely in
    /// [`DsmState`] (retrieve it by downcasting, as the SC backend does).
    fn make_state(&self, me: usize, nprocs: usize, npages: usize) -> Box<dyn std::any::Any> {
        let _ = (me, nprocs, npages);
        Box::new(())
    }

    /// Whether writes are trapped through twins and published as diffs at
    /// interval close (the multiple-writer mechanism).  `false` opts the
    /// backend out of twin creation and the dirty-page machinery entirely.
    fn uses_twins(&self) -> bool {
        true
    }

    /// State-level: whether a write notice for `page` invalidates the local
    /// copy.  HLRC keeps the home's master copy valid.
    fn invalidate_on_notice(&self, st: &DsmState, page: PageId) -> bool {
        let _ = (st, page);
        true
    }

    /// State-level: whether closing an interval creates a diff for dirty
    /// `page` at all.  HLRC skips pages homed locally (the master copy
    /// already carries the writes); everything skipped is also invisible to
    /// the diff-creation counters.
    fn diff_at_close(&self, st: &DsmState, page: PageId) -> bool {
        let _ = (st, page);
        true
    }

    /// State-level: dispose of one diff created at interval close — retain
    /// it in the local diff store for later diff requests (LRC, the
    /// default) or hand it back for flushing to a remote home (HLRC).
    fn retain_or_flush(
        &self,
        st: &mut DsmState,
        page: PageId,
        seq: u32,
        vc: &VectorClock,
        vc_wire: &Bytes,
        diff: Diff,
    ) -> Option<(PageId, Diff)> {
        st.retain_own_diff(page, seq, vc, vc_wire, diff);
        None
    }

    /// Runtime: one round of fault service for invalid `page`.  The generic
    /// fault entry (`Tmk::fault_in`) charges the fault cost, counts the
    /// fault, and repeats this hook until the page is valid (a write notice
    /// arriving *during* the round can re-invalidate it).
    fn serve_fault(&self, rt: &Tmk, page: PageId);

    /// Runtime: the release edge of a lock (and the hand-over edge of a
    /// grant).  The default closes the open interval and publishes it.
    fn at_release(&self, rt: &Tmk) {
        rt.close_and_publish();
    }

    /// Runtime: a barrier arrival.  The default closes the open interval
    /// and publishes it, exactly like a release.
    fn at_barrier(&self, rt: &Tmk) {
        rt.close_and_publish();
    }

    /// Runtime: an acquire completed (the grant's write notices are already
    /// applied).  No protocol currently acts here; the hook exists so an
    /// acquire-side policy (e.g. update-based protocols) is a backend detail
    /// rather than a runtime change.
    fn at_acquire(&self, rt: &Tmk) {
        let _ = rt;
    }

    /// Runtime: dispose of a freshly closed interval.  The default does
    /// nothing (LRC already retained its diffs); HLRC flushes the returned
    /// diffs to their homes and waits for acknowledgements.
    fn publish_interval(&self, rt: &Tmk, closed: ClosedInterval) {
        let _ = (rt, closed);
    }

    /// Runtime: make every page spanned by a write access writable.  The
    /// default validates the span (fault loop) and then twins + dirties
    /// each page; SC acquires exclusive ownership instead.
    fn prepare_write(&self, rt: &Tmk, addr: usize, len: usize) {
        rt.ensure_valid(addr, len);
        let pages = rt.st.borrow().pages_spanning(addr, len);
        for page in pages {
            rt.mark_dirty_charged(page);
        }
    }

    /// Runtime: a shared write access completed.  SC uses this to hand
    /// deferred ownership transfers over; the twinning protocols need
    /// nothing here.
    fn access_done(&self, rt: &Tmk) {
        let _ = rt;
    }

    /// Runtime: serve one protocol-specific wire request (a tag outside the
    /// generic lock/barrier/termination set).  Returns `false` if the tag
    /// does not belong to this protocol.
    fn serve_request(&self, rt: &Tmk, m: Message) -> bool {
        let _ = (rt, m);
        false
    }

    /// Runtime: make the upcoming metadata collection safe.  LRC validates
    /// every invalid page and runs an internal sync barrier so no peer's
    /// in-flight diff request can name a collected diff; the other backends
    /// retain nothing a peer could request.
    fn prepare_gc(&self, rt: &Tmk) {
        let _ = rt;
    }

    /// The protocol's per-run Table-2 counter summary (the stats
    /// contribution rendered under the message/byte table).
    fn counter_summary(&self, stats: &TmkStats) -> String;
}

/// The shared counter line of the twinning (diff-based) backends.
pub(crate) fn diff_counter_summary(stats: &TmkStats) -> String {
    format!(
        "{:>8} faults {:>8} diff-req {:>8} page-req {:>8} flushes \
         {:>10} diff-KB {:>10} page-KB",
        stats.page_faults,
        stats.diff_requests_sent,
        stats.page_requests_sent,
        stats.diff_flushes_sent,
        (stats.diff_bytes_received / 1024),
        (stats.page_bytes_fetched / 1024),
    )
}

impl Tmk<'_> {
    /// The access-fault path: the generic entry charging the fixed
    /// fault-entry cost and counting the fault, with the actual service
    /// dispatched to the configured [`ConsistencyProtocol`] backend.  One
    /// service round can leave the page invalid if a *new* write notice for
    /// it arrived while the fault was waiting for responses (a barrier
    /// arrival served in the meantime applies fresh interval records), so
    /// the fault repeats until the page is clean.
    pub(crate) fn fault_in(&self, page: PageId) {
        // One fault span per counted fault (entry to validated page), so the
        // metrics layer's fault-service histogram count cross-checks against
        // the `page_faults` counter.
        self.proc().span_begin(cluster::SpanCat::Fault, page as u64);
        self.proc().compute(PAGE_FAULT_COST);
        self.st.borrow_mut().stats.page_faults += 1;
        loop {
            self.backend.serve_fault(self, page);
            if self.st.borrow().is_valid(page) {
                break;
            }
        }
        self.proc().span_end(cluster::SpanCat::Fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_print() {
        for kind in ProtocolKind::all() {
            let round: ProtocolKind = kind.name().parse().unwrap();
            assert_eq!(round, kind);
        }
        assert_eq!("HLRC".parse::<ProtocolKind>().unwrap(), ProtocolKind::Hlrc);
        assert_eq!(
            "treadmarks".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::Lrc
        );
        assert_eq!(
            "sequential".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::Sc
        );
        assert!("eager".parse::<ProtocolKind>().is_err());
    }

    #[test]
    fn default_is_the_paper_protocol() {
        assert_eq!(ProtocolKind::default(), ProtocolKind::Lrc);
    }

    #[test]
    fn every_kind_resolves_to_its_own_backend() {
        for kind in ProtocolKind::all() {
            assert_eq!(kind.backend().kind(), kind);
            assert!(!kind.describe().is_empty());
            assert!(!kind.system_label().is_empty());
        }
        assert!(ProtocolKind::Lrc.backend().uses_twins());
        assert!(ProtocolKind::Hlrc.backend().uses_twins());
        assert!(!ProtocolKind::Sc.backend().uses_twins());
    }
}

//! Runtime statistics of a DSM process.

use serde::{Deserialize, Serialize};

/// Counters describing what the TreadMarks runtime did on one process.
///
/// These are the quantities the paper's analysis sections reason about:
/// synchronization operations, page faults, diff requests, and the amount of
/// diff data moved.  (Message and byte totals are tracked by the `cluster`
/// transport; these counters explain *why* those messages were sent.)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TmkStats {
    /// Lock acquires satisfied locally because the token was already here.
    pub local_lock_acquires: u64,
    /// Lock acquires that required messages to the manager / last holder.
    pub remote_lock_acquires: u64,
    /// Lock releases.
    pub lock_releases: u64,
    /// Barrier episodes.
    pub barriers: u64,
    /// Access faults on invalid pages.
    pub page_faults: u64,
    /// Diff request messages sent while handling faults.
    pub diff_requests_sent: u64,
    /// Diff requests served for other processes.
    pub diff_requests_served: u64,
    /// Twins created (first write to a page in an interval).
    pub twins_created: u64,
    /// Diffs created at interval close.
    pub diffs_created: u64,
    /// Encoded bytes of the diffs created locally.
    pub diff_bytes_created: u64,
    /// Diffs received and applied.
    pub diffs_applied: u64,
    /// Encoded bytes of the diffs received.
    pub diff_bytes_received: u64,
    /// Write notices received from other processes.
    pub write_notices_received: u64,
    /// HLRC: flush messages sent to remote homes at interval close.
    pub diff_flushes_sent: u64,
    /// HLRC: encoded diff bytes flushed to remote homes.
    pub flush_bytes_sent: u64,
    /// HLRC: flushed diffs applied to master copies homed here.
    pub diff_flushes_served: u64,
    /// HLRC: full-page fetch requests sent while handling faults.
    pub page_requests_sent: u64,
    /// HLRC: full-page fetches served for other processes.
    pub page_requests_served: u64,
    /// HLRC: bytes of full pages fetched from homes.
    pub page_bytes_fetched: u64,
    /// SC: exclusive-ownership transfers received (write faults resolved by
    /// taking the page over from its previous owner or manager).
    pub ownership_transfers: u64,
    /// SC: invalidation messages sent while acquiring exclusive ownership.
    pub invalidations_sent: u64,
    /// SC: invalidations received (local copies discarded on a remote write).
    pub invalidations_received: u64,
    /// Barrier-time garbage collections performed.
    pub gc_collections: u64,
    /// Interval records dropped by garbage collection.
    pub intervals_collected: u64,
    /// Stored diffs dropped by garbage collection.
    pub diffs_collected: u64,
}

impl TmkStats {
    /// Merge the counters of another process into this one (for cluster-wide
    /// aggregation in the benchmark harness).
    pub fn merge(&mut self, other: &TmkStats) {
        self.local_lock_acquires += other.local_lock_acquires;
        self.remote_lock_acquires += other.remote_lock_acquires;
        self.lock_releases += other.lock_releases;
        self.barriers += other.barriers;
        self.page_faults += other.page_faults;
        self.diff_requests_sent += other.diff_requests_sent;
        self.diff_requests_served += other.diff_requests_served;
        self.twins_created += other.twins_created;
        self.diffs_created += other.diffs_created;
        self.diff_bytes_created += other.diff_bytes_created;
        self.diffs_applied += other.diffs_applied;
        self.diff_bytes_received += other.diff_bytes_received;
        self.write_notices_received += other.write_notices_received;
        self.diff_flushes_sent += other.diff_flushes_sent;
        self.flush_bytes_sent += other.flush_bytes_sent;
        self.diff_flushes_served += other.diff_flushes_served;
        self.page_requests_sent += other.page_requests_sent;
        self.page_requests_served += other.page_requests_served;
        self.page_bytes_fetched += other.page_bytes_fetched;
        self.ownership_transfers += other.ownership_transfers;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_received += other.invalidations_received;
        self.gc_collections += other.gc_collections;
        self.intervals_collected += other.intervals_collected;
        self.diffs_collected += other.diffs_collected;
    }

    /// Fault-service request round-trips: diff requests under LRC plus
    /// full-page requests under HLRC.  The quantity the protocol comparison
    /// cares about — HLRC needs exactly one round trip per fault, LRC one
    /// per member of the dominating writer set.
    pub fn fault_round_trips(&self) -> u64 {
        self.diff_requests_sent + self.page_requests_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let mut a = TmkStats {
            page_faults: 2,
            diff_requests_sent: 3,
            barriers: 1,
            ..Default::default()
        };
        let b = TmkStats {
            page_faults: 5,
            diffs_created: 7,
            barriers: 1,
            page_requests_sent: 2,
            diff_flushes_sent: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.page_faults, 7);
        assert_eq!(a.diff_requests_sent, 3);
        assert_eq!(a.diffs_created, 7);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.page_requests_sent, 2);
        assert_eq!(a.diff_flushes_sent, 4);
        assert_eq!(a.fault_round_trips(), 5);
    }
}

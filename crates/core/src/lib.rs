//! A TreadMarks-style software distributed shared memory system with a
//! pluggable coherence-protocol engine.
//!
//! This crate is the reproduction of the DSM side of the SC'95 study
//! *"Message Passing Versus Distributed Shared Memory on Networks of
//! Workstations"*.  It implements the TreadMarks design the paper describes:
//!
//! * **Lazy release consistency** — consistency information propagates only
//!   at acquires; intervals and vector timestamps represent the `hb1`
//!   partial order ([`vc`]).
//! * **Multiple-writer protocol** — twins and run-length-encoded diffs allow
//!   concurrent writers of one page ([`page`]).
//! * **Invalidate protocol** — write notices piggybacked on lock grants and
//!   barrier releases invalidate pages; access faults fetch diffs from the
//!   minimal dominating set of writers, and responders return every diff the
//!   requester lacks (*diff accumulation*).
//! * **Synchronization** — locks with statically assigned managers and
//!   last-requester forwarding (a release sends no message), and a
//!   centralised barrier costing `2 * (nprocs - 1)` messages ([`process`]).
//!
//! Beyond the paper, the coherence policy is a first-class *layer*: the
//! [`protocol::ConsistencyProtocol`] trait separates protocol policy from
//! the protocol-neutral core, and three backends plug into it —
//! [`ProtocolKind::Lrc`] (the TreadMarks protocol above),
//! [`ProtocolKind::Hlrc`] (home-based LRC, [`protocol::hlrc`]: eager diff
//! flushes to a per-page home at release/barrier and full-page fetches at
//! faults) and [`ProtocolKind::Sc`] (a sequential-consistency baseline,
//! [`protocol::sc`]: single-writer pages with ownership transfer and
//! invalidate-on-write — the naive DSM the paper's design implicitly argues
//! against).  See the repository README for the protocol comparison and
//! `docs/ARCHITECTURE.md` for how to write a new backend.
//!
//! The programming interface mirrors the TreadMarks API used by the paper's
//! applications: `Tmk_malloc`, `Tmk_barrier`, `Tmk_lock_acquire`,
//! `Tmk_lock_release`, and ordinary reads/writes of shared memory (here:
//! typed accessors, because access detection is done in software at page
//! granularity rather than with the VM hardware — see README §Design notes).
//!
//! # Example
//!
//! ```
//! use cluster::{Cluster, ClusterConfig};
//! use treadmarks::Tmk;
//!
//! // Two processes increment a shared counter under a lock.
//! let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
//!     let tmk = Tmk::new(p);
//!     let counter = tmk.malloc(8);
//!     tmk.barrier(0);
//!     for _ in 0..5 {
//!         tmk.lock_acquire(0);
//!         let v = tmk.read_i64(counter);
//!         tmk.write_i64(counter, v + 1);
//!         tmk.lock_release(0);
//!     }
//!     tmk.barrier(1);
//!     let total = tmk.read_i64(counter);
//!     tmk.exit();
//!     total
//! });
//! assert!(rep.results.iter().all(|&v| v == 10));
//! ```

#![deny(missing_docs)]

pub mod diffs;
pub mod heap;
pub mod intervals;
pub mod page;
pub mod process;
pub mod proto;
pub mod protocol;
pub mod race;
pub mod state;
pub mod stats;
pub mod vc;

pub use heap::SharedAddr;
pub use page::{Diff, DiffRun, PageId};
pub use process::Tmk;
pub use protocol::{ConsistencyProtocol, ProtocolKind};
pub use race::RaceReport;
pub use stats::TmkStats;
pub use vc::VectorClock;

/// Default size of the shared heap (bytes).
pub const DEFAULT_HEAP_BYTES: usize = 64 << 20;

/// Memory-copy bandwidth used to charge twin creation, diff creation and
/// diff application (bytes per second), calibrated to an early-90s
/// workstation memory system.
pub const MEM_BANDWIDTH: f64 = 40.0e6;

/// Fixed CPU cost of taking an access fault and entering the fault handler.
pub const PAGE_FAULT_COST: f64 = 100e-6;

/// CPU cost of fielding a protocol request (the SIGIO handler of the real
/// system), charged to the serving process as stolen cycles.
pub const REQUEST_SERVICE_COST: f64 = 50e-6;

/// Local bookkeeping cost of a synchronization operation.
pub const SYNC_OP_COST: f64 = 10e-6;

/// Default barrier-time garbage-collection trigger: a GC runs at the first
/// barrier at which the cluster-wide interval count has grown by this much
/// since the previous collection (see [`Tmk::set_gc_threshold`]).  High
/// enough that short runs never collect (their tables are bit-identical to a
/// GC-free runtime); long runs hold memory bounded instead of accreting
/// every diff and interval record forever.
pub const DEFAULT_GC_INTERVAL_THRESHOLD: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, ClusterReport};

    fn run_under<R: Send>(
        protocol: ProtocolKind,
        n: usize,
        f: impl Fn(&Tmk) -> R + Send + Sync,
    ) -> ClusterReport<R> {
        Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
            let tmk = Tmk::with_protocol(p, protocol);
            let r = f(&tmk);
            tmk.exit();
            r
        })
    }

    fn run<R: Send>(n: usize, f: impl Fn(&Tmk) -> R + Send + Sync) -> ClusterReport<R> {
        run_under(ProtocolKind::Lrc, n, f)
    }

    #[test]
    fn single_process_needs_no_messages() {
        let rep = run(1, |tmk| {
            let a = tmk.malloc(1024);
            tmk.barrier(0);
            tmk.lock_acquire(3);
            tmk.write_f64(a, 2.5);
            tmk.lock_release(3);
            tmk.barrier(1);
            tmk.read_f64(a)
        });
        assert_eq!(rep.results[0], 2.5);
        assert_eq!(rep.total_messages(), 0);
    }

    #[test]
    fn initialisation_by_proc0_is_visible_after_barrier() {
        let rep = run(4, |tmk| {
            let a = tmk.malloc(4096);
            if tmk.id() == 0 {
                for i in 0..512 {
                    tmk.write_f64(a + i * 8, i as f64);
                }
            }
            tmk.barrier(0);
            let mut sum = 0.0;
            for i in 0..512 {
                sum += tmk.read_f64(a + i * 8);
            }
            sum
        });
        let expect: f64 = (0..512).map(|i| i as f64).sum();
        assert!(rep.results.iter().all(|&s| (s - expect).abs() < 1e-9));
    }

    /// Many barrier rounds of rotating writers, with and without barrier-time
    /// GC: the computed values must agree exactly, and with GC enabled the
    /// retained protocol metadata must stay bounded instead of growing with
    /// the round count.
    fn gc_rounds(
        protocol: ProtocolKind,
        gc_threshold: u64,
    ) -> ClusterReport<(f64, u64, usize, usize)> {
        let n = 4;
        let rounds = 48u32;
        run_under(protocol, n, move |tmk| {
            let a = tmk.malloc(8 * n);
            tmk.set_gc_threshold(gc_threshold);
            tmk.barrier(0);
            for round in 0..rounds {
                if tmk.id() == round as usize % n {
                    let slot = a + 8 * tmk.id();
                    let v = tmk.read_f64(slot);
                    tmk.write_f64(slot, v + 1.0 + round as f64);
                }
                tmk.barrier(1 + round);
            }
            let mut sum = 0.0;
            for r in 0..n {
                sum += tmk.read_f64(a + 8 * r);
            }
            let st = tmk.st.borrow();
            (
                sum,
                st.stats.gc_collections,
                st.intervals_retained(),
                st.diffs_held(),
            )
        })
    }

    #[test]
    fn sc_retains_no_interval_or_diff_metadata_at_all() {
        // The sequential-consistency baseline has no intervals or diffs, so
        // there is nothing for the GC to ever trigger on or collect.
        let rep = gc_rounds(ProtocolKind::Sc, 8);
        for (sum, gcs, intervals, diffs) in &rep.results {
            let expect: f64 = (0..48u32).map(|r| 1.0 + r as f64).sum();
            assert_eq!(*sum, expect);
            assert_eq!(*gcs, 0);
            assert_eq!(*intervals, 0);
            assert_eq!(*diffs, 0);
        }
    }

    #[test]
    fn barrier_gc_bounds_metadata_and_preserves_results() {
        // The twinning protocols retain interval/diff metadata; SC (covered
        // above) never creates any.
        for protocol in [ProtocolKind::Lrc, ProtocolKind::Hlrc] {
            let without = gc_rounds(protocol, u64::MAX);
            let with = gc_rounds(protocol, 8);
            for (rank, (a, b)) in without.results.iter().zip(&with.results).enumerate() {
                assert_eq!(
                    a.0.to_bits(),
                    b.0.to_bits(),
                    "{protocol}: process {rank} result changed under GC"
                );
                assert_eq!(a.1, 0, "{protocol}: GC ran while disabled");
                assert!(
                    b.1 > 0,
                    "{protocol}: no GC with a threshold of 8 over 48 rounds"
                );
                assert!(
                    b.2 < a.2,
                    "{protocol}: process {rank} retained intervals not reduced \
                     ({} with GC vs {} without)",
                    b.2,
                    a.2
                );
                assert!(
                    b.3 <= a.3,
                    "{protocol}: process {rank} retained diffs grew under GC"
                );
            }
            // LRC without GC accretes diffs forever; with GC the store is
            // bounded by the inter-collection window.
            if protocol == ProtocolKind::Lrc {
                let max_diffs_with = with.results.iter().map(|r| r.3).max().unwrap();
                let max_diffs_without = without.results.iter().map(|r| r.3).max().unwrap();
                assert!(
                    max_diffs_with * 2 < max_diffs_without,
                    "GC barely shrank the diff store: {max_diffs_with} vs {max_diffs_without}"
                );
            }
        }
    }

    #[test]
    fn gc_is_deterministic() {
        let a = gc_rounds(ProtocolKind::Lrc, 8);
        let b = gc_rounds(ProtocolKind::Lrc, 8);
        assert_eq!(a.results, b.results);
        for (sa, sb) in a.stats.iter().zip(&b.stats) {
            assert_eq!(sa.finish_time.to_bits(), sb.finish_time.to_bits());
            assert_eq!(sa.messages_sent, sb.messages_sent);
        }
    }

    #[test]
    fn lock_protected_counter_is_sequentially_consistent() {
        let n = 4;
        let iters = 20;
        let rep = run(n, move |tmk| {
            let counter = tmk.malloc(8);
            tmk.barrier(0);
            for _ in 0..iters {
                tmk.lock_acquire(0);
                let v = tmk.read_i64(counter);
                tmk.write_i64(counter, v + 1);
                tmk.lock_release(0);
            }
            tmk.barrier(1);
            tmk.read_i64(counter)
        });
        assert!(rep.results.iter().all(|&v| v == (n * iters) as i64));
    }

    #[test]
    fn barrier_message_count_is_2_n_minus_1() {
        let n = 8;
        let rep = run(n, |tmk| {
            tmk.barrier(0);
        });
        // One barrier: 2*(n-1) messages, plus the exit protocol's 2*(n-1).
        assert_eq!(rep.total_messages(), 4 * (n as u64 - 1));
    }

    #[test]
    fn reacquiring_an_uncontended_lock_is_local() {
        let rep = run(2, |tmk| {
            tmk.barrier(0);
            if tmk.id() == 1 {
                for _ in 0..10 {
                    tmk.lock_acquire(1); // lock 1 is managed by process 1
                    tmk.lock_release(1);
                }
            }
            tmk.barrier(1);
            tmk.stats()
        });
        assert_eq!(rep.results[1].local_lock_acquires, 10);
        assert_eq!(rep.results[1].remote_lock_acquires, 0);
    }

    #[test]
    fn migratory_data_under_a_lock_reaches_every_process() {
        // Each process in turn overwrites the same shared block under a
        // lock; later readers see the final values (diff accumulation path).
        let n = 4;
        let rep = run(n, move |tmk| {
            let block = tmk.malloc(256);
            tmk.barrier(0);
            for round in 0..n {
                if tmk.id() == round {
                    tmk.lock_acquire(0);
                    for i in 0..32 {
                        tmk.write_i64(block + i * 8, (round * 100 + i) as i64);
                    }
                    tmk.lock_release(0);
                }
                tmk.barrier(1 + round as u32);
            }
            tmk.read_i64(block)
        });
        let last = ((n - 1) * 100) as i64;
        assert!(rep.results.iter().all(|&v| v == last));
    }

    #[test]
    fn false_sharing_two_writers_one_page() {
        // Two processes write disjoint halves of the same page between
        // barriers; both see a consistent merged page afterwards.
        let rep = run(2, |tmk| {
            let a = tmk.malloc(4096);
            tmk.barrier(0);
            let me = tmk.id();
            let base = a + me * 2048;
            for i in 0..256 {
                tmk.write_i64(base + i * 8, (me * 1000 + i) as i64);
            }
            tmk.barrier(1);
            let other = 1 - me;
            let other_base = a + other * 2048;
            let mut ok = true;
            for i in 0..256 {
                ok &= tmk.read_i64(other_base + i * 8) == (other * 1000 + i) as i64;
            }
            ok
        });
        assert!(rep.results.iter().all(|&ok| ok));
    }

    #[test]
    fn producer_consumer_chain_through_locks() {
        let n = 4;
        let rep = run(n, move |tmk| {
            let slot = tmk.malloc(8);
            tmk.barrier(0);
            if tmk.id() == 0 {
                tmk.lock_acquire(0);
                tmk.write_i64(slot, 42);
                tmk.lock_release(0);
            }
            tmk.barrier(1);
            tmk.lock_acquire(0);
            let v = tmk.read_i64(slot);
            tmk.write_i64(slot, v + 1);
            tmk.lock_release(0);
            tmk.barrier(2);
            tmk.read_i64(slot)
        });
        assert!(rep.results.iter().all(|&v| v == 42 + n as i64));
    }

    #[test]
    fn large_array_transfer_requires_one_request_per_page() {
        // One process writes a 64 KB block; the other reads it after a
        // barrier.  The diffs cover 16 pages, so the reader sends 16 diff
        // requests (page-based invalidate protocol).
        let rep = run(2, |tmk| {
            let a = tmk.malloc(64 * 1024);
            if tmk.id() == 0 {
                let data: Vec<i32> = (0..16 * 1024).collect();
                tmk.write_i32_slice(a, &data);
            }
            tmk.barrier(0);
            if tmk.id() == 1 {
                let mut out = vec![0i32; 16 * 1024];
                tmk.read_i32_slice(a, &mut out);
                assert!(out.iter().enumerate().all(|(i, &v)| v == i as i32));
            }
            tmk.barrier(1);
            tmk.stats()
        });
        assert_eq!(rep.results[1].diff_requests_sent, 16);
        assert_eq!(rep.results[1].page_faults, 16);
        assert_eq!(rep.results[0].diff_requests_served, 16);
    }

    #[test]
    fn hlrc_agrees_with_lrc_on_every_functional_pattern() {
        // The protocol backends must compute identical answers; only the
        // message traffic differs.  Exercise initialisation, lock-protected
        // counters, migratory data and false sharing under both.
        for protocol in ProtocolKind::all() {
            let n = 4;
            let rep = run_under(protocol, n, move |tmk| {
                let a = tmk.malloc(4096);
                let counter = tmk.malloc(8);
                let block = tmk.malloc(256);
                if tmk.id() == 0 {
                    for i in 0..512 {
                        tmk.write_f64(a + i * 8, i as f64);
                    }
                }
                tmk.barrier(0);
                let mut sum = 0.0;
                for i in 0..512 {
                    sum += tmk.read_f64(a + i * 8);
                }
                for _ in 0..5 {
                    tmk.lock_acquire(0);
                    let v = tmk.read_i64(counter);
                    tmk.write_i64(counter, v + 1);
                    tmk.lock_release(0);
                }
                for round in 0..n {
                    if tmk.id() == round {
                        tmk.lock_acquire(1);
                        for i in 0..32 {
                            tmk.write_i64(block + i * 8, (round * 100 + i) as i64);
                        }
                        tmk.lock_release(1);
                    }
                    tmk.barrier(1 + round as u32);
                }
                sum += tmk.read_i64(counter) as f64;
                sum += tmk.read_i64(block) as f64;
                sum
            });
            let expect: f64 =
                (0..512).map(|i| i as f64).sum::<f64>() + (n * 5) as f64 + ((n - 1) * 100) as f64;
            assert!(
                rep.results.iter().all(|&s| (s - expect).abs() < 1e-9),
                "{protocol}: wrong results {:?}",
                rep.results
            );
        }
    }

    #[test]
    fn hlrc_single_process_needs_no_messages() {
        let rep = run_under(ProtocolKind::Hlrc, 1, |tmk| {
            let a = tmk.malloc(1024);
            tmk.barrier(0);
            tmk.write_f64(a, 2.5);
            tmk.barrier(1);
            tmk.read_f64(a)
        });
        assert_eq!(rep.results[0], 2.5);
        assert_eq!(rep.total_messages(), 0);
    }

    #[test]
    fn hlrc_fault_is_one_round_trip_regardless_of_writer_count() {
        // Two concurrent writers of one page: an LRC reader must request
        // diffs from both; an HLRC reader fetches the page from its home in
        // a single round trip.
        let workload = |tmk: &Tmk| {
            let a = tmk.malloc_aligned(4096, 4096);
            tmk.barrier(0);
            if tmk.id() < 2 {
                let base = a + tmk.id() * 2048;
                for i in 0..16 {
                    tmk.write_i64(base + i * 8, (tmk.id() * 10 + i) as i64);
                }
            }
            tmk.barrier(1);
            if tmk.id() == 2 {
                let _ = tmk.read_i64(a);
            }
            tmk.barrier(2);
            tmk.stats()
        };
        let lrc = run_under(ProtocolKind::Lrc, 3, workload);
        let hlrc = run_under(ProtocolKind::Hlrc, 3, workload);
        assert_eq!(lrc.results[2].diff_requests_sent, 2);
        assert_eq!(hlrc.results[2].page_requests_sent, 1);
        assert!(
            hlrc.results[2].fault_round_trips() < lrc.results[2].fault_round_trips(),
            "HLRC must need fewer fault round-trips under false sharing"
        );
    }

    #[test]
    fn hlrc_flushes_are_acknowledged_before_the_barrier_releases() {
        // A writer's release-side flush and the reader's fetch are the only
        // data traffic: the writer flushes one page's diff to the home, the
        // reader fetches the full page once.
        let rep = run_under(ProtocolKind::Hlrc, 3, |tmk| {
            let a = tmk.malloc_aligned(4096, 4096);
            // Page 0 is homed on process 0; let process 1 write it.
            if tmk.id() == 1 {
                for i in 0..64 {
                    tmk.write_i64(a + i * 8, i as i64);
                }
            }
            tmk.barrier(0);
            if tmk.id() == 2 {
                let mut out = vec![0i64; 64];
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = tmk.read_i64(a + i * 8);
                }
                assert!(out.iter().enumerate().all(|(i, &v)| v == i as i64));
            }
            tmk.barrier(1);
            tmk.stats()
        });
        assert_eq!(rep.results[1].diff_flushes_sent, 1);
        assert_eq!(rep.results[0].diff_flushes_served, 1);
        assert_eq!(rep.results[2].page_requests_sent, 1);
        assert_eq!(rep.results[0].page_requests_served, 1);
        // Nobody retains protocol garbage: the writer discarded its diff.
        assert_eq!(rep.results[1].diffs_applied, 0);
    }

    #[test]
    fn hlrc_repeated_faults_save_round_trips_over_lrc() {
        // Migratory block rewritten by every process in turn: LRC's later
        // readers still contact one writer per fault but receive the full
        // accumulated diff chain; HLRC always does one page fetch and moves
        // only the page.  Over the whole run HLRC must issue strictly fewer
        // fault round-trips.
        let n = 4;
        let workload = move |tmk: &Tmk| {
            let block = tmk.malloc_aligned(4096, 4096);
            tmk.barrier(0);
            for round in 0..n {
                if tmk.id() == round {
                    tmk.lock_acquire(0);
                    for i in 0..64 {
                        tmk.write_i64(block + i * 8, (round * 1000 + i) as i64);
                    }
                    tmk.lock_release(0);
                }
                tmk.barrier(1 + round as u32);
            }
            let v = tmk.read_i64(block);
            tmk.barrier(100);
            (v, tmk.stats())
        };
        let lrc = run_under(ProtocolKind::Lrc, n, workload);
        let hlrc = run_under(ProtocolKind::Hlrc, n, workload);
        let expect = ((n - 1) * 1000) as i64;
        assert!(lrc.results.iter().all(|(v, _)| *v == expect));
        assert!(hlrc.results.iter().all(|(v, _)| *v == expect));
        let lrc_trips: u64 = lrc.results.iter().map(|(_, s)| s.fault_round_trips()).sum();
        let hlrc_trips: u64 = hlrc
            .results
            .iter()
            .map(|(_, s)| s.fault_round_trips())
            .sum();
        assert!(
            hlrc_trips < lrc_trips,
            "HLRC {hlrc_trips} trips vs LRC {lrc_trips}"
        );
        // And no diff is ever applied outside a home's master copy.
        assert!(hlrc.results.iter().all(|(_, s)| s.diffs_applied == 0));
    }

    #[test]
    fn out_of_order_replies_are_stashed_and_recovered() {
        // A reply can arrive while a nested wait is looking for a different
        // tag (HLRC flush acks nest inside fault waits); it must be stashed
        // and handed to the wait that expects it, not rejected or lost.
        use crate::proto::{
            decode_diff_response, decode_flush_ack, encode_diff_response, encode_flush_ack,
            TAG_DIFF_RESP, TAG_FLUSH_ACK,
        };
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            let tmk = Tmk::new(p);
            if p.id() == 1 {
                // The ack arrives first, ahead of the wait that expects it.
                p.send(0, TAG_FLUSH_ACK, encode_flush_ack(0, 7));
                p.send(0, TAG_DIFF_RESP, encode_diff_response(3, &[]));
                0
            } else {
                // Waiting for the diff response stashes the early ack...
                let m = tmk.wait_reply(TAG_DIFF_RESP);
                assert_eq!(decode_diff_response(m.payload, 2).0, 3);
                // ...and the next wait recovers it from the stash.
                let m = tmk.wait_reply(TAG_FLUSH_ACK);
                decode_flush_ack(m.payload).1
            }
        });
        assert_eq!(rep.results[0], 7);
    }

    /// Run `f` racechecked on `n` processes under `protocol` and return the
    /// race report next to the per-process results.
    fn run_racechecked<R: Send>(
        protocol: ProtocolKind,
        n: usize,
        f: impl Fn(&Tmk) -> R + Send + Sync,
    ) -> (ClusterReport<(R, Option<race::RaceLog>)>, race::RaceReport) {
        use std::sync::Arc;
        let table = Arc::new(race::SyncClocks::new());
        let mut rep = Cluster::run(ClusterConfig::calibrated_fddi(n), {
            let table = Arc::clone(&table);
            move |p| {
                let tmk = Tmk::with_protocol(p, protocol);
                tmk.enable_racecheck(Arc::clone(&table));
                let r = f(&tmk);
                tmk.exit();
                (r, tmk.take_race_log())
            }
        });
        let logs: Vec<race::RaceLog> = rep
            .results
            .iter_mut()
            .map(|(_, l)| l.take().expect("racecheck was enabled"))
            .collect();
        let report = race::analyze(n, logs);
        (rep, report)
    }

    #[test]
    fn racecheck_passes_synchronized_patterns_under_every_protocol() {
        for protocol in ProtocolKind::all() {
            let n = 4;
            let (rep, races) = run_racechecked(protocol, n, move |tmk| {
                let a = tmk.malloc(4096);
                let counter = tmk.malloc(8);
                if tmk.id() == 0 {
                    for i in 0..512 {
                        tmk.write_f64(a + i * 8, i as f64);
                    }
                }
                tmk.barrier(0);
                let mut sum = 0.0;
                for i in 0..512 {
                    sum += tmk.read_f64(a + i * 8);
                }
                for _ in 0..5 {
                    tmk.lock_acquire(0);
                    let v = tmk.read_i64(counter);
                    tmk.write_i64(counter, v + 1);
                    tmk.lock_release(0);
                }
                tmk.barrier(1);
                sum + tmk.read_i64(counter) as f64
            });
            assert!(
                races.is_race_free(),
                "{protocol}: false positives:\n{}",
                races.render()
            );
            let expect: f64 = (0..512).map(|i| i as f64).sum::<f64>() + (n * 5) as f64;
            assert!(rep.results.iter().all(|(s, _)| (s - expect).abs() < 1e-9));
        }
    }

    #[test]
    fn racecheck_flags_unsynchronized_writes_under_every_protocol() {
        for protocol in ProtocolKind::all() {
            let (_, races) = run_racechecked(protocol, 2, |tmk| {
                let a = tmk.malloc(4096);
                tmk.barrier(0);
                // Both ranks write the same eight bytes with no sync.
                tmk.write_i64(a, tmk.id() as i64);
                tmk.barrier(1);
            });
            assert_eq!(races.races.len(), 1, "{protocol}:\n{}", races.render());
            let race = &races.races[0];
            assert_eq!((race.a.rank, race.b.rank), (0, 1), "{protocol}");
            assert_eq!(race.a.kind, race::AccessKind::Write, "{protocol}");
            assert_eq!(race.b.kind, race::AccessKind::Write, "{protocol}");
        }
    }

    #[test]
    fn racecheck_does_not_change_simulation_output() {
        let body = |tmk: &Tmk| {
            let a = tmk.malloc(8 * 1024);
            if tmk.id() == 0 {
                let data: Vec<f64> = (0..1024).map(|i| i as f64).collect();
                tmk.write_f64_slice(a, &data);
            }
            tmk.barrier(0);
            let mut out = vec![0.0; 1024];
            tmk.read_f64_slice(a, &mut out);
            tmk.barrier(1);
            out[1023]
        };
        let plain = run(4, body);
        let (checked, races) = run_racechecked(ProtocolKind::Lrc, 4, body);
        assert!(races.is_race_free(), "{}", races.render());
        for (p, c) in plain.stats.iter().zip(&checked.stats) {
            assert_eq!(p.finish_time.to_bits(), c.finish_time.to_bits());
            assert_eq!(p.messages_sent, c.messages_sent);
            assert_eq!(p.bytes_sent, c.bytes_sent);
        }
        for (p, (c, _)) in plain.results.iter().zip(&checked.results) {
            assert_eq!(p.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn dsm_sends_more_messages_than_a_hand_coded_exchange_would() {
        // The headline qualitative result of the paper: for the same data
        // exchange, the DSM's separation of synchronization and data
        // transfer plus its request/response protocol costs more messages.
        let rep = run(4, |tmk| {
            let a = tmk.malloc(8 * 1024);
            if tmk.id() == 0 {
                let data: Vec<f64> = (0..1024).map(|i| i as f64).collect();
                tmk.write_f64_slice(a, &data);
            }
            tmk.barrier(0);
            let mut out = vec![0.0; 1024];
            tmk.read_f64_slice(a, &mut out);
            tmk.barrier(1);
            out[1023]
        });
        assert!(rep.results.iter().all(|&v| v == 1023.0));
        // A PVM broadcast of the same block would be 3 user messages; the
        // DSM needs barrier traffic plus 2 diff requests + responses per
        // reader.
        assert!(rep.total_messages() > 3);
    }
}

//! The network-free, protocol-neutral state machine of one DSM process.
//!
//! `DsmState` owns everything a DSM process knows that no particular
//! coherence protocol owns: its vector clock, its copies of shared pages
//! (with twins and pending write notices), the interval log, its lock
//! state, the recycled-page pool and the runtime statistics.  The
//! [`crate::Tmk`] wrapper in `process.rs` drives this state machine and
//! performs the actual message exchanges; protocol *policy* — what a fault
//! fetches, what becomes of a closed interval's diffs, which notices
//! invalidate — enters only through the
//! [`ConsistencyProtocol`] hooks.  Keeping the state machine free of both
//! networking and policy makes the consistency logic unit-testable in
//! isolation and makes a new protocol a module, not a surgery.
//! (The diff store half of the state lives in [`crate::diffs`].)

use crate::diffs::StoredDiff;
use crate::heap::{PagePool, Slab};
use crate::intervals::LoggedInterval;
use crate::page::{new_page, Diff, PageId};
use crate::proto::WireBuf;
use crate::protocol::{ConsistencyProtocol, ProtocolKind};
use crate::stats::TmkStats;
use crate::vc::VectorClock;
use cluster::config::PAGE_SIZE;
use std::collections::{BTreeMap, VecDeque};

/// The result of closing an interval: the write-notice record to publish,
/// and the diffs the protocol handed back for flushing to remote homes
/// (always empty under LRC, where diffs stay with their writer; empty under
/// HLRC for pages homed locally, whose master copy is the writer's own).
#[derive(Debug)]
pub struct ClosedInterval {
    /// Sequence number of the closed interval on this process.  The record
    /// itself is stored once, in the creator's interval log — retrieve it
    /// with [`DsmState::interval_record`] when needed.
    pub seq: u32,
    /// Diffs destined for remote homes, as returned by the protocol's
    /// [`ConsistencyProtocol::retain_or_flush`] disposition.
    pub flushes: Vec<(PageId, Diff)>,
}

/// A pending write notice: an interval known to have modified a page, whose
/// diff has not yet been fetched and applied locally.
#[derive(Debug, Clone)]
pub struct Notice {
    /// Creator of the interval.
    pub creator: usize,
    /// Interval sequence number on the creator.
    pub seq: u32,
    /// Vector timestamp of the interval.
    pub vc: VectorClock,
}

/// Local state of one shared page.
#[derive(Debug, Default)]
pub struct PageSlot {
    /// The page contents; allocated lazily, logically zero-filled before that.
    pub data: Option<Box<[u8]>>,
    /// The twin saved before the first write of the current interval.
    pub twin: Option<Box<[u8]>>,
    /// Whether the local copy is up to date.  All copies start valid (zero).
    pub valid: bool,
    /// Whether the page has been written during the current interval.
    pub dirty: bool,
    /// Write notices received for this page whose diffs are still missing.
    pub notices: Vec<Notice>,
    /// Per-creator sequence number of the latest interval whose modifications
    /// to this page are incorporated in the local copy (either created here
    /// or fetched and applied).  `None` means "nothing yet" (all zero).
    pub applied: Option<VectorClock>,
}

/// Per-lock state kept by every process that has interacted with the lock.
#[derive(Debug)]
pub struct LockState {
    /// Whether this process currently holds the lock token.
    pub have_token: bool,
    /// Whether this process is inside the critical section.
    pub in_cs: bool,
    /// Forwarded acquire requests waiting for this process to release.
    pub pending: VecDeque<(usize, VectorClock)>,
}

/// State kept by a lock's statically assigned manager.
#[derive(Debug)]
pub struct LockManagerState {
    /// The process that most recently requested the lock.
    pub last_requester: usize,
}

/// The complete protocol-neutral state of one DSM process.
pub struct DsmState {
    /// This process's rank.
    pub me: usize,
    /// Number of processes.
    pub nprocs: usize,
    /// Which coherence protocol this process runs.
    pub protocol: ProtocolKind,
    /// The protocol's policy backend (the singleton for `protocol`).
    pub(crate) backend: &'static dyn ConsistencyProtocol,
    /// Whether the backend traps writes through twins (cached from
    /// [`ConsistencyProtocol::uses_twins`]).
    twinning: bool,
    /// Protocol-private per-process state, created by the backend's
    /// [`ConsistencyProtocol::make_state`] (e.g. SC's ownership tables).
    pub(crate) protocol_state: Box<dyn std::any::Any>,
    /// This process's vector clock (entry `me` = number of closed intervals).
    pub vc: VectorClock,
    /// The merged clock distributed at the last barrier release.
    pub last_barrier_vc: VectorClock,
    /// All interval records retained, indexed
    /// `[creator][seq - 1 - interval_base[creator]]`: garbage collection
    /// (see [`DsmState::gc`]) truncates the front of each log and advances
    /// the base.
    pub(crate) intervals: Vec<Vec<LoggedInterval>>,
    /// Number of leading intervals of each creator already garbage
    /// collected from `intervals`.
    pub(crate) interval_base: Vec<u32>,
    /// Ordered index of the diffs held locally (created or fetched), keyed
    /// by (page, creator, seq).  Ordered so (a) iteration order can never
    /// silently depend on hash order and (b) serving a request is a range
    /// scan over one page's keys instead of a sweep over every diff held.
    /// The values are handles into [`DsmState::diff_slab`]: the map nodes
    /// carry four bytes each, not whole diffs.  The operations live in
    /// [`crate::diffs`].
    pub(crate) diffs: BTreeMap<(PageId, usize, u32), u32>,
    /// The diffs themselves, slab-allocated so the insert/GC churn of a
    /// long run recycles slots (see [`Slab`]).
    pub(crate) diff_slab: Slab<StoredDiff>,
    /// Reusable wire-encoding buffer for the hot send paths (lock grants,
    /// barrier messages, diff responses).
    pub(crate) wire: WireBuf,
    /// Shared pages (crate-visible so the protocol backends can maintain
    /// master copies and ownership modes).
    pub(crate) pages: Vec<PageSlot>,
    /// Pages written during the current (open) interval.
    pub(crate) dirty_pages: Vec<PageId>,
    /// Bump allocator cursor for the shared heap.
    heap_next: usize,
    /// Size of the shared heap in bytes.
    heap_bytes: usize,
    /// Per-lock token state (ordered: determinism must never silently
    /// depend on hash-iteration order).
    locks: BTreeMap<u32, LockState>,
    /// Manager-side lock state for locks this process manages (ordered).
    lock_managers: BTreeMap<u32, LockManagerState>,
    /// Recycled page-sized buffers for twin churn.
    pub(crate) pool: PagePool,
    /// Runtime statistics.
    pub stats: TmkStats,
}

impl DsmState {
    /// Fresh state for process `me` of `nprocs`, with a shared heap of
    /// `heap_bytes` bytes, running the default (LRC) protocol.
    pub fn new(me: usize, nprocs: usize, heap_bytes: usize) -> Self {
        Self::new_with(me, nprocs, heap_bytes, ProtocolKind::default())
    }

    /// Fresh state for process `me` of `nprocs`, with a shared heap of
    /// `heap_bytes` bytes, running the given coherence protocol.
    pub fn new_with(me: usize, nprocs: usize, heap_bytes: usize, protocol: ProtocolKind) -> Self {
        let npages = heap_bytes.div_ceil(PAGE_SIZE);
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            pages.push(PageSlot {
                valid: true,
                ..Default::default()
            });
        }
        let backend = protocol.backend();
        DsmState {
            me,
            nprocs,
            protocol,
            backend,
            twinning: backend.uses_twins(),
            protocol_state: backend.make_state(me, nprocs, npages),
            vc: VectorClock::new(nprocs),
            last_barrier_vc: VectorClock::new(nprocs),
            intervals: (0..nprocs).map(|_| Vec::new()).collect(),
            interval_base: vec![0; nprocs],
            diffs: BTreeMap::new(),
            diff_slab: Slab::default(),
            wire: WireBuf::new(),
            pages,
            dirty_pages: Vec::new(),
            heap_next: 0,
            heap_bytes: npages * PAGE_SIZE,
            locks: BTreeMap::new(),
            lock_managers: BTreeMap::new(),
            pool: PagePool::default(),
            stats: TmkStats::default(),
        }
    }

    /// Split one borrow of the state into the pieces a protocol backend
    /// touches together: the page table, its own opaque per-process state
    /// (downcast it to the concrete type on the backend side), and the
    /// runtime statistics.
    pub(crate) fn pages_protocol_state_stats(
        &mut self,
    ) -> (&mut Vec<PageSlot>, &mut dyn std::any::Any, &mut TmkStats) {
        (
            &mut self.pages,
            self.protocol_state.as_mut(),
            &mut self.stats,
        )
    }

    // ---------------------------------------------------------------- heap

    /// Allocate `bytes` of shared memory with the given alignment and return
    /// its address.  The allocator is a deterministic bump allocator: as long
    /// as every process performs the same sequence of allocations (the SPMD
    /// convention of the applications in this study), every process obtains
    /// the same addresses.  Allocations are *not* page aligned, so distinct
    /// objects can share a page — which is exactly how false sharing arises
    /// in the applications of the paper.
    pub fn malloc(&mut self, bytes: usize, align: usize) -> usize {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.heap_next + align - 1) & !(align - 1);
        assert!(
            addr + bytes <= self.heap_bytes,
            "shared heap exhausted: need {bytes} bytes at {addr}, heap is {} bytes",
            self.heap_bytes
        );
        self.heap_next = addr + bytes;
        addr
    }

    /// Total size of the shared heap in bytes.
    pub fn heap_size(&self) -> usize {
        self.heap_bytes
    }

    /// Page containing `addr`.
    pub fn page_of(&self, addr: usize) -> PageId {
        (addr / PAGE_SIZE) as PageId
    }

    /// The pages spanned by the byte range `[addr, addr + len)`.
    pub fn pages_spanning(&self, addr: usize, len: usize) -> std::ops::RangeInclusive<PageId> {
        assert!(len > 0, "zero-length shared access");
        assert!(
            addr + len <= self.heap_bytes,
            "shared access [{addr}, {}) outside the heap",
            addr + len
        );
        self.page_of(addr)..=self.page_of(addr + len - 1)
    }

    /// Pages in the given range that are currently invalid and need diffs.
    pub fn invalid_pages(&self, addr: usize, len: usize) -> Vec<PageId> {
        self.pages_spanning(addr, len)
            .filter(|&p| !self.pages[p as usize].valid)
            .collect()
    }

    /// Read `out.len()` bytes starting at `addr`.  All spanned pages must be
    /// valid (the caller resolves faults first).
    pub fn read_bytes(&mut self, addr: usize, out: &mut [u8]) {
        let len = out.len();
        let pages = self.pages_spanning(addr, len);
        debug_assert!(pages.clone().all(|p| self.pages[p as usize].valid));
        let mut done = 0usize;
        let mut cur = addr;
        while done < len {
            let page = self.page_of(cur);
            let off = cur % PAGE_SIZE;
            let take = (PAGE_SIZE - off).min(len - done);
            let slot = &self.pages[page as usize];
            match &slot.data {
                Some(data) => out[done..done + take].copy_from_slice(&data[off..off + take]),
                None => out[done..done + take].fill(0),
            }
            done += take;
            cur += take;
        }
    }

    /// Write `src` starting at `addr`.  All spanned pages must be valid and
    /// already trapped by the protocol's write path (twinned and dirtied
    /// under a twinning backend, held exclusively under SC).
    pub fn write_bytes(&mut self, addr: usize, src: &[u8]) {
        let len = src.len();
        let _ = self.pages_spanning(addr, len);
        let mut done = 0usize;
        let mut cur = addr;
        while done < len {
            let page = self.page_of(cur);
            let off = cur % PAGE_SIZE;
            let take = (PAGE_SIZE - off).min(len - done);
            let slot = &mut self.pages[page as usize];
            debug_assert!(slot.valid && (slot.dirty || !self.twinning));
            let data = slot.data.get_or_insert_with(new_page);
            data[off..off + take].copy_from_slice(&src[done..done + take]);
            done += take;
            cur += take;
        }
    }

    /// Mark `page` as written in the current interval, creating its twin on
    /// the first write (the multiple-writer protocol's write trap).
    /// Returns `true` if a twin was created by this call.
    pub fn mark_dirty(&mut self, page: PageId) -> bool {
        let DsmState {
            pages,
            pool,
            dirty_pages,
            stats,
            ..
        } = self;
        let slot = &mut pages[page as usize];
        assert!(slot.valid, "writing an invalid page without a fault");
        if slot.dirty {
            return false;
        }
        let data = match &mut slot.data {
            Some(data) => data,
            None => slot.data.insert(pool.take_zeroed()),
        };
        slot.twin = Some(pool.take_copy(data));
        slot.dirty = true;
        dirty_pages.push(page);
        stats.twins_created += 1;
        true
    }

    /// Whether `page` is currently valid.
    pub fn is_valid(&self, page: PageId) -> bool {
        self.pages[page as usize].valid
    }

    /// Whether `page` is dirty in the current interval.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.pages[page as usize].dirty
    }

    /// The pending write notices of `page`.
    pub fn notices_of(&self, page: PageId) -> &[Notice] {
        &self.pages[page as usize].notices
    }

    /// The per-page applied clock sent in a diff request for `page`.
    pub fn page_applied_vc(&self, page: PageId) -> VectorClock {
        self.pages[page as usize]
            .applied
            .clone()
            .unwrap_or_else(|| VectorClock::new(self.nprocs))
    }

    /// Clear the notices of `page` that its applied clock now covers and
    /// mark the page valid only if none remain.
    ///
    /// This is the epilogue of every fault-service path (LRC diff apply,
    /// HLRC page fetch): a notice that arrived *during* the fault — a
    /// barrier arrival served while waiting applies fresh interval records —
    /// is not covered yet, must survive, and keeps the page invalid so the
    /// fault path runs again.
    pub(crate) fn revalidate_page(&mut self, page: PageId) {
        let nprocs = self.nprocs;
        let slot = &mut self.pages[page as usize];
        let applied = slot
            .applied
            .clone()
            .unwrap_or_else(|| VectorClock::new(nprocs));
        slot.notices.retain(|n| !applied.covers(n.creator, n.seq));
        slot.valid = slot.notices.is_empty();
    }

    // ---------------------------------------------------------------- locks

    /// The statically assigned manager of lock `id`.
    pub fn lock_manager(&self, id: u32) -> usize {
        id as usize % self.nprocs
    }

    /// Mutable per-lock token state (created on first use; the manager starts
    /// with the token).
    pub fn lock_state_mut(&mut self, id: u32) -> &mut LockState {
        let me = self.me;
        let manager = self.lock_manager(id);
        self.locks.entry(id).or_insert_with(|| LockState {
            have_token: manager == me,
            in_cs: false,
            pending: VecDeque::new(),
        })
    }

    /// Manager-side record of the last requester of lock `id`.
    pub fn lock_manager_state_mut(&mut self, id: u32) -> &mut LockManagerState {
        let manager = self.lock_manager(id);
        assert_eq!(manager, self.me, "not the manager of lock {id}");
        self.lock_managers.entry(id).or_insert(LockManagerState {
            last_requester: manager,
        })
    }
}

#[cfg(test)]
impl DsmState {
    /// Test helper exposing a clone of the vector clock.
    pub fn vc_snapshot_for_test(&self) -> VectorClock {
        self.vc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: usize, n: usize) -> DsmState {
        DsmState::new(me, n, 1 << 20)
    }

    #[test]
    fn malloc_is_deterministic_and_aligned() {
        let mut a = state(0, 2);
        let mut b = state(1, 2);
        let a1 = a.malloc(100, 8);
        let a2 = a.malloc(64, 8);
        assert_eq!(a1, b.malloc(100, 8));
        assert_eq!(a2, b.malloc(64, 8));
        assert_eq!(a2 % 8, 0);
        assert!(a2 >= a1 + 100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn malloc_past_heap_end_panics() {
        let mut s = state(0, 1);
        s.malloc(2 << 20, 8);
    }

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let mut s = state(0, 2);
        let addr = s.malloc(64, 8);
        let mut out = [1u8; 64];
        s.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_round_trips_across_page_boundary() {
        let mut s = state(0, 2);
        let addr = PAGE_SIZE - 10; // straddles pages 0 and 1
        for p in s.pages_spanning(addr, 20) {
            s.mark_dirty(p);
        }
        let src: Vec<u8> = (0..20u8).collect();
        s.write_bytes(addr, &src);
        let mut out = [0u8; 20];
        s.read_bytes(addr, &mut out);
        assert_eq!(&out[..], &src[..]);
    }

    #[test]
    fn lock_manager_assignment_is_round_robin() {
        let s = state(0, 4);
        assert_eq!(s.lock_manager(0), 0);
        assert_eq!(s.lock_manager(5), 1);
        assert_eq!(s.lock_manager(7), 3);
    }

    #[test]
    fn manager_starts_with_the_token() {
        let mut s0 = state(0, 2);
        let mut s1 = state(1, 2);
        assert!(s0.lock_state_mut(0).have_token);
        assert!(!s1.lock_state_mut(0).have_token);
        assert!(s1.lock_state_mut(1).have_token);
    }
}

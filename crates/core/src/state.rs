//! The network-free protocol state machine of one DSM process.
//!
//! `DsmState` owns everything a TreadMarks process knows: its vector clock,
//! its copies of shared pages (with twins and pending write notices), the
//! interval records and diffs it has created or fetched, and its lock state.
//! The [`crate::Tmk`] wrapper in `process.rs` drives this state machine and
//! performs the actual message exchanges; keeping the state machine free of
//! networking makes the consistency logic unit-testable in isolation.

use crate::heap::PagePool;
use crate::home::home_of;
use crate::page::{new_page, Diff, PageId};
use crate::proto::{record_wire, vc_wire, DiffResponsePart, IntervalRecord, WireDiff};
use crate::protocol::ProtocolKind;
use crate::stats::TmkStats;
use crate::vc::VectorClock;
use bytes::Bytes;
use cluster::config::PAGE_SIZE;
use std::collections::{BTreeMap, VecDeque};

/// The result of closing an interval: the write-notice record to publish,
/// and — under the home-based protocol — the diffs that must be flushed to
/// remote homes before the synchronization operation proceeds.
#[derive(Debug)]
pub struct ClosedInterval {
    /// Sequence number of the closed interval on this process.  The record
    /// itself is stored once, in the creator's interval log — retrieve it
    /// with [`DsmState::interval_record`] when needed.
    pub seq: u32,
    /// Diffs destined for remote homes (always empty under LRC, where diffs
    /// stay with their writer; empty under HLRC for pages homed locally,
    /// whose master copy is the writer's own).
    pub flushes: Vec<(PageId, Diff)>,
}

/// A diff held locally, with the bookkeeping needed to charge its creation
/// cost lazily: real TreadMarks creates diffs only when they are first
/// requested, so the page+twin scan is charged to the creator the first
/// time the diff is served, not at interval close.  (Creation is still
/// *performed* eagerly here so later intervals cannot leak into earlier
/// diffs; only the accounting is lazy.)
#[derive(Debug)]
struct StoredDiff {
    vc: VectorClock,
    /// The clock's wire encoding, computed once at store time and spliced
    /// into every diff response that serves this diff.
    vc_wire: Bytes,
    diff: Diff,
    /// Whether the creation scan has been charged (true for fetched diffs,
    /// whose cost was paid by their creator).
    scan_charged: bool,
}

/// One entry of a process's interval log: the record plus its wire encoding,
/// computed once when the record enters the log (created locally or received
/// from its creator) and spliced into every message that later carries it.
#[derive(Debug)]
struct LoggedInterval {
    record: IntervalRecord,
    wire: Bytes,
}

impl LoggedInterval {
    fn new(record: IntervalRecord) -> Self {
        let wire = record_wire(&record);
        LoggedInterval { record, wire }
    }
}

/// A pending write notice: an interval known to have modified a page, whose
/// diff has not yet been fetched and applied locally.
#[derive(Debug, Clone)]
pub struct Notice {
    /// Creator of the interval.
    pub creator: usize,
    /// Interval sequence number on the creator.
    pub seq: u32,
    /// Vector timestamp of the interval.
    pub vc: VectorClock,
}

/// Local state of one shared page.
#[derive(Debug, Default)]
pub struct PageSlot {
    /// The page contents; allocated lazily, logically zero-filled before that.
    pub data: Option<Box<[u8]>>,
    /// The twin saved before the first write of the current interval.
    pub twin: Option<Box<[u8]>>,
    /// Whether the local copy is up to date.  All copies start valid (zero).
    pub valid: bool,
    /// Whether the page has been written during the current interval.
    pub dirty: bool,
    /// Write notices received for this page whose diffs are still missing.
    pub notices: Vec<Notice>,
    /// Per-creator sequence number of the latest interval whose modifications
    /// to this page are incorporated in the local copy (either created here
    /// or fetched and applied).  `None` means "nothing yet" (all zero).
    pub applied: Option<VectorClock>,
}

/// Per-lock state kept by every process that has interacted with the lock.
#[derive(Debug)]
pub struct LockState {
    /// Whether this process currently holds the lock token.
    pub have_token: bool,
    /// Whether this process is inside the critical section.
    pub in_cs: bool,
    /// Forwarded acquire requests waiting for this process to release.
    pub pending: VecDeque<(usize, VectorClock)>,
}

/// State kept by a lock's statically assigned manager.
#[derive(Debug)]
pub struct LockManagerState {
    /// The process that most recently requested the lock.
    pub last_requester: usize,
}

/// The complete protocol state of one DSM process.
pub struct DsmState {
    /// This process's rank.
    pub me: usize,
    /// Number of processes.
    pub nprocs: usize,
    /// Which coherence protocol this process runs.
    pub protocol: ProtocolKind,
    /// This process's vector clock (entry `me` = number of closed intervals).
    pub vc: VectorClock,
    /// The merged clock distributed at the last barrier release.
    pub last_barrier_vc: VectorClock,
    /// All interval records retained, indexed
    /// `[creator][seq - 1 - interval_base[creator]]`: garbage collection
    /// (see [`DsmState::gc`]) truncates the front of each log and advances
    /// the base.
    intervals: Vec<Vec<LoggedInterval>>,
    /// Number of leading intervals of each creator already garbage
    /// collected from `intervals`.
    interval_base: Vec<u32>,
    /// Diffs held locally (created or fetched), keyed by (page, creator,
    /// seq).  Ordered so (a) iteration order can never silently depend on
    /// hash order and (b) serving a request is a range scan over one page's
    /// keys instead of a sweep over every diff held.
    diffs: BTreeMap<(PageId, usize, u32), StoredDiff>,
    /// Shared pages (crate-visible so the protocol backends in [`crate::home`]
    /// can maintain master copies).
    pub(crate) pages: Vec<PageSlot>,
    /// Pages written during the current (open) interval.
    dirty_pages: Vec<PageId>,
    /// Bump allocator cursor for the shared heap.
    heap_next: usize,
    /// Size of the shared heap in bytes.
    heap_bytes: usize,
    /// Per-lock token state (ordered: determinism must never silently
    /// depend on hash-iteration order).
    locks: BTreeMap<u32, LockState>,
    /// Manager-side lock state for locks this process manages (ordered).
    lock_managers: BTreeMap<u32, LockManagerState>,
    /// Recycled page-sized buffers for twin churn.
    pub(crate) pool: PagePool,
    /// Runtime statistics.
    pub stats: TmkStats,
}

impl DsmState {
    /// Fresh state for process `me` of `nprocs`, with a shared heap of
    /// `heap_bytes` bytes, running the default (LRC) protocol.
    pub fn new(me: usize, nprocs: usize, heap_bytes: usize) -> Self {
        Self::new_with(me, nprocs, heap_bytes, ProtocolKind::default())
    }

    /// Fresh state for process `me` of `nprocs`, with a shared heap of
    /// `heap_bytes` bytes, running the given coherence protocol.
    pub fn new_with(me: usize, nprocs: usize, heap_bytes: usize, protocol: ProtocolKind) -> Self {
        let npages = heap_bytes.div_ceil(PAGE_SIZE);
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            pages.push(PageSlot {
                valid: true,
                ..Default::default()
            });
        }
        DsmState {
            me,
            nprocs,
            protocol,
            vc: VectorClock::new(nprocs),
            last_barrier_vc: VectorClock::new(nprocs),
            intervals: (0..nprocs).map(|_| Vec::new()).collect(),
            interval_base: vec![0; nprocs],
            diffs: BTreeMap::new(),
            pages,
            dirty_pages: Vec::new(),
            heap_next: 0,
            heap_bytes: npages * PAGE_SIZE,
            locks: BTreeMap::new(),
            lock_managers: BTreeMap::new(),
            pool: PagePool::default(),
            stats: TmkStats::default(),
        }
    }

    // ---------------------------------------------------------------- heap

    /// Allocate `bytes` of shared memory with the given alignment and return
    /// its address.  The allocator is a deterministic bump allocator: as long
    /// as every process performs the same sequence of allocations (the SPMD
    /// convention of the applications in this study), every process obtains
    /// the same addresses.  Allocations are *not* page aligned, so distinct
    /// objects can share a page — which is exactly how false sharing arises
    /// in the applications of the paper.
    pub fn malloc(&mut self, bytes: usize, align: usize) -> usize {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.heap_next + align - 1) & !(align - 1);
        assert!(
            addr + bytes <= self.heap_bytes,
            "shared heap exhausted: need {bytes} bytes at {addr}, heap is {} bytes",
            self.heap_bytes
        );
        self.heap_next = addr + bytes;
        addr
    }

    /// Total size of the shared heap in bytes.
    pub fn heap_size(&self) -> usize {
        self.heap_bytes
    }

    /// Page containing `addr`.
    pub fn page_of(&self, addr: usize) -> PageId {
        (addr / PAGE_SIZE) as PageId
    }

    /// The pages spanned by the byte range `[addr, addr + len)`.
    pub fn pages_spanning(&self, addr: usize, len: usize) -> std::ops::RangeInclusive<PageId> {
        assert!(len > 0, "zero-length shared access");
        assert!(
            addr + len <= self.heap_bytes,
            "shared access [{addr}, {}) outside the heap",
            addr + len
        );
        self.page_of(addr)..=self.page_of(addr + len - 1)
    }

    /// Pages in the given range that are currently invalid and need diffs.
    pub fn invalid_pages(&self, addr: usize, len: usize) -> Vec<PageId> {
        self.pages_spanning(addr, len)
            .filter(|&p| !self.pages[p as usize].valid)
            .collect()
    }

    /// Read `out.len()` bytes starting at `addr`.  All spanned pages must be
    /// valid (the caller resolves faults first).
    pub fn read_bytes(&mut self, addr: usize, out: &mut [u8]) {
        let len = out.len();
        let pages = self.pages_spanning(addr, len);
        debug_assert!(pages.clone().all(|p| self.pages[p as usize].valid));
        let mut done = 0usize;
        let mut cur = addr;
        while done < len {
            let page = self.page_of(cur);
            let off = cur % PAGE_SIZE;
            let take = (PAGE_SIZE - off).min(len - done);
            let slot = &self.pages[page as usize];
            match &slot.data {
                Some(data) => out[done..done + take].copy_from_slice(&data[off..off + take]),
                None => out[done..done + take].fill(0),
            }
            done += take;
            cur += take;
        }
    }

    /// Write `src` starting at `addr`.  All spanned pages must be valid and
    /// already marked dirty (twinned) by the caller.
    pub fn write_bytes(&mut self, addr: usize, src: &[u8]) {
        let len = src.len();
        let _ = self.pages_spanning(addr, len);
        let mut done = 0usize;
        let mut cur = addr;
        while done < len {
            let page = self.page_of(cur);
            let off = cur % PAGE_SIZE;
            let take = (PAGE_SIZE - off).min(len - done);
            let slot = &mut self.pages[page as usize];
            debug_assert!(slot.valid && slot.dirty);
            let data = slot.data.get_or_insert_with(new_page);
            data[off..off + take].copy_from_slice(&src[done..done + take]);
            done += take;
            cur += take;
        }
    }

    /// Mark `page` as written in the current interval, creating its twin on
    /// the first write (the multiple-writer protocol's write trap).
    /// Returns `true` if a twin was created by this call.
    pub fn mark_dirty(&mut self, page: PageId) -> bool {
        let DsmState {
            pages,
            pool,
            dirty_pages,
            stats,
            ..
        } = self;
        let slot = &mut pages[page as usize];
        assert!(slot.valid, "writing an invalid page without a fault");
        if slot.dirty {
            return false;
        }
        let data = match &mut slot.data {
            Some(data) => data,
            None => slot.data.insert(pool.take_zeroed()),
        };
        slot.twin = Some(pool.take_copy(data));
        slot.dirty = true;
        dirty_pages.push(page);
        stats.twins_created += 1;
        true
    }

    /// Whether `page` is currently valid.
    pub fn is_valid(&self, page: PageId) -> bool {
        self.pages[page as usize].valid
    }

    /// Whether `page` is dirty in the current interval.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.pages[page as usize].dirty
    }

    /// The pending write notices of `page`.
    pub fn notices_of(&self, page: PageId) -> &[Notice] {
        &self.pages[page as usize].notices
    }

    // ----------------------------------------------------------- intervals

    /// Close the current interval if any page was written during it.
    ///
    /// Diffs are created *eagerly* here (real TreadMarks creates them lazily
    /// when first requested); this keeps uncommitted writes of a later
    /// interval out of earlier diffs while producing identical message and
    /// data counts.  What happens to the created diffs is the protocol
    /// decision: LRC stores them for later diff requests (and eventual
    /// accumulation), HLRC hands them back for flushing to remote homes and
    /// keeps nothing.  Returns `None` if nothing was written.
    pub fn close_interval(&mut self) -> Option<ClosedInterval> {
        if self.dirty_pages.is_empty() {
            return None;
        }
        let seq = self.vc.increment(self.me);
        let vc = self.vc.clone();
        let interval_vc_wire = vc_wire(&vc);
        let mut pages = std::mem::take(&mut self.dirty_pages);
        pages.sort_unstable();
        pages.dedup();
        let mut flushes = Vec::new();
        for &page in &pages {
            let home = home_of(page, self.nprocs);
            let slot = &mut self.pages[page as usize];
            let twin = slot.twin.take().expect("dirty page must have a twin");
            slot.dirty = false;
            // Under HLRC the home's own writes are already in its master
            // copy: no diff is needed for a page homed here, ever.
            if self.protocol == ProtocolKind::Hlrc && home == self.me {
                self.pool.recycle(twin);
                continue;
            }
            let data = slot.data.as_ref().expect("dirty page must have data");
            let diff = Diff::create(&twin, data);
            self.pool.recycle(twin);
            self.stats.diffs_created += 1;
            self.stats.diff_bytes_created += diff.encoded_len() as u64;
            match self.protocol {
                ProtocolKind::Lrc => {
                    self.diffs.insert(
                        (page, self.me, seq),
                        StoredDiff {
                            vc: vc.clone(),
                            vc_wire: interval_vc_wire.clone(),
                            diff,
                            scan_charged: false,
                        },
                    );
                }
                ProtocolKind::Hlrc => flushes.push((page, diff)),
            }
        }
        // The local copy of each dirty page now incorporates this interval.
        let nprocs = self.nprocs;
        let me = self.me;
        for &page in &pages {
            let slot = &mut self.pages[page as usize];
            let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
            applied.set(me, seq);
        }
        let record = IntervalRecord {
            creator: self.me,
            seq,
            vc,
            pages,
        };
        debug_assert_eq!(
            self.interval_base[self.me] + self.intervals[self.me].len() as u32,
            seq - 1
        );
        // The record is stored exactly once — in the creator's own log —
        // and retrieved by index when published; no shadow copy travels in
        // the return value.
        self.intervals[self.me].push(LoggedInterval::new(record));
        Some(ClosedInterval { seq, flushes })
    }

    /// The retained interval record `seq` of `creator`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is unknown or already garbage collected.
    pub fn interval_record(&self, creator: usize, seq: u32) -> &IntervalRecord {
        let base = self.interval_base[creator];
        assert!(
            seq > base,
            "interval ({creator}, {seq}) was garbage collected"
        );
        &self.intervals[creator][(seq - 1 - base) as usize].record
    }

    /// Incorporate a write-notice record received from another process:
    /// record the interval and invalidate the pages it modified.
    /// Records already covered by the local clock are ignored.
    pub fn apply_interval_record(&mut self, rec: &IntervalRecord) {
        if rec.creator == self.me || self.vc.covers(rec.creator, rec.seq) {
            return;
        }
        debug_assert_eq!(
            self.interval_base[rec.creator] + self.intervals[rec.creator].len() as u32,
            rec.seq - 1,
            "interval records of one creator must arrive contiguously"
        );
        self.vc.set(rec.creator, rec.seq);
        self.intervals[rec.creator].push(LoggedInterval::new(rec.clone()));
        self.stats.write_notices_received += rec.pages.len() as u64;
        for &page in &rec.pages {
            // Under HLRC the home's copy is the master copy: flushes keep it
            // current before the notice can arrive, so it is never
            // invalidated.
            if self.protocol == ProtocolKind::Hlrc && home_of(page, self.nprocs) == self.me {
                continue;
            }
            let slot = &mut self.pages[page as usize];
            slot.valid = false;
            slot.notices.push(Notice {
                creator: rec.creator,
                seq: rec.seq,
                vc: rec.vc.clone(),
            });
        }
    }

    /// Incorporate a batch of records, in an order consistent with `hb1`.
    pub fn apply_interval_records(&mut self, records: &[IntervalRecord]) {
        let mut sorted: Vec<&IntervalRecord> = records.iter().collect();
        sorted.sort_by_key(|r| (r.creator, r.seq));
        for r in sorted {
            self.apply_interval_record(r);
        }
    }

    /// All interval records known locally that are not covered by `other`.
    /// This is what a releaser piggybacks on a lock grant and what the
    /// barrier manager sends in each release message.
    pub fn records_not_covered_by(&self, other: &VectorClock) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        for creator in 0..self.nprocs {
            let known = self.vc.get(creator);
            let have = other.get(creator);
            let base = self.interval_base[creator];
            assert!(
                have >= base,
                "peer clock ({creator}:{have}) predates the GC horizon {base}"
            );
            for seq in (have + 1)..=known {
                out.push(
                    self.intervals[creator][(seq - 1 - base) as usize]
                        .record
                        .clone(),
                );
            }
        }
        out
    }

    /// The pre-encoded wire buffers of
    /// [`records_not_covered_by`](Self::records_not_covered_by), in the same
    /// order: what the hot send paths splice into grants and barrier
    /// messages instead of cloning and re-serialising each record.
    pub(crate) fn record_wires_not_covered_by(&self, other: &VectorClock) -> Vec<&Bytes> {
        let mut out = Vec::new();
        for creator in 0..self.nprocs {
            let known = self.vc.get(creator);
            let have = other.get(creator);
            let base = self.interval_base[creator];
            assert!(
                have >= base,
                "peer clock ({creator}:{have}) predates the GC horizon {base}"
            );
            for seq in (have + 1)..=known {
                out.push(&self.intervals[creator][(seq - 1 - base) as usize].wire);
            }
        }
        out
    }

    // ---------------------------------------------------------------- diffs

    /// The set of processes to send diff requests to for `page`: the writers
    /// named in the pending notices whose most recent interval (for this
    /// page) is not dominated by another such writer's most recent interval.
    /// A processor that modified a page in an interval holds all diffs of the
    /// intervals that precede it, so asking only the maximal writers is
    /// sufficient — this is the optimisation described in Section 2.2.2.
    pub fn diff_request_targets(&self, page: PageId) -> Vec<usize> {
        let notices = &self.pages[page as usize].notices;
        // Latest pending interval per writer.
        let mut latest: BTreeMap<usize, &Notice> = BTreeMap::new();
        for n in notices {
            match latest.get(&n.creator) {
                Some(cur) if cur.seq >= n.seq => {}
                _ => {
                    latest.insert(n.creator, n);
                }
            }
        }
        let writers: Vec<&Notice> = latest.values().copied().collect();
        let mut targets = Vec::new();
        for w in &writers {
            let dominated = writers.iter().any(|o| {
                !(o.creator == w.creator && o.seq == w.seq) && o.vc.dominates(&w.vc) && o.vc != w.vc
            });
            if !dominated && w.creator != self.me {
                targets.push(w.creator);
            }
        }
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Serve a diff request: every diff held locally for `page` whose
    /// interval (a) the requester knows about (it is covered by the
    /// requester's *global* clock, i.e. it happens-before the acquire that
    /// triggered the fault) and (b) the requester has not yet applied to its
    /// copy of the page.  This is where *diff accumulation* happens — the
    /// response includes diffs created by other processes that this process
    /// has previously fetched, even when later diffs completely overwrite
    /// them.
    /// Also returns the number of returned diffs whose creation scan has
    /// not been charged yet (they are marked charged by this call): the
    /// serving runtime charges the page+twin scan for exactly those, which
    /// is the lazy diff creation of the real system.
    pub fn diffs_for_request(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Vec<WireDiff>, usize) {
        let (keys, first_serves) = self.served_diff_keys(page, requester, applied_vc, global_vc);
        let out = keys
            .into_iter()
            .map(|(_, creator, seq)| {
                let stored = &self.diffs[&(page, creator, seq)];
                WireDiff {
                    creator,
                    seq,
                    vc: stored.vc.clone(),
                    diff: stored.diff.clone(),
                }
            })
            .collect();
        (out, first_serves)
    }

    /// Serve a diff request straight into its wire encoding: the same
    /// selection as [`diffs_for_request`](Self::diffs_for_request), but the
    /// response payload is built from the stored diffs and their pre-encoded
    /// clocks by reference — no `Diff` or `VectorClock` clones.  Returns the
    /// payload, the summed encoded size of the served diffs (the responder's
    /// copy cost), and the number of first-time serves (whose creation scan
    /// the caller charges — lazy diff creation).
    pub fn encode_diffs_for_request(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Bytes, usize, usize) {
        let (keys, first_serves) = self.served_diff_keys(page, requester, applied_vc, global_vc);
        let mut diff_bytes = 0usize;
        let parts: Vec<DiffResponsePart<'_>> = keys
            .iter()
            .map(|&(_, creator, seq)| {
                let stored = &self.diffs[&(page, creator, seq)];
                diff_bytes += stored.diff.encoded_len();
                (creator, seq, &stored.vc_wire, &stored.diff)
            })
            .collect();
        let payload = crate::proto::encode_diff_response_preencoded(page, &parts);
        (payload, diff_bytes, first_serves)
    }

    /// The diffs this process would serve for `page`, as `(hb1 sort key,
    /// creator, seq)` in response order, marking first-time serves as
    /// scan-charged.  A range scan over the page's keys in the ordered diff
    /// store — not a sweep over every diff held.
    fn served_diff_keys(
        &mut self,
        page: PageId,
        requester: usize,
        applied_vc: &VectorClock,
        global_vc: &VectorClock,
    ) -> (Vec<(u64, usize, u32)>, usize) {
        let mut first_serves = 0usize;
        let mut keys: Vec<(u64, usize, u32)> = Vec::new();
        for (&(_, creator, seq), stored) in self
            .diffs
            .range_mut((page, 0, 0)..=(page, usize::MAX, u32::MAX))
        {
            if creator == requester
                || seq <= applied_vc.get(creator)
                || !global_vc.covers(creator, seq)
            {
                continue;
            }
            if !stored.scan_charged {
                stored.scan_charged = true;
                first_serves += 1;
            }
            keys.push((stored.vc.sum(), creator, seq));
        }
        keys.sort_unstable();
        (keys, first_serves)
    }

    /// The per-page applied clock sent in a diff request for `page`.
    pub fn page_applied_vc(&self, page: PageId) -> VectorClock {
        self.pages[page as usize]
            .applied
            .clone()
            .unwrap_or_else(|| VectorClock::new(self.nprocs))
    }

    /// Apply fetched diffs to `page` (in `hb1` order) and store them so they
    /// can be served to other processes later.
    ///
    /// Only the write notices actually covered by the updated per-page
    /// applied clock are cleared: a new notice can arrive *during* the fault
    /// (a barrier arrival served while waiting for diff responses applies
    /// fresh interval records), and wiping it here would leave the page
    /// permanently stale.  The page becomes valid only if no notice remains;
    /// the fault path re-faults otherwise.
    pub fn apply_wire_diffs(&mut self, page: PageId, mut diffs: Vec<WireDiff>) {
        diffs.sort_by_key(|d| (d.vc.sum(), d.creator, d.seq));
        {
            let slot = &mut self.pages[page as usize];
            let data = slot.data.get_or_insert_with(new_page);
            for wd in &diffs {
                wd.diff.apply(data);
                // Keep a concurrent writer's twin in sync so its own diff
                // stays minimal (does not duplicate the incoming changes).
                if let Some(twin) = slot.twin.as_mut() {
                    wd.diff.apply(twin);
                }
            }
        }
        let nprocs = self.nprocs;
        {
            let slot = &mut self.pages[page as usize];
            let applied = slot.applied.get_or_insert_with(|| VectorClock::new(nprocs));
            for wd in &diffs {
                if wd.seq > applied.get(wd.creator) {
                    applied.set(wd.creator, wd.seq);
                }
            }
        }
        for wd in diffs {
            self.stats.diffs_applied += 1;
            self.stats.diff_bytes_received += wd.diff.encoded_len() as u64;
            self.diffs
                .entry((page, wd.creator, wd.seq))
                .or_insert_with(|| StoredDiff {
                    vc_wire: vc_wire(&wd.vc),
                    vc: wd.vc,
                    diff: wd.diff,
                    scan_charged: true,
                });
        }
        self.revalidate_page(page);
    }

    /// Clear the notices of `page` that its applied clock now covers and
    /// mark the page valid only if none remain.
    ///
    /// This is the epilogue of every fault-service path (LRC diff apply,
    /// HLRC page fetch): a notice that arrived *during* the fault — a
    /// barrier arrival served while waiting applies fresh interval records —
    /// is not covered yet, must survive, and keeps the page invalid so the
    /// fault path runs again.
    pub(crate) fn revalidate_page(&mut self, page: PageId) {
        let nprocs = self.nprocs;
        let slot = &mut self.pages[page as usize];
        let applied = slot
            .applied
            .clone()
            .unwrap_or_else(|| VectorClock::new(nprocs));
        slot.notices.retain(|n| !applied.covers(n.creator, n.seq));
        slot.valid = slot.notices.is_empty();
    }

    /// Number of diffs currently held for `page` (for tests and ablations).
    pub fn diffs_held_for(&self, page: PageId) -> usize {
        self.diffs
            .range((page, 0, 0)..=(page, usize::MAX, u32::MAX))
            .count()
    }

    /// Total number of diffs currently held (for tests and the GC trigger).
    pub fn diffs_held(&self) -> usize {
        self.diffs.len()
    }

    /// Total number of interval records currently retained (for tests).
    pub fn intervals_retained(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    // ------------------------------------------------------------------- gc

    /// Garbage-collect protocol metadata covered by `up_to` — the paper's
    /// barrier-time GC: once every process has validated its pages up to a
    /// cluster-wide clock (which the barrier protocol in
    /// `process.rs` arranges), interval records and stored diffs at or below
    /// that clock can never be requested again and are dropped.  Without
    /// this, `intervals` and `diffs` grow without bound for the lifetime of
    /// a run — the diff garbage the paper itself calls out.
    pub fn gc(&mut self, up_to: &VectorClock) {
        for creator in 0..self.nprocs {
            let covered = up_to.get(creator);
            let base = self.interval_base[creator];
            let drop_n = (covered.saturating_sub(base) as usize).min(self.intervals[creator].len());
            if drop_n > 0 {
                self.intervals[creator].drain(..drop_n);
                self.interval_base[creator] = base + drop_n as u32;
                self.stats.intervals_collected += drop_n as u64;
            }
        }
        let before = self.diffs.len();
        self.diffs
            .retain(|&(_, creator, seq), _| seq > up_to.get(creator));
        self.stats.diffs_collected += (before - self.diffs.len()) as u64;
        self.stats.gc_collections += 1;
    }

    // ---------------------------------------------------------------- locks

    /// The statically assigned manager of lock `id`.
    pub fn lock_manager(&self, id: u32) -> usize {
        id as usize % self.nprocs
    }

    /// Mutable per-lock token state (created on first use; the manager starts
    /// with the token).
    pub fn lock_state_mut(&mut self, id: u32) -> &mut LockState {
        let me = self.me;
        let manager = self.lock_manager(id);
        self.locks.entry(id).or_insert_with(|| LockState {
            have_token: manager == me,
            in_cs: false,
            pending: VecDeque::new(),
        })
    }

    /// Manager-side record of the last requester of lock `id`.
    pub fn lock_manager_state_mut(&mut self, id: u32) -> &mut LockManagerState {
        let manager = self.lock_manager(id);
        assert_eq!(manager, self.me, "not the manager of lock {id}");
        self.lock_managers.entry(id).or_insert(LockManagerState {
            last_requester: manager,
        })
    }
}

#[cfg(test)]
impl DsmState {
    /// Test helper exposing a clone of the vector clock.
    pub fn vc_snapshot_for_test(&self) -> VectorClock {
        self.vc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: usize, n: usize) -> DsmState {
        DsmState::new(me, n, 1 << 20)
    }

    /// Close the open interval and return a clone of its logged record.
    fn close_record(s: &mut DsmState) -> IntervalRecord {
        let seq = s.close_interval().expect("interval must close").seq;
        s.interval_record(s.me, seq).clone()
    }

    #[test]
    fn malloc_is_deterministic_and_aligned() {
        let mut a = state(0, 2);
        let mut b = state(1, 2);
        let a1 = a.malloc(100, 8);
        let a2 = a.malloc(64, 8);
        assert_eq!(a1, b.malloc(100, 8));
        assert_eq!(a2, b.malloc(64, 8));
        assert_eq!(a2 % 8, 0);
        assert!(a2 >= a1 + 100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn malloc_past_heap_end_panics() {
        let mut s = state(0, 1);
        s.malloc(2 << 20, 8);
    }

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let mut s = state(0, 2);
        let addr = s.malloc(64, 8);
        let mut out = [1u8; 64];
        s.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_round_trips_across_page_boundary() {
        let mut s = state(0, 2);
        let addr = PAGE_SIZE - 10; // straddles pages 0 and 1
        for p in s.pages_spanning(addr, 20) {
            s.mark_dirty(p);
        }
        let src: Vec<u8> = (0..20u8).collect();
        s.write_bytes(addr, &src);
        let mut out = [0u8; 20];
        s.read_bytes(addr, &mut out);
        assert_eq!(&out[..], &src[..]);
    }

    #[test]
    fn close_interval_creates_diffs_and_advances_clock() {
        let mut s = state(0, 2);
        let addr = s.malloc(16, 8);
        s.mark_dirty(s.page_of(addr));
        s.write_bytes(addr, &[1; 16]);
        let rec = close_record(&mut s);
        assert_eq!(rec.creator, 0);
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.pages, vec![s.page_of(addr)]);
        assert_eq!(s.vc.get(0), 1);
        assert_eq!(s.diffs_held_for(s.page_of(addr)), 1);
        // No dirty pages -> no new interval.
        assert!(s.close_interval().is_none());
    }

    #[test]
    fn interval_record_invalidates_pages_at_receiver() {
        let mut writer = state(0, 2);
        let mut reader = state(1, 2);
        let addr = writer.malloc(16, 8);
        let _ = reader.malloc(16, 8);
        writer.mark_dirty(writer.page_of(addr));
        writer.write_bytes(addr, &[7; 16]);
        let rec = close_record(&mut writer);

        assert!(reader.is_valid(reader.page_of(addr)));
        reader.apply_interval_record(&rec);
        assert!(!reader.is_valid(reader.page_of(addr)));
        assert_eq!(reader.vc.get(0), 1);
        // Applying the same record twice is a no-op.
        reader.apply_interval_record(&rec);
        assert_eq!(reader.notices_of(reader.page_of(addr)).len(), 1);
    }

    #[test]
    fn diff_fetch_round_trip_updates_reader_copy() {
        let mut writer = state(0, 2);
        let mut reader = state(1, 2);
        let addr = writer.malloc(1024, 8);
        let _ = reader.malloc(1024, 8);
        let page = writer.page_of(addr);
        writer.mark_dirty(page);
        writer.write_bytes(addr, &[42u8; 1024]);
        let rec = close_record(&mut writer);
        reader.apply_interval_record(&rec);

        assert_eq!(reader.diff_request_targets(page), vec![0]);
        let diffs = writer
            .diffs_for_request(
                page,
                1,
                &reader.page_applied_vc(page),
                &reader.vc_snapshot_for_test(),
            )
            .0;
        assert_eq!(diffs.len(), 1);
        reader.apply_wire_diffs(page, diffs);
        assert!(reader.is_valid(page));
        let mut out = [0u8; 1024];
        reader.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 42));
    }

    #[test]
    fn diff_accumulation_returns_overlapping_old_diffs() {
        // Process 0 writes the page in interval 1; process 1 fetches, then
        // overwrites the same bytes in its own interval; process 0 fetches
        // back.  A later requester who has seen neither interval receives
        // BOTH diffs from process 1 even though the second completely
        // overwrites the first — the diff accumulation phenomenon.
        let mut p0 = state(0, 3);
        let mut p1 = state(1, 3);
        let mut p2 = state(2, 3);
        let addr = p0.malloc(512, 8);
        let _ = p1.malloc(512, 8);
        let _ = p2.malloc(512, 8);
        let page = p0.page_of(addr);

        p0.mark_dirty(page);
        p0.write_bytes(addr, &[1u8; 512]);
        let rec0 = close_record(&mut p0);

        p1.apply_interval_record(&rec0);
        let diffs = p0
            .diffs_for_request(
                page,
                1,
                &p1.page_applied_vc(page),
                &p1.vc_snapshot_for_test(),
            )
            .0;
        p1.apply_wire_diffs(page, diffs);
        p1.mark_dirty(page);
        p1.write_bytes(addr, &[2u8; 512]);
        let rec1 = close_record(&mut p1);

        p2.apply_interval_record(&rec0);
        p2.apply_interval_record(&rec1);
        // p1's interval dominates p0's, so p2 asks only p1...
        assert_eq!(p2.diff_request_targets(page), vec![1]);
        // ...but p1 answers with both diffs (accumulation).
        let diffs = p1
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        assert_eq!(diffs.len(), 2);
        p2.apply_wire_diffs(page, diffs);
        let mut out = [0u8; 512];
        p2.read_bytes(addr, &mut out);
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn concurrent_writers_require_requests_to_both() {
        // False sharing: two processes write disjoint halves of one page in
        // concurrent intervals; a third must request diffs from both.
        let mut p0 = state(0, 3);
        let mut p1 = state(1, 3);
        let mut p2 = state(2, 3);
        for s in [&mut p0, &mut p1, &mut p2] {
            let _ = s.malloc(PAGE_SIZE, 8);
        }
        let page = 0;
        p0.mark_dirty(page);
        p0.write_bytes(0, &[1u8; 100]);
        let rec0 = close_record(&mut p0);
        p1.mark_dirty(page);
        p1.write_bytes(2000, &[2u8; 100]);
        let rec1 = close_record(&mut p1);

        p2.apply_interval_records(&[rec0, rec1]);
        let mut targets = p2.diff_request_targets(page);
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1]);

        let d0 = p0
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        let d1 = p1
            .diffs_for_request(
                page,
                2,
                &p2.page_applied_vc(page),
                &p2.vc_snapshot_for_test(),
            )
            .0;
        p2.apply_wire_diffs(page, d0.into_iter().chain(d1).collect());
        let mut out = [0u8; 100];
        p2.read_bytes(0, &mut out);
        assert!(out.iter().all(|&b| b == 1));
        p2.read_bytes(2000, &mut out);
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn records_not_covered_by_returns_exactly_the_gap() {
        let mut s = state(0, 2);
        let addr = s.malloc(8, 8);
        for _ in 0..3 {
            s.mark_dirty(s.page_of(addr));
            s.write_bytes(addr, &[9; 8]);
            s.close_interval();
        }
        let mut other = VectorClock::new(2);
        other.set(0, 1);
        let recs = s.records_not_covered_by(&other);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[1].seq, 3);
    }

    #[test]
    fn lock_manager_assignment_is_round_robin() {
        let s = state(0, 4);
        assert_eq!(s.lock_manager(0), 0);
        assert_eq!(s.lock_manager(5), 1);
        assert_eq!(s.lock_manager(7), 3);
    }

    #[test]
    fn manager_starts_with_the_token() {
        let mut s0 = state(0, 2);
        let mut s1 = state(1, 2);
        assert!(s0.lock_state_mut(0).have_token);
        assert!(!s1.lock_state_mut(0).have_token);
        assert!(s1.lock_state_mut(1).have_token);
    }

    #[test]
    fn twin_kept_in_sync_with_incoming_diffs() {
        // A concurrent writer applies an incoming diff to both the page and
        // its twin, so its own later diff does not duplicate those bytes.
        let mut p0 = state(0, 2);
        let mut p1 = state(1, 2);
        let _ = p0.malloc(PAGE_SIZE, 8);
        let _ = p1.malloc(PAGE_SIZE, 8);
        let page = 0;
        p0.mark_dirty(page);
        p0.write_bytes(0, &[5u8; 64]);
        let rec0 = close_record(&mut p0);

        p1.mark_dirty(page);
        p1.write_bytes(1000, &[6u8; 64]);
        // Now p1 learns about p0's interval and fetches its diff while still
        // having its own uncommitted writes.
        p1.apply_interval_record(&rec0);
        let diffs = p0
            .diffs_for_request(
                page,
                1,
                &p1.page_applied_vc(page),
                &p1.vc_snapshot_for_test(),
            )
            .0;
        p1.apply_wire_diffs(page, diffs);
        let rec1 = close_record(&mut p1);
        assert_eq!(rec1.pages, vec![0]);
        let d = p1
            .diffs_for_request(0, 0, &rec0.vc, &p1.vc_snapshot_for_test())
            .0;
        assert_eq!(d.len(), 1);
        // p1's diff covers only its own 64 modified bytes, not p0's.
        assert_eq!(d[0].diff.modified_bytes(), 64);
    }
}

//! Pages, twins, and run-length-encoded diffs — the multiple-writer protocol.
//!
//! TreadMarks allows two or more processors to modify their own copy of a
//! shared page simultaneously.  Before the first write of an interval the
//! writer saves a *twin* (a copy of the page); at the end of the interval the
//! twin is compared to the current contents and the differences are encoded
//! as a *diff*, a run-length encoding of the modified bytes.  Diffs from
//! concurrent writers touch disjoint bytes (for correct programs) and are
//! merged by applying them all, which is what eliminates most of the cost of
//! false sharing relative to a single-writer protocol.

use cluster::config::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Index of a shared page within the shared address space.
pub type PageId = u32;

/// One modified run within a page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: u16,
    /// The new bytes.
    pub data: Vec<u8>,
}

/// A run-length encoding of the modifications made to one page during one
/// interval, produced by comparing the page to its twin.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff {
    /// The modified runs, in increasing offset order, non-overlapping.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff between `twin` (the pre-modification copy) and
    /// `current` (the page as modified during the interval).
    ///
    /// The scan compares the pages a 64-bit word at a time: identical
    /// stretches (the common case — most of a page is usually untouched)
    /// are skipped eight bytes per comparison, and inside a run a word all
    /// of whose bytes differ extends the run eight bytes at a time (the
    /// SWAR zero-byte test).  Run *boundaries* are still byte-precise, so
    /// the result is identical to [`Diff::create_reference`] — the
    /// equivalence is property-tested over random twin/page pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not both exactly one page long.
    pub fn create(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        const W: usize = 8;
        /// Leading 8-byte words of `a` and `b` that are bytewise equal.
        #[inline(always)]
        fn equal_words(a: &[u8], b: &[u8]) -> usize {
            a.chunks_exact(W)
                .zip(b.chunks_exact(W))
                .take_while(|(x, y)| x == y)
                .count()
        }
        /// Leading 8-byte words in which *every* byte position differs
        /// (the SWAR no-zero-byte test on the xor).
        #[inline(always)]
        fn all_differ_words(a: &[u8], b: &[u8]) -> usize {
            a.chunks_exact(W)
                .zip(b.chunks_exact(W))
                .take_while(|(x, y)| {
                    let x = u64::from_ne_bytes((*x).try_into().unwrap());
                    let y = u64::from_ne_bytes((*y).try_into().unwrap());
                    let d = x ^ y;
                    d.wrapping_sub(0x0101_0101_0101_0101) & !d & 0x8080_8080_8080_8080 == 0
                })
                .count()
        }
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < PAGE_SIZE {
            // Find the next differing byte.  Outside a run `i` re-aligns
            // within at most 7 byte-compares, then identical words are
            // skipped eight bytes per compare.
            if !i.is_multiple_of(W) {
                if twin[i] == current[i] {
                    i += 1;
                    continue;
                }
            } else {
                i += W * equal_words(&twin[i..], &current[i..]);
                if i >= PAGE_SIZE {
                    break;
                }
                while twin[i] == current[i] {
                    i += 1;
                }
            }
            let start = i;
            // Extend the run: whole words while every byte differs, then
            // byte-at-a-time to the exact boundary.
            while i < PAGE_SIZE {
                if i.is_multiple_of(W) {
                    i += W * all_differ_words(&twin[i..], &current[i..]);
                    if i >= PAGE_SIZE {
                        break;
                    }
                }
                if twin[i] != current[i] {
                    i += 1;
                } else {
                    break;
                }
            }
            runs.push(DiffRun {
                offset: start as u16,
                data: current[start..i].to_vec(),
            });
        }
        let diff = Diff { runs };
        // With the `oracle-checks` feature (on in CI), every word-scan diff
        // is checked against the byte-at-a-time reference; off by default
        // because diff creation is on the interval-close hot path.
        #[cfg(feature = "oracle-checks")]
        assert_eq!(
            diff,
            Diff::create_reference(twin, current),
            "word-scan diff diverged from the reference implementation"
        );
        diff
    }

    /// The byte-at-a-time reference implementation of [`Diff::create`]:
    /// obviously correct, measurably slower.  Kept as the oracle for the
    /// word-scan equivalence tests and the `diff` bench.
    pub fn create_reference(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < PAGE_SIZE {
            if twin[i] != current[i] {
                let start = i;
                while i < PAGE_SIZE && twin[i] != current[i] {
                    i += 1;
                }
                runs.push(DiffRun {
                    offset: start as u16,
                    data: current[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// Apply this diff to `page`.
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "page must be one page");
        for run in &self.runs {
            let start = run.offset as usize;
            page[start..start + run.data.len()].copy_from_slice(&run.data);
        }
    }

    /// True if the twin and the page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified bytes carried by the diff.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Size of the diff on the wire: per-run header (offset + length, 4 bytes)
    /// plus the modified bytes, plus a small diff header.
    pub fn encoded_len(&self) -> usize {
        8 + self.runs.iter().map(|r| 4 + r.data.len()).sum::<usize>()
    }
}

/// A freshly allocated, zero-filled page.
pub fn new_page() -> Box<[u8]> {
    vec![0u8; PAGE_SIZE].into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Box<[u8]> {
        let mut p = new_page();
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let twin = new_page();
        let page = new_page();
        let d = Diff::create(&twin, &page);
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
    }

    #[test]
    fn single_run_is_detected() {
        let twin = new_page();
        let page = page_with(&[(100, 1), (101, 2), (102, 3)]);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 100);
        assert_eq!(d.runs[0].data, vec![1, 2, 3]);
    }

    #[test]
    fn multiple_runs_are_separated_by_unchanged_bytes() {
        let twin = new_page();
        let page = page_with(&[(0, 9), (1, 9), (500, 7), (4095, 5)]);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 3);
        assert_eq!(d.modified_bytes(), 4);
    }

    #[test]
    fn apply_reconstructs_the_modified_page() {
        let twin = page_with(&[(10, 42), (20, 43)]);
        let mut page = twin.clone();
        page[10] = 1;
        page[3000] = 99;
        let d = Diff::create(&twin, &page);
        let mut other_copy = twin.clone();
        d.apply(&mut other_copy);
        assert_eq!(other_copy.as_ref(), page.as_ref());
    }

    #[test]
    fn concurrent_disjoint_diffs_merge() {
        // Two writers modify disjoint halves of the same page (false sharing).
        let base = new_page();
        let mut a = base.clone();
        let mut b = base.clone();
        for i in 0..2048 {
            a[i] = 1;
        }
        for i in 2048..4096 {
            b[i] = 2;
        }
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut merged = base.clone();
        da.apply(&mut merged);
        db.apply(&mut merged);
        assert!(merged[..2048].iter().all(|&x| x == 1));
        assert!(merged[2048..].iter().all(|&x| x == 2));
    }

    #[test]
    fn diff_of_mostly_zero_page_is_small() {
        // This is why TreadMarks sends much less data than PVM in SOR-Zero:
        // pages that stay zero produce (nearly) empty diffs.
        let twin = new_page();
        let mut page = new_page();
        page[0] = 1; // only the boundary element changed
        let d = Diff::create(&twin, &page);
        assert!(d.encoded_len() < 32);
        assert!(d.encoded_len() < PAGE_SIZE / 100);
    }

    #[test]
    fn fully_rewritten_page_diff_is_page_sized() {
        let twin = new_page();
        let mut page = new_page();
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251 + 1) as u8;
        }
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 1);
        assert!(d.encoded_len() >= PAGE_SIZE);
    }

    /// Deterministic xorshift generator for the equivalence property tests
    /// (no external proptest dependency; failures print the seed).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn assert_equivalent(twin: &[u8], page: &[u8], ctx: &str) {
        let fast = Diff::create(twin, page);
        let reference = Diff::create_reference(twin, page);
        assert_eq!(fast, reference, "word-scan diverges from reference: {ctx}");
        // And applying the fast diff to the twin reconstructs the page.
        let mut rebuilt = twin.to_vec();
        fast.apply(&mut rebuilt);
        assert_eq!(rebuilt, page, "apply does not reconstruct: {ctx}");
    }

    #[test]
    fn word_scan_matches_reference_on_random_sparse_mutations() {
        let mut rng = Rng(0xdead_beef_0bad_cafe);
        for case in 0..200 {
            let mut twin = new_page();
            for b in twin.iter_mut() {
                *b = rng.next() as u8;
            }
            let mut page = twin.clone();
            for _ in 0..rng.below(64) {
                page[rng.below(PAGE_SIZE)] = rng.next() as u8;
            }
            assert_equivalent(&twin, &page, &format!("sparse case {case}"));
        }
    }

    #[test]
    fn word_scan_matches_reference_on_unaligned_run_boundaries() {
        // Runs starting and ending at every offset within a word, including
        // runs that straddle word boundaries and touch the page edges.
        let mut rng = Rng(0x1234_5678_9abc_def1);
        for case in 0..300 {
            let mut twin = new_page();
            for b in twin.iter_mut() {
                *b = rng.next() as u8;
            }
            let mut page = twin.clone();
            for _ in 0..(1 + rng.below(8)) {
                let start = rng.below(PAGE_SIZE);
                let len = 1 + rng.below(97); // deliberately not word-multiples
                for i in start..(start + len).min(PAGE_SIZE) {
                    // Guarantee the byte differs (xor with a nonzero value).
                    page[i] ^= 1 + (rng.next() as u8 & 0x7f);
                }
            }
            assert_equivalent(&twin, &page, &format!("unaligned case {case}"));
        }
    }

    #[test]
    fn word_scan_matches_reference_on_adversarial_word_patterns() {
        // Words in which only some bytes differ — the SWAR all-bytes-differ
        // test must not overrun the run boundary — plus interior bytes that
        // revert to the twin value mid-run.
        let mut twin = new_page();
        for (i, b) in twin.iter_mut().enumerate() {
            *b = (i % 256) as u8;
        }
        for hole in 0..16 {
            let mut page = twin.clone();
            for i in 64..192 {
                page[i] ^= 0xff;
            }
            // Punch an equal-byte hole at an arbitrary in-word position.
            page[100 + hole] = twin[100 + hole];
            assert_equivalent(&twin, &page, &format!("hole at {}", 100 + hole));
        }
        // Edge bytes of the page.
        let mut page = twin.clone();
        page[0] ^= 1;
        page[PAGE_SIZE - 1] ^= 1;
        assert_equivalent(&twin, &page, "page edges");
        // Full rewrite (single page-sized run).
        let mut page = twin.clone();
        for b in page.iter_mut() {
            *b ^= 0x55;
        }
        assert_equivalent(&twin, &page, "full rewrite");
    }

    #[test]
    fn reverting_to_twin_value_is_not_in_diff() {
        let mut twin = new_page();
        twin[7] = 7;
        let mut page = twin.clone();
        page[7] = 9;
        page[7] = 7; // reverted before the interval closed
        let d = Diff::create(&twin, &page);
        assert!(d.is_empty());
    }
}

//! Pages, twins, and run-length-encoded diffs — the multiple-writer protocol.
//!
//! TreadMarks allows two or more processors to modify their own copy of a
//! shared page simultaneously.  Before the first write of an interval the
//! writer saves a *twin* (a copy of the page); at the end of the interval the
//! twin is compared to the current contents and the differences are encoded
//! as a *diff*, a run-length encoding of the modified bytes.  Diffs from
//! concurrent writers touch disjoint bytes (for correct programs) and are
//! merged by applying them all, which is what eliminates most of the cost of
//! false sharing relative to a single-writer protocol.

use cluster::config::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Index of a shared page within the shared address space.
pub type PageId = u32;

/// One modified run within a page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: u16,
    /// The new bytes.
    pub data: Vec<u8>,
}

/// A run-length encoding of the modifications made to one page during one
/// interval, produced by comparing the page to its twin.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff {
    /// The modified runs, in increasing offset order, non-overlapping.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff between `twin` (the pre-modification copy) and
    /// `current` (the page as modified during the interval).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not both exactly one page long.
    pub fn create(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < PAGE_SIZE {
            if twin[i] != current[i] {
                let start = i;
                while i < PAGE_SIZE && twin[i] != current[i] {
                    i += 1;
                }
                runs.push(DiffRun {
                    offset: start as u16,
                    data: current[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// Apply this diff to `page`.
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "page must be one page");
        for run in &self.runs {
            let start = run.offset as usize;
            page[start..start + run.data.len()].copy_from_slice(&run.data);
        }
    }

    /// True if the twin and the page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified bytes carried by the diff.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Size of the diff on the wire: per-run header (offset + length, 4 bytes)
    /// plus the modified bytes, plus a small diff header.
    pub fn encoded_len(&self) -> usize {
        8 + self.runs.iter().map(|r| 4 + r.data.len()).sum::<usize>()
    }
}

/// A freshly allocated, zero-filled page.
pub fn new_page() -> Box<[u8]> {
    vec![0u8; PAGE_SIZE].into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Box<[u8]> {
        let mut p = new_page();
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let twin = new_page();
        let page = new_page();
        let d = Diff::create(&twin, &page);
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
    }

    #[test]
    fn single_run_is_detected() {
        let twin = new_page();
        let page = page_with(&[(100, 1), (101, 2), (102, 3)]);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 100);
        assert_eq!(d.runs[0].data, vec![1, 2, 3]);
    }

    #[test]
    fn multiple_runs_are_separated_by_unchanged_bytes() {
        let twin = new_page();
        let page = page_with(&[(0, 9), (1, 9), (500, 7), (4095, 5)]);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 3);
        assert_eq!(d.modified_bytes(), 4);
    }

    #[test]
    fn apply_reconstructs_the_modified_page() {
        let twin = page_with(&[(10, 42), (20, 43)]);
        let mut page = twin.clone();
        page[10] = 1;
        page[3000] = 99;
        let d = Diff::create(&twin, &page);
        let mut other_copy = twin.clone();
        d.apply(&mut other_copy);
        assert_eq!(other_copy.as_ref(), page.as_ref());
    }

    #[test]
    fn concurrent_disjoint_diffs_merge() {
        // Two writers modify disjoint halves of the same page (false sharing).
        let base = new_page();
        let mut a = base.clone();
        let mut b = base.clone();
        for i in 0..2048 {
            a[i] = 1;
        }
        for i in 2048..4096 {
            b[i] = 2;
        }
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut merged = base.clone();
        da.apply(&mut merged);
        db.apply(&mut merged);
        assert!(merged[..2048].iter().all(|&x| x == 1));
        assert!(merged[2048..].iter().all(|&x| x == 2));
    }

    #[test]
    fn diff_of_mostly_zero_page_is_small() {
        // This is why TreadMarks sends much less data than PVM in SOR-Zero:
        // pages that stay zero produce (nearly) empty diffs.
        let twin = new_page();
        let mut page = new_page();
        page[0] = 1; // only the boundary element changed
        let d = Diff::create(&twin, &page);
        assert!(d.encoded_len() < 32);
        assert!(d.encoded_len() < PAGE_SIZE / 100);
    }

    #[test]
    fn fully_rewritten_page_diff_is_page_sized() {
        let twin = new_page();
        let mut page = new_page();
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251 + 1) as u8;
        }
        let d = Diff::create(&twin, &page);
        assert_eq!(d.runs.len(), 1);
        assert!(d.encoded_len() >= PAGE_SIZE);
    }

    #[test]
    fn reverting_to_twin_value_is_not_in_diff() {
        let mut twin = new_page();
        twin[7] = 7;
        let mut page = twin.clone();
        page[7] = 9;
        page[7] = 7; // reverted before the interval closed
        let d = Diff::create(&twin, &page);
        assert!(d.is_empty());
    }
}

//! The TreadMarks process runtime: synchronization primitives, fault
//! handling, and the request service loop.
//!
//! A [`Tmk`] handle wraps one [`cluster::Proc`] and drives the protocol state
//! machine in [`crate::state::DsmState`].  The public interface mirrors the
//! TreadMarks API used by the paper's applications:
//!
//! * `Tmk_malloc`      → [`Tmk::malloc`] (in `heap.rs`)
//! * `Tmk_barrier(i)`  → [`Tmk::barrier`]
//! * `Tmk_lock_acquire(i)` / `Tmk_lock_release(i)` → [`Tmk::lock_acquire`] /
//!   [`Tmk::lock_release`]
//! * shared reads and writes → the typed accessors in `heap.rs`
//! * `Tmk_exit`        → [`Tmk::exit`]
//!
//! Requests from other processes (lock acquires to a manager or last holder,
//! diff requests, barrier arrivals) are served whenever this process is
//! blocked waiting for a reply, and replies to them depart at the virtual
//! time the request arrived plus a small service cost — the interrupt-driven
//! (SIGIO) request handling of the real system.

use crate::proto::*;
use crate::protocol::{ConsistencyProtocol, ProtocolKind};
use crate::race;
use crate::state::DsmState;
use crate::stats::TmkStats;
use crate::vc::VectorClock;
use crate::{
    DEFAULT_GC_INTERVAL_THRESHOLD, DEFAULT_HEAP_BYTES, REQUEST_SERVICE_COST, SYNC_OP_COST,
};
use cluster::{Message, Proc, SpanCat};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A TreadMarks endpoint bound to one simulated process.
///
/// # Example
///
/// Two processes increment a lock-protected shared counter; every shared
/// access goes through the DSM's page-based coherence protocol:
///
/// ```
/// use cluster::{Cluster, ClusterConfig};
/// use treadmarks::Tmk;
///
/// let report = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
///     let tmk = Tmk::new(p);
///     let counter = tmk.malloc(8);
///     tmk.barrier(0);
///     for _ in 0..3 {
///         tmk.lock_acquire(0);
///         let v = tmk.read_i64(counter);
///         tmk.write_i64(counter, v + 1);
///         tmk.lock_release(0);
///     }
///     tmk.barrier(1);
///     let total = tmk.read_i64(counter);
///     tmk.exit();
///     total
/// });
/// // Both processes saw all six increments.
/// assert!(report.results.iter().all(|&v| v == 6));
/// ```
pub struct Tmk<'a> {
    proc: &'a Proc,
    pub(crate) st: RefCell<DsmState>,
    /// The coherence-protocol backend driving this endpoint's policy.
    pub(crate) backend: &'static dyn ConsistencyProtocol,
    /// Next barrier episode number on this process.
    barrier_epoch: Cell<u32>,
    /// Barrier-manager state: arrivals per episode (source, source clock).
    arrivals: RefCell<BTreeMap<u32, Vec<(usize, VectorClock)>>>,
    /// Virtual time at which each lock was last released here (prevents a
    /// grant from appearing to depart while the lock was still held).
    lock_release_time: RefCell<BTreeMap<u32, f64>>,
    /// Replies that arrived while a nested wait was looking for a different
    /// tag (e.g. a diff response arriving while a flush triggered by serving
    /// a lock request awaits its acknowledgement).
    stashed: RefCell<Vec<Message>>,
    /// Exit-protocol counter at process 0.
    done_count: Cell<usize>,
    /// Cluster-wide interval-count growth that triggers barrier-time GC.
    gc_threshold: Cell<u64>,
    /// `vc.sum()` at the last garbage collection.
    last_gc_sum: Cell<u64>,
    /// Reusable raw-byte staging buffer for the typed slice accessors
    /// (see `heap.rs`), so a hot loop of `read_f64_slice` calls does not
    /// allocate per call.
    pub(crate) scratch: RefCell<Vec<u8>>,
    /// Happens-before race recorder (see [`crate::race`]); attached by
    /// [`Tmk::enable_racecheck`], absent in ordinary runs.
    race: RefCell<Option<race::Recorder>>,
    /// Fast-path mirror of `race.is_some()`, checked on every shared access.
    race_on: Cell<bool>,
}

impl<'a> Tmk<'a> {
    /// Create a DSM endpoint with the default shared heap size, running the
    /// default (LRC) coherence protocol.
    pub fn new(proc: &'a Proc) -> Self {
        Self::with_heap_and_protocol(proc, DEFAULT_HEAP_BYTES, ProtocolKind::default())
    }

    /// Create a DSM endpoint with a shared heap of `heap_bytes` bytes,
    /// running the default (LRC) coherence protocol.
    pub fn with_heap(proc: &'a Proc, heap_bytes: usize) -> Self {
        Self::with_heap_and_protocol(proc, heap_bytes, ProtocolKind::default())
    }

    /// Create a DSM endpoint with the default shared heap size, running the
    /// given coherence protocol.
    pub fn with_protocol(proc: &'a Proc, protocol: ProtocolKind) -> Self {
        Self::with_heap_and_protocol(proc, DEFAULT_HEAP_BYTES, protocol)
    }

    /// Create a DSM endpoint with a shared heap of `heap_bytes` bytes,
    /// running the given coherence protocol.
    pub fn with_heap_and_protocol(
        proc: &'a Proc,
        heap_bytes: usize,
        protocol: ProtocolKind,
    ) -> Self {
        Tmk {
            proc,
            st: RefCell::new(DsmState::new_with(
                proc.id(),
                proc.nprocs(),
                heap_bytes,
                protocol,
            )),
            backend: protocol.backend(),
            barrier_epoch: Cell::new(0),
            arrivals: RefCell::new(BTreeMap::new()),
            lock_release_time: RefCell::new(BTreeMap::new()),
            stashed: RefCell::new(Vec::new()),
            done_count: Cell::new(0),
            gc_threshold: Cell::new(DEFAULT_GC_INTERVAL_THRESHOLD),
            last_gc_sum: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
            race: RefCell::new(None),
            race_on: Cell::new(false),
        }
    }

    /// Attach a happens-before race recorder sharing the run-wide clock
    /// table `table` (see [`crate::race`]).  Must be called before the
    /// first shared access or synchronization operation, identically on
    /// every process.  Recording never advances the virtual clock or sends
    /// a message, so the run's reported times, counters and checksums are
    /// bit-identical to an unrecorded run.
    pub fn enable_racecheck(&self, table: Arc<race::SyncClocks>) {
        *self.race.borrow_mut() = Some(race::Recorder::new(self.id(), self.nprocs(), table));
        self.race_on.set(true);
    }

    /// Detach the race recorder and return this rank's access log, to be
    /// fed to [`race::analyze`] together with the other ranks' logs.
    /// Returns `None` if [`Tmk::enable_racecheck`] was never called.
    pub fn take_race_log(&self) -> Option<race::RaceLog> {
        self.race_on.set(false);
        self.race.borrow_mut().take().map(race::Recorder::finish)
    }

    /// Record a shared access with the race recorder, if one is attached.
    #[inline]
    pub(crate) fn race_record(&self, kind: race::AccessKind, addr: usize, len: usize) {
        if !self.race_on.get() || len == 0 {
            return;
        }
        let now = cluster::obs::ns(self.proc.clock());
        if let Some(r) = self.race.borrow_mut().as_mut() {
            r.record(kind, addr, len, now);
        }
    }

    /// Run a synchronization-edge hook on the race recorder, if attached.
    #[inline]
    fn race_hook(&self, f: impl FnOnce(&mut race::Recorder)) {
        if !self.race_on.get() {
            return;
        }
        if let Some(r) = self.race.borrow_mut().as_mut() {
            f(r);
        }
    }

    /// Set the barrier-time garbage-collection trigger: a GC runs at the
    /// first barrier at which the cluster-wide interval count has grown by
    /// at least `threshold` since the previous collection.  `u64::MAX`
    /// disables GC.  Must be called identically on every process (SPMD, like
    /// every other configuration of a run) before the first barrier.
    pub fn set_gc_threshold(&self, threshold: u64) {
        self.gc_threshold.set(threshold);
    }

    /// Rank of this process.
    pub fn id(&self) -> usize {
        self.proc.id()
    }

    /// The coherence protocol this endpoint runs.
    pub fn protocol(&self) -> ProtocolKind {
        self.st.borrow().protocol
    }

    /// Number of processes sharing the memory.
    pub fn nprocs(&self) -> usize {
        self.proc.nprocs()
    }

    /// The underlying cluster process handle.
    pub fn proc(&self) -> &Proc {
        self.proc
    }

    /// Runtime statistics accumulated so far.
    pub fn stats(&self) -> TmkStats {
        self.st.borrow().stats.clone()
    }

    // ----------------------------------------------------------------- locks

    /// Acquire lock `id`, blocking until it is granted.
    ///
    /// If this process already holds the lock token (it was the last holder
    /// and nobody has requested the lock since), the acquire is local and
    /// sends no messages.  Otherwise a request is sent to the lock's manager,
    /// which forwards it to the last requester; the grant piggybacks the
    /// write notices of all intervals this process has not yet seen, and the
    /// corresponding pages are invalidated.
    pub fn lock_acquire(&self, id: u32) {
        self.proc.compute(SYNC_OP_COST);
        let have_token = self.st.borrow_mut().lock_state_mut(id).have_token;
        if have_token {
            // Serve requests that have already arrived before taking the
            // local fast path: a worker repeatedly reacquiring an
            // uncontended lock (e.g. polling a task queue) never blocks, and
            // without this interrupt-style service its peers' forwarded
            // acquires would sit in the mailbox forever (livelock).  Serving
            // may hand the token away, in which case we fall through to the
            // remote path below.
            self.drain_requests();
        }
        let manager = {
            let mut st = self.st.borrow_mut();
            let ls = st.lock_state_mut(id);
            if ls.have_token {
                ls.in_cs = true;
                st.stats.local_lock_acquires += 1;
                None
            } else {
                st.stats.remote_lock_acquires += 1;
                Some(st.lock_manager(id))
            }
        };
        let Some(manager) = manager else {
            // Local reacquire: the published clock (if any) was last written
            // by this process's own release, so the join is a no-op, but the
            // segment boundary and context still apply.
            self.race_hook(|r| r.on_lock_acquired(id));
            return;
        };
        // The remote path from request to applied grant is the lock-acquire
        // latency of the metrics layer (one span per remote acquire, so the
        // span count cross-checks against `remote_lock_acquires`).
        self.proc.span_begin(SpanCat::LockWait, id as u64);
        let payload = {
            let st = self.st.borrow();
            encode_lock_request(id, self.id(), &st.vc)
        };
        if manager == self.id() {
            // We are the manager but do not hold the token: forward straight
            // to the last requester without a message to ourselves.
            let prev = {
                let mut st = self.st.borrow_mut();
                let ms = st.lock_manager_state_mut(id);
                let prev = ms.last_requester;
                ms.last_requester = self.id();
                prev
            };
            assert_ne!(prev, self.id(), "manager without token must know a holder");
            self.proc.send(prev, TAG_LOCK_FWD, payload);
        } else {
            self.proc.send(manager, TAG_LOCK_ACQ, payload);
        }
        let reply = self.wait_reply(TAG_LOCK_GRANT);
        let (lock, granter_vc, records) = decode_lock_grant(reply.payload, self.nprocs());
        assert_eq!(lock, id, "grant for the wrong lock");
        {
            let mut st = self.st.borrow_mut();
            st.apply_interval_records(&records);
            debug_assert!(st.vc.dominates(&granter_vc));
            let ls = st.lock_state_mut(id);
            ls.have_token = true;
            ls.in_cs = true;
        }
        self.backend.at_acquire(self);
        // Analysis acquire edge: join the clock published by the releaser
        // whose token we now hold (the grant message was received above, so
        // the publication is visible).
        self.race_hook(|r| r.on_lock_acquired(id));
        self.proc.span_end(SpanCat::LockWait);
    }

    /// Release lock `id`.
    ///
    /// The release itself sends no messages; if another process's request has
    /// been forwarded here in the meantime, the token (and the write notices
    /// the requester lacks) are handed over now.
    pub fn lock_release(&self, id: u32) {
        self.proc.compute(SYNC_OP_COST);
        // Analysis release edge, *before* any grant can be sent (here or
        // later from `handle_forwarded`): publish the clock covering the
        // critical section, then advance past it.  Taking the edge at grant
        // time instead would let the anachronistically-served grant cover
        // accesses made after this release.
        self.race_hook(|r| r.on_lock_release(id));
        if self.nprocs() > 1 {
            self.backend.at_release(self);
        }
        let pending = {
            let mut st = self.st.borrow_mut();
            st.stats.lock_releases += 1;
            let ls = st.lock_state_mut(id);
            assert!(ls.in_cs, "releasing lock {id} that is not held");
            ls.in_cs = false;
            ls.pending.pop_front()
        };
        self.lock_release_time
            .borrow_mut()
            .insert(id, self.proc.clock());
        if let Some((requester, req_vc)) = pending {
            self.grant_lock(id, requester, &req_vc, self.proc.clock());
        }
    }

    // -------------------------------------------------------------- barriers

    /// Wait until every process has arrived at this barrier.
    ///
    /// Barriers have a centralised manager (process 0); arrival messages
    /// carry the write notices the manager lacks, and the release messages
    /// carry the notices each departing process lacks, for a total of
    /// `2 * (nprocs - 1)` messages per barrier.
    pub fn barrier(&self, index: u32) {
        self.barrier_inner(index);
        self.maybe_gc();
    }

    fn barrier_inner(&self, index: u32) {
        // One span per episode, entry to release (the full barrier cost,
        // including the interval close the episode forces); its duration is
        // the per-process barrier skew the metrics layer reports.
        self.proc.span_begin(SpanCat::BarrierWait, index as u64);
        self.proc.compute(SYNC_OP_COST);
        let epoch = self.barrier_epoch.get();
        self.barrier_epoch.set(epoch + 1);
        let n = self.nprocs();
        if n == 1 {
            // A lone process never re-protects pages or makes diffs (nobody
            // can request them), so intervals need not close at all — the
            // real system's single-process execution has no write traps
            // after the first touch of each page.
            self.st.borrow_mut().stats.barriers += 1;
            self.race_hook(|r| r.on_barrier_local(index));
            self.proc.span_end(SpanCat::BarrierWait);
            return;
        }
        self.backend.at_barrier(self);
        {
            self.st.borrow_mut().stats.barriers += 1;
        }
        if self.id() == 0 {
            // Manager: collect the other processes' arrivals (serving any
            // other requests that show up while waiting), then release.
            loop {
                let got = self.arrivals.borrow().get(&epoch).map_or(0, |v| v.len());
                if got == n - 1 {
                    break;
                }
                let m = self.proc.recv_any();
                self.dispatch(m);
            }
            let arrived = self.arrivals.borrow_mut().remove(&epoch).unwrap();
            // Analysis barrier edge: every worker published its clock
            // before sending the arrival just collected, so all n-1
            // publications are visible; merge them before any release
            // message can carry the episode forward.
            self.race_hook(|r| r.on_barrier_manager(index, n - 1));
            for (src, src_vc) in arrived {
                self.proc.compute(SYNC_OP_COST);
                let payload = self
                    .st
                    .borrow_mut()
                    .encode_sync_not_covered_by(epoch, &src_vc);
                self.proc.send(src, TAG_BARRIER_RELEASE, payload);
            }
            let mut st = self.st.borrow_mut();
            let vc = st.vc.clone();
            st.last_barrier_vc = vc;
        } else {
            let payload = self.st.borrow_mut().encode_barrier_arrival(epoch);
            // Analysis arrival edge: publish before the arrival message so
            // the manager's merge (which runs only after receiving it) sees
            // this clock.
            self.race_hook(|r| r.on_barrier_publish());
            self.proc.send(0, TAG_BARRIER_ARRIVE, payload);
            let reply = self.wait_reply(TAG_BARRIER_RELEASE);
            let (got_epoch, merged_vc, records) = decode_barrier(reply.payload, n);
            assert_eq!(got_epoch, epoch, "barrier release for the wrong episode");
            {
                let mut st = self.st.borrow_mut();
                st.apply_interval_records(&records);
                st.vc.merge(&merged_vc);
                let vc = st.vc.clone();
                st.last_barrier_vc = vc;
            }
            // Analysis release edge: the manager merged and published
            // before sending the release message received above.
            self.race_hook(|r| r.on_barrier_done(index));
        }
        self.proc.span_end(SpanCat::BarrierWait);
    }

    // ----------------------------------------------------------- termination

    /// Quiesce the runtime: every process keeps serving requests until all
    /// processes have finished their work.  Shared memory must not be
    /// accessed after `exit`.
    pub fn exit(&self) {
        // Every stashed reply belongs to some wait that retrieves it before
        // its caller returns; a leftover here means a reply was sent that
        // nobody ever waited for — a protocol bug that would otherwise be
        // silently swallowed.
        debug_assert!(
            self.stashed.borrow().is_empty(),
            "process {} exits with unconsumed replies: {:?}",
            self.id(),
            self.stashed
                .borrow()
                .iter()
                .map(|m| (m.src, m.tag))
                .collect::<Vec<_>>()
        );
        let n = self.nprocs();
        if n == 1 {
            return;
        }
        self.proc.span_begin(SpanCat::Exit, 0);
        if self.id() == 0 {
            while self.done_count.get() < n - 1 {
                let m = self.proc.recv_any();
                self.dispatch(m);
            }
            for dst in 1..n {
                self.proc.send(dst, TAG_TERMINATE, bytes::Bytes::new());
            }
        } else {
            self.proc.send(0, TAG_DONE, bytes::Bytes::new());
            loop {
                let m = self.proc.recv_any();
                if m.tag == TAG_TERMINATE {
                    break;
                }
                self.dispatch(m);
            }
        }
        self.proc.span_end(SpanCat::Exit);
    }

    // ------------------------------------------------------------- internals

    /// Close the current interval (if any page is dirty) and hand it to the
    /// protocol backend's [`ConsistencyProtocol::publish_interval`] — under
    /// the home-based protocol, that flushes the diffs to their remote
    /// homes before returning.
    ///
    /// No diff-creation cost is charged here: the real system creates diffs
    /// lazily, so under LRC the page+twin scan is charged when a diff is
    /// first served, and under HLRC when it is flushed.
    pub(crate) fn close_and_publish(&self) {
        let closed = self.st.borrow_mut().close_interval();
        if let Some(closed) = closed {
            self.backend.publish_interval(self, closed);
        }
    }

    /// Serve every protocol request that has *already* arrived — by this
    /// process's virtual clock, which is what the transport's causality
    /// gate enforces — without blocking: the SIGIO-style request service of
    /// the real system, invoked at synchronization entry points so that a
    /// process which never blocks (e.g. a worker polling a task queue it
    /// holds the lock token for) still serves its peers' requests.
    /// Requests still in this process's virtual future are served once its
    /// clock catches up (the worker keeps computing) or when it next blocks
    /// in a receive.  A non-request message (a reply racing ahead of its
    /// wait) is stashed for the wait that expects it.
    fn drain_requests(&self) {
        while let Some(m) = self.proc.try_recv_interrupt() {
            if is_request_tag(m.tag) {
                self.handle_request(m);
            } else {
                self.stashed.borrow_mut().push(m);
            }
        }
    }

    /// Block until a message with `want_tag` arrives, serving every protocol
    /// request that shows up in the meantime.
    ///
    /// A reply that is *not* the awaited tag is stashed rather than
    /// rejected: serving a request can itself initiate a nested wait (an
    /// HLRC flush triggered by granting a lock awaits its acknowledgement),
    /// and the outer wait's reply may arrive during the nested one.
    pub(crate) fn wait_reply(&self, want_tag: u32) -> Message {
        // The shared borrow must end before the mutable one below: in
        // edition 2021 an `if let` scrutinee's temporary lives to the end
        // of the body, so the position lookup is a separate statement.
        let stashed_pos = self.stashed.borrow().iter().position(|m| m.tag == want_tag);
        if let Some(pos) = stashed_pos {
            return self.stashed.borrow_mut().remove(pos);
        }
        loop {
            let m = self.proc.recv_any();
            if m.tag == want_tag {
                return m;
            }
            if is_request_tag(m.tag) {
                self.handle_request(m);
            } else {
                self.stashed.borrow_mut().push(m);
            }
        }
    }

    /// Handle a message that may be either a request or a stray reply.
    fn dispatch(&self, m: Message) {
        if is_request_tag(m.tag) {
            self.handle_request(m);
        } else {
            panic!(
                "process {} got unexpected non-request tag {}",
                self.id(),
                m.tag
            );
        }
    }

    /// Serve one protocol request.  Replies depart at the request's arrival
    /// time plus the service cost (interrupt-style service); the CPU cost is
    /// charged to this process as stolen cycles.
    pub(crate) fn handle_request(&self, m: Message) {
        let n = self.nprocs();
        match m.tag {
            TAG_LOCK_ACQ => {
                self.proc.compute(REQUEST_SERVICE_COST);
                let (lock, requester, req_vc) = decode_lock_request(m.payload.clone(), n);
                let prev = {
                    let mut st = self.st.borrow_mut();
                    let ms = st.lock_manager_state_mut(lock);
                    let prev = ms.last_requester;
                    ms.last_requester = requester;
                    prev
                };
                if prev == self.id() {
                    self.handle_forwarded(lock, requester, req_vc, m.arrival);
                } else {
                    assert_ne!(prev, requester, "requester cannot be the last holder");
                    self.proc.send_at(
                        prev,
                        TAG_LOCK_FWD,
                        m.payload,
                        m.arrival + REQUEST_SERVICE_COST,
                    );
                }
            }
            TAG_LOCK_FWD => {
                self.proc.compute(REQUEST_SERVICE_COST);
                let (lock, requester, req_vc) = decode_lock_request(m.payload, n);
                self.handle_forwarded(lock, requester, req_vc, m.arrival);
            }
            TAG_BARRIER_ARRIVE => {
                assert_eq!(self.id(), 0, "only process 0 manages barriers");
                self.proc.compute(REQUEST_SERVICE_COST);
                let (epoch, src_vc, records) = decode_barrier(m.payload, n);
                self.st.borrow_mut().apply_interval_records(&records);
                self.arrivals
                    .borrow_mut()
                    .entry(epoch)
                    .or_default()
                    .push((m.src, src_vc));
            }
            TAG_DONE => {
                assert_eq!(self.id(), 0, "only process 0 collects DONE messages");
                self.done_count.set(self.done_count.get() + 1);
            }
            // Everything else belongs to the configured protocol backend
            // (diff requests under LRC, flushes and page fetches under
            // HLRC, the ownership protocol under SC).
            other => {
                if !self.backend.serve_request(self, m) {
                    panic!("not a request tag: {other}");
                }
            }
        }
    }

    /// Handle a (possibly forwarded) lock acquire directed at this process.
    fn handle_forwarded(&self, lock: u32, requester: usize, req_vc: VectorClock, arrival: f64) {
        assert_ne!(requester, self.id(), "a process never forwards to itself");
        let can_grant = {
            let mut st = self.st.borrow_mut();
            let ls = st.lock_state_mut(lock);
            if ls.have_token && !ls.in_cs {
                true
            } else {
                ls.pending.push_back((requester, req_vc.clone()));
                false
            }
        };
        if can_grant {
            let released_at = self
                .lock_release_time
                .borrow()
                .get(&lock)
                .copied()
                .unwrap_or(0.0);
            let depart = (arrival + REQUEST_SERVICE_COST).max(released_at);
            self.grant_lock(lock, requester, &req_vc, depart);
        }
    }

    /// Hand the lock token to `requester`, piggybacking the write notices of
    /// every interval the requester has not seen.
    fn grant_lock(&self, lock: u32, requester: usize, req_vc: &VectorClock, depart: f64) {
        // Handing the token over is a release edge: the open interval must
        // be published before the grant departs.
        self.backend.at_release(self);
        let payload = {
            let mut st = self.st.borrow_mut();
            let ls = st.lock_state_mut(lock);
            assert!(ls.have_token && !ls.in_cs, "granting a lock we cannot give");
            ls.have_token = false;
            st.encode_sync_not_covered_by(lock, req_vc)
        };
        self.proc
            .send_at(requester, TAG_LOCK_GRANT, payload, depart);
    }

    /// Barrier-time garbage collection, the paper's own GC point.
    ///
    /// Triggered — identically on every process, because the clocks merge at
    /// the barrier that just completed — when the cluster-wide interval
    /// count has grown past the configured threshold since the last
    /// collection.  The protocol backend's
    /// [`ConsistencyProtocol::prepare_gc`] first makes the collection safe:
    /// LRC validates every invalid page and runs an internal sync barrier
    /// ([`Tmk::gc_sync_barrier`]) so no peer's in-flight diff request can
    /// name a collected diff; HLRC retains no diffs and page homes stay
    /// current, so the interval logs are truncated directly.
    fn maybe_gc(&self) {
        if self.nprocs() == 1 {
            return;
        }
        let sum = self.st.borrow().vc.sum();
        if sum - self.last_gc_sum.get() < self.gc_threshold.get() {
            return;
        }
        // The GC span covers preparation (which may fault pages in and run
        // the internal sync barrier — those nest as their own spans) plus
        // the collection itself.
        self.proc.span_begin(SpanCat::Gc, sum);
        self.backend.prepare_gc(self);
        let horizon = self.st.borrow().vc.clone();
        debug_assert_eq!(horizon.sum(), sum, "GC must not create intervals");
        self.st.borrow_mut().gc(&horizon);
        self.last_gc_sum.set(sum);
        self.proc.span_end(SpanCat::Gc);
    }

    /// The internal synchronization barrier of a protocol's GC preparation
    /// (an out-of-band episode that exchanges no application state beyond
    /// the clocks).
    pub(crate) fn gc_sync_barrier(&self) {
        self.barrier_inner(u32::MAX);
    }
}

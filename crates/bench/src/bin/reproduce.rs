//! Regenerate the tables and figures of the paper, under a selectable DSM
//! coherence protocol, fanning the independent runs out across cores.
//!
//! ```text
//! cargo run -p bench --release --bin reproduce                       # both protocols, everything
//! cargo run -p bench --release --bin reproduce -- --protocol hlrc   # HLRC backend only
//! cargo run -p bench --release --bin reproduce -- --protocol lrc   # the paper's protocol only
//! cargo run -p bench --release --bin reproduce -- --full            # paper-scale inputs
//! cargo run -p bench --release --bin reproduce -- --table1
//! cargo run -p bench --release --bin reproduce -- --table2
//! cargo run -p bench --release --bin reproduce -- --figure water-288
//! cargo run -p bench --release --bin reproduce -- --json            # machine-readable dump
//! cargo run -p bench --release --bin reproduce -- --jobs 1          # serial execution
//! cargo run -p bench --release --bin reproduce -- --bench-out BENCH_PR3.json
//! ```
//!
//! Every run of the reproduction matrix is an independent deterministic
//! simulation, so the harness computes the whole requested matrix first —
//! on `--jobs N` worker threads (default: one per core) — and renders the
//! output from the completed matrix afterwards.  Results are stored under
//! their matrix keys, never in completion order, so stdout and JSON are
//! **byte-identical for every `--jobs` value**; the determinism suite and
//! the CI `perf-smoke` job assert exactly that.
//!
//! `--json` replaces the human-readable tables with a machine-readable dump
//! of every run (all workloads at 1/2/4/8 processes under each selected
//! system), with every virtual time printed both as a decimal and as its
//! raw f64 bit pattern.  CI runs the dump twice and `diff`s the outputs.
//!
//! `--bench-out FILE` additionally writes an engine-throughput report: the
//! deterministic totals of the matrix (message counts, virtual seconds)
//! followed by the wall-clock timing of *this* execution (events per
//! second, virtual seconds simulated per wall second, worker count).  The
//! `deterministic` section is byte-stable across runs and job counts; the
//! `timing` section is this machine's measurement.
//!
//! Output is plain text shaped like the paper's tables: Table 1 (sequential
//! times and problem sizes), one speedup series per figure (each selected
//! DSM protocol and PVM at 1–8 processors), and Table 2 (messages and
//! kilobytes at 8 processors under each system), followed — for TreadMarks
//! runs — by the per-protocol runtime counters (faults, diff or page
//! traffic, flushes) that explain the message counts.

use apps::runner::System;
use apps::Workload;
use bench::{exec, problem_size, run_matrix, run_record_json, Preset, RunKey, RunMatrix};
use treadmarks::ProtocolKind;

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn table1(matrix: &RunMatrix) {
    println!(
        "\nTable 1: Sequential Time of Applications ({:?} preset)",
        matrix.preset
    );
    println!(
        "{:<12} {:<34} {:>12}",
        "Program", "Problem Size", "Time (s)"
    );
    for w in Workload::all() {
        let seq = matrix.sequential(w);
        println!(
            "{:<12} {:<34} {:>12.2}",
            w.name(),
            problem_size(w, matrix.preset),
            seq.time
        );
    }
}

fn figure(matrix: &RunMatrix, w: Workload, max_procs: usize, systems: &[System]) {
    let seq = matrix.sequential(w);
    println!(
        "\nFigure {}: {} speedups (sequential time {:.2}s)",
        w.figure(),
        w.name(),
        seq.time
    );
    print!("{:>6}", "procs");
    for sys in systems {
        print!(" {sys:>12}");
    }
    println!();
    for n in 1..=max_procs {
        for &sys in systems {
            let run = matrix.run(w, sys, n);
            assert!(
                (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                "{}: {} checksum mismatch at {n} processes",
                w.name(),
                run.system
            );
        }
        print!("{n:>6}");
        for &sys in systems {
            print!(" {:>12.2}", matrix.run(w, sys, n).speedup(seq.time));
        }
        println!();
    }
}

fn table2(matrix: &RunMatrix, procs: usize, systems: &[System]) {
    println!(
        "\nTable 2: Messages and Data at {procs} Processors ({:?} preset)",
        matrix.preset
    );
    print!("{:<12}", "Program");
    for sys in systems {
        print!(" {:>14} {:>14}", format!("{sys} msgs"), format!("{sys} KB"));
    }
    println!();
    let mut protocol_lines: Vec<String> = Vec::new();
    for w in Workload::all() {
        print!("{:<12}", w.name());
        for &sys in systems {
            let run = matrix.run(w, sys, procs);
            print!(" {:>14} {:>14.0}", run.messages, run.kilobytes);
            if let (System::TreadMarks(protocol), Some(stats)) = (sys, &run.tmk_stats) {
                protocol_lines.push(format!(
                    "{:<12} {:<5} {:>8} faults {:>8} diff-req {:>8} page-req {:>8} flushes \
                     {:>10} diff-KB {:>10} page-KB",
                    w.name(),
                    protocol.name(),
                    stats.page_faults,
                    stats.diff_requests_sent,
                    stats.page_requests_sent,
                    stats.diff_flushes_sent,
                    (stats.diff_bytes_received / 1024),
                    (stats.page_bytes_fetched / 1024),
                ));
            }
        }
        println!();
    }
    if !protocol_lines.is_empty() {
        println!("\nPer-protocol DSM runtime counters at {procs} processors:");
        for line in protocol_lines {
            println!("  {line}");
        }
    }
}

/// Machine-readable dump of the full reproduction: every workload at
/// 1/2/4/8 processes under each selected system, plus the sequential
/// baselines.  Deterministic execution makes the output byte-stable.
fn json_dump(matrix: &RunMatrix, systems: &[System]) {
    println!("{{");
    println!("  \"preset\": \"{:?}\",", matrix.preset);
    println!("  \"sequential\": [");
    let seqs: Vec<String> = Workload::all()
        .into_iter()
        .map(|w| {
            let seq = matrix.sequential(w);
            format!(
                "    {{\"workload\": \"{}\", \"time\": {}, \"time_bits\": \"{:016x}\", \
                 \"checksum_bits\": \"{:016x}\"}}",
                w.name(),
                seq.time,
                seq.time.to_bits(),
                seq.checksum.to_bits()
            )
        })
        .collect();
    println!("{}", seqs.join(",\n"));
    println!("  ],");
    println!("  \"runs\": [");
    let mut recs = Vec::new();
    for w in Workload::all() {
        for n in [1usize, 2, 4, 8] {
            for &sys in systems {
                recs.push(format!("    {}", run_record_json(w, matrix.run(w, sys, n))));
            }
        }
    }
    println!("{}", recs.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// The engine-throughput report written by `--bench-out`: deterministic
/// matrix totals first (byte-stable across runs and job counts — CI diffs
/// them), wall-clock timing of this execution second.
fn bench_report(matrix: &RunMatrix, jobs: usize, wall_seconds: f64) -> String {
    let mut events = 0u64; // transport messages processed (sent == consumed)
    let mut virtual_seconds = 0.0f64;
    let mut checksum_xor = 0u64;
    for (_, run) in matrix.runs() {
        events += run.proc_stats.iter().map(|s| s.messages_sent).sum::<u64>();
        virtual_seconds += run.time;
        checksum_xor ^= run.checksum.to_bits();
    }
    format!(
        "{{\n  \"preset\": \"{:?}\",\n  \"deterministic\": {{\n    \"runs\": {},\n    \
         \"total_messages\": {},\n    \"total_virtual_seconds\": {},\n    \
         \"total_virtual_seconds_bits\": \"{:016x}\",\n    \"checksum_bits_xor\": \"{:016x}\"\n  }},\n  \
         \"timing\": {{\n    \"jobs\": {},\n    \"wall_seconds\": {:.3},\n    \
         \"events_per_second\": {:.0},\n    \"virtual_seconds_per_wall_second\": {:.2}\n  }}\n}}\n",
        matrix.preset,
        matrix.len(),
        events,
        virtual_seconds,
        virtual_seconds.to_bits(),
        checksum_xor,
        jobs,
        wall_seconds,
        events as f64 / wall_seconds,
        virtual_seconds / wall_seconds,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = if args.iter().any(|a| a == "--full") {
        Preset::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        Preset::Tiny
    } else {
        Preset::Scaled
    };
    let max_procs = 8;

    let wants = |flag: &str| args.iter().any(|a| a == flag);
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };

    for flag in ["--protocol", "--jobs", "--bench-out"] {
        if args.last().map(String::as_str) == Some(flag) {
            eprintln!("{flag} requires a value");
            std::process::exit(1);
        }
    }
    let protocols: Vec<ProtocolKind> = match flag_value("--protocol").map(String::as_str) {
        None | Some("both") | Some("all") => ProtocolKind::all().to_vec(),
        Some(name) => match name.parse() {
            Ok(kind) => vec![kind],
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(1);
            }
        },
    };
    let systems: Vec<System> = protocols
        .iter()
        .map(|&p| System::TreadMarks(p))
        .chain(std::iter::once(System::Pvm))
        .collect();
    let jobs: usize = match flag_value("--jobs") {
        None => exec::default_jobs(),
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs requires a positive integer, got '{v}'");
                std::process::exit(1);
            }
        },
    };
    let bench_out = flag_value("--bench-out").cloned();

    let want_json = wants("--json");
    let figure_arg = flag_value("--figure");
    let run_all = !want_json && !wants("--table1") && !wants("--table2") && figure_arg.is_none();
    let want_table1 = wants("--table1") || run_all;
    let want_table2 = wants("--table2") || run_all;
    // `--json` dumps the full matrix and ignores `--figure`/`--table*`,
    // exactly as it always has.
    let figure_workloads: Vec<Workload> = if want_json || run_all {
        Workload::all().to_vec()
    } else if let Some(name) = figure_arg {
        match workload_by_name(name) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload '{name}'; known workloads:");
                for w in Workload::all() {
                    eprintln!("  {}", w.name());
                }
                std::process::exit(1);
            }
        }
    } else {
        Vec::new()
    };

    // Assemble the requested matrix: sequential baselines plus parallel
    // runs.  (Everything below renders from this precomputed matrix.)
    let mut seq_workloads: Vec<Workload> = Vec::new();
    if want_table1 || want_json {
        seq_workloads.extend(Workload::all());
    }
    seq_workloads.extend(&figure_workloads);
    let mut keys: Vec<RunKey> = Vec::new();
    let proc_counts: &[usize] = if want_json { &[1, 2, 4, 8] } else { &[] };
    for &w in &figure_workloads {
        if want_json {
            for &n in proc_counts {
                for &sys in &systems {
                    keys.push((w, sys, n));
                }
            }
        } else {
            for n in 1..=max_procs {
                for &sys in &systems {
                    keys.push((w, sys, n));
                }
            }
        }
    }
    if want_table2 {
        for w in Workload::all() {
            for &sys in &systems {
                keys.push((w, sys, max_procs));
            }
        }
    }

    let started = std::time::Instant::now();
    let matrix = run_matrix(preset, &seq_workloads, &keys, jobs);
    let wall_seconds = started.elapsed().as_secs_f64();

    if want_json {
        json_dump(&matrix, &systems);
    } else {
        if want_table1 {
            table1(&matrix);
        }
        for &w in &figure_workloads {
            figure(&matrix, w, max_procs, &systems);
        }
        if want_table2 {
            table2(&matrix, max_procs, &systems);
        }
    }

    if let Some(path) = bench_out {
        let report = bench_report(&matrix, jobs, wall_seconds);
        if let Err(err) = std::fs::write(&path, &report) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("bench report written to {path}");
    }
}

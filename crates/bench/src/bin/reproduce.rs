//! Regenerate the tables and figures of the paper.
//!
//! ```text
//! cargo run -p bench --release --bin reproduce            # scaled preset, everything
//! cargo run -p bench --release --bin reproduce -- --full  # paper-scale inputs
//! cargo run -p bench --release --bin reproduce -- --table1
//! cargo run -p bench --release --bin reproduce -- --table2
//! cargo run -p bench --release --bin reproduce -- --figure water-288
//! ```
//!
//! Output is plain text shaped like the paper's tables: Table 1 (sequential
//! times and problem sizes), one speedup series per figure (TreadMarks and
//! PVM at 1–8 processors), and Table 2 (messages and kilobytes at 8
//! processors under each system).

use apps::runner::System;
use apps::Workload;
use bench::{problem_size, run_parallel, run_sequential, Preset};

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn table1(preset: Preset) {
    println!("\nTable 1: Sequential Time of Applications ({preset:?} preset)");
    println!("{:<12} {:<34} {:>12}", "Program", "Problem Size", "Time (s)");
    for w in Workload::all() {
        let seq = run_sequential(w, preset);
        println!(
            "{:<12} {:<34} {:>12.2}",
            w.name(),
            problem_size(w, preset),
            seq.time
        );
    }
}

fn figure(w: Workload, preset: Preset, max_procs: usize) {
    let seq = run_sequential(w, preset);
    println!(
        "\nFigure {}: {} speedups (sequential time {:.2}s)",
        w.figure(),
        w.name(),
        seq.time
    );
    println!("{:>6} {:>12} {:>12}", "procs", "TreadMarks", "PVM");
    for n in 1..=max_procs {
        let t = run_parallel(w, System::TreadMarks, n, preset);
        let m = run_parallel(w, System::Pvm, n, preset);
        assert!(
            (t.checksum - m.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
            "{}: checksum mismatch between systems at {n} processes",
            w.name()
        );
        println!(
            "{:>6} {:>12.2} {:>12.2}",
            n,
            t.speedup(seq.time),
            m.speedup(seq.time)
        );
    }
}

fn table2(preset: Preset, procs: usize) {
    println!("\nTable 2: Messages and Data at {procs} Processors ({preset:?} preset)");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "Program", "TMK msgs", "TMK KB", "PVM msgs", "PVM KB"
    );
    for w in Workload::all() {
        let t = run_parallel(w, System::TreadMarks, procs, preset);
        let m = run_parallel(w, System::Pvm, procs, preset);
        println!(
            "{:<12} {:>14} {:>14.0} {:>14} {:>14.0}",
            w.name(),
            t.messages,
            t.kilobytes,
            m.messages,
            m.kilobytes
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = if args.iter().any(|a| a == "--full") {
        Preset::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        Preset::Tiny
    } else {
        Preset::Scaled
    };
    let max_procs = 8;

    let wants = |flag: &str| args.iter().any(|a| a == flag);
    let figure_arg = args
        .iter()
        .position(|a| a == "--figure")
        .and_then(|i| args.get(i + 1));

    let run_all = !wants("--table1") && !wants("--table2") && figure_arg.is_none();

    if wants("--table1") || run_all {
        table1(preset);
    }
    if let Some(name) = figure_arg {
        match workload_by_name(name) {
            Some(w) => figure(w, preset, max_procs),
            None => {
                eprintln!("unknown workload '{name}'; known workloads:");
                for w in Workload::all() {
                    eprintln!("  {}", w.name());
                }
                std::process::exit(1);
            }
        }
    } else if run_all {
        for w in Workload::all() {
            figure(w, preset, max_procs);
        }
    }
    if wants("--table2") || run_all {
        table2(preset, max_procs);
    }
}

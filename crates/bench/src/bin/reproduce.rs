//! Regenerate the tables and figures of the paper — on the paper's testbed
//! or on any scenario the cluster model can express — fanning the
//! independent runs out across cores.
//!
//! ```text
//! cargo run -p bench --release --bin reproduce                       # every protocol, everything
//! cargo run -p bench --release --bin reproduce -- --protocol hlrc   # HLRC backend only
//! cargo run -p bench --release --bin reproduce -- --protocol sc     # sequential-consistency baseline
//! cargo run -p bench --release --bin reproduce -- --list            # protocols, nets, workloads
//! cargo run -p bench --release --bin reproduce -- --full            # paper-scale inputs
//! cargo run -p bench --release --bin reproduce -- --table1
//! cargo run -p bench --release --bin reproduce -- --table2
//! cargo run -p bench --release --bin reproduce -- --figure water-288
//! cargo run -p bench --release --bin reproduce -- --net atm         # 155 Mbit switched ATM
//! cargo run -p bench --release --bin reproduce -- --procs 16        # past the paper's 8
//! cargo run -p bench --release --bin reproduce -- --islands 4       # PDES island scheduler
//! cargo run -p bench --release --bin reproduce -- --islands 4 --island-threads 4  # threaded windows
//! cargo run -p bench --release --bin reproduce -- --scenario examples/scenarios/atm_16procs.toml
//! cargo run -p bench --release --bin reproduce -- sweep --vary procs      # speedup past 8
//! cargo run -p bench --release --bin reproduce -- sweep --vary bandwidth  # runtime vs bandwidth
//! cargo run -p bench --release --bin reproduce -- sweep --vary islands    # execution invariance
//! cargo run -p bench --release --bin reproduce -- fuzz --seeds 25         # schedule exploration
//! cargo run -p bench --release --bin reproduce -- fuzz --seeds 25 --faults lossy
//! cargo run -p bench --release --bin reproduce -- fuzz --until-failure --faults FILE
//! cargo run -p bench --release --bin reproduce -- --json            # machine-readable dump
//! cargo run -p bench --release --bin reproduce -- --metrics         # latency histograms + profile
//! cargo run -p bench --release --bin reproduce -- --trace trace.json  # Perfetto trace export
//! cargo run -p bench --release --bin reproduce -- --racecheck       # happens-before race detector
//! cargo run -p bench --release --bin reproduce -- --jobs 1          # serial execution
//! cargo run -p bench --release --bin reproduce -- --bench-out BENCH_PR3.json
//! ```
//!
//! Every run of the reproduction matrix is an independent deterministic
//! simulation, so the harness computes the whole requested matrix first —
//! on `--jobs N` worker threads (default: one per core) — and renders the
//! output from the completed matrix afterwards.  Results are stored under
//! their matrix keys, never in completion order, so stdout and JSON are
//! **byte-identical for every `--jobs` value**; the determinism suite and
//! the CI `perf-smoke` job assert exactly that.
//!
//! `--protocol {lrc,hlrc,sc,all}` selects the DSM coherence backend(s)
//! compared against PVM (`all` — or its alias `both`, from the two-backend
//! era — runs every backend).  `--list` prints everything a scenario can
//! name — protocols, systems, net presets, workloads, problem-size presets
//! and sweep axes — and composes with `--json` for a machine-readable
//! catalogue, so scenario authors never grep the source.
//!
//! The scenario flags compose: `--net {fddi,ethernet,atm,ideal}` swaps the
//! interconnect preset, `--procs N` lifts the top processor count (counts
//! beyond 8 step by powers of two to keep the figures readable),
//! `--workload NAME` (repeatable) restricts the workload set, and
//! `--scenario FILE` loads all of the above — plus per-field cost-model
//! overrides — from a TOML or JSON file (schema: docs/EXPERIMENTS.md;
//! commented examples: `examples/scenarios/`).  Explicit CLI flags override
//! the scenario file.
//!
//! `--islands N` (scenario key `islands`) partitions every simulated run's
//! processes into N scheduler islands — the conservative-PDES execution
//! strategy of `cluster::sched`.  An execution knob, never a model knob:
//! output is byte-identical for every width (CI diffs `--json` and
//! `--trace` across `--islands 1/2/4` with `oracle-checks` on), so it is
//! not stamped into `--json` records; `--bench-out` stamps the width into
//! the `timing` section only, and only when it is not 1.
//!
//! `--island-threads N` (scenario key `island_threads`) additionally runs
//! the islands of each simulation on N worker threads inside every horizon
//! window — cross-island sends stage into per-(source, destination)
//! buffers merged in fixed island order at the window barrier, so no
//! thread interleaving ever reaches a simulated byte.  Like `--islands` it
//! is an execution knob: bit-identical output at every thread count (CI
//! diffs `--json` and `--trace` across `--island-threads 1/2/4` with
//! `oracle-checks` replaying every threaded run against the serial
//! engine), excluded from `--json` records, stamped into the `--bench-out`
//! `timing` section only when not 1.
//!
//! `sweep --vary {procs,bandwidth,latency,islands}` renders sensitivity
//! figures instead of the reproduction: speedup versus processor count
//! past the paper's 8, or runtime versus a ×0.25…×4 scaling of one
//! interconnect field, per workload × system (see `bench::sweep`).
//! `--vary islands` is the execution-invariance figure: the same matrix is
//! computed at island widths 1/2/4, asserted bit-identical, and rendered
//! as one (identical) row per width.
//!
//! `fuzz --seeds N` (docs/FUZZING.md) fans the selected workload × system
//! points across N fuzz seeds: seed 0 is the pristine schedule, seed `s`
//! seeds the arbiter's tie-breaking and re-keys the fault plan named by
//! `--faults {lossy,partitioned,FILE}` (default: no faults).  Every run is
//! checked against the invariant battery (`bench::invariants`); failures
//! are shrunk to minimal reproducer scenarios (`bench::shrink`) replayable
//! with `--scenario`, and the exit status is nonzero when anything failed.
//! `--until-failure` stops at the first failing seed.  The report is
//! byte-identical across reruns and `--jobs` widths.
//!
//! A scenario file may itself carry `sched_seed`, `tie_limit` and a
//! `[fault]` section (the shape fuzz reproducers use): the reproduction
//! then runs under that tuning, stamping `sched_seed` / `fault_hash` into
//! `--json` records and the `--bench-out` report — absent at the defaults,
//! so untuned output stays byte-identical.  A scenario whose plan crashes
//! processes replays as a verdict table instead of a matrix (a crashed run
//! has no complete result to tabulate).
//!
//! `--json` replaces the human-readable tables with a machine-readable dump
//! of every run, with every virtual time printed both as a decimal and as
//! its raw f64 bit pattern.  CI runs the dump twice and `diff`s the
//! outputs.  `--bench-out FILE` additionally writes an engine-throughput
//! report: the deterministic totals of the matrix followed by the
//! wall-clock timing of *this* execution.  The `deterministic` section is
//! byte-stable across runs and job counts; the `timing` section is this
//! machine's measurement.
//!
//! The observability flags (docs/OBSERVABILITY.md) compute the same matrix
//! at a recording level: `--metrics` appends the latency-histogram and
//! virtual-time-profile report (and, with `--json`, adds integer quantile
//! fields to every run record); `--trace FILE` records the full structured
//! event stream and writes a Chrome-trace / Perfetto JSON file.  Both
//! outputs are stamped in virtual time, so they are byte-identical across
//! reruns and `--jobs` values — CI diffs the trace exactly as it diffs the
//! JSON dump.  Sweeps always run at metrics level: their tables include a
//! per-cell p99 lock-acquire latency column.
//!
//! `--racecheck` (docs/ANALYSIS.md) computes the same matrix with the
//! happens-before data-race detector enabled on every DSM run and appends
//! one report line per checked run plus a `racecheck summary:` total (with
//! `--json`, per-run `races` fields instead).  Like the observability
//! levels the detector lives outside the cost model, so every simulated
//! number stays bit-identical to a `--racecheck`-free run; the exit status
//! is nonzero when any race is found.

use apps::runner::System;
use apps::Workload;
use bench::fuzz::{run_fuzz, FuzzSpec};
use bench::scenario::{workload_by_name, ResolvedScenario};
use bench::sweep::{Sweep, Vary};
use bench::{
    exec, invariants, obs, problem_size, proc_series, render_race_reports, run_matrix_islands,
    run_record_json, run_sequential, try_run_parallel_on, Preset, RunKey, RunMatrix, RunTuning,
};
use cluster::{AnalysisLevel, FaultPlan, NetModel, NetPreset, ObsLevel, Scenario};
use treadmarks::ProtocolKind;

fn table1(matrix: &RunMatrix, workloads: &[Workload]) {
    println!(
        "\nTable 1: Sequential Time of Applications ({:?} preset)",
        matrix.preset
    );
    println!(
        "{:<12} {:<34} {:>12}",
        "Program", "Problem Size", "Time (s)"
    );
    for &w in workloads {
        let seq = matrix.sequential(w);
        println!(
            "{:<12} {:<34} {:>12.2}",
            w.name(),
            problem_size(w, matrix.preset),
            seq.time
        );
    }
}

fn figure(matrix: &RunMatrix, w: Workload, net: NetModel, max_procs: usize, systems: &[System]) {
    let seq = matrix.sequential(w);
    println!(
        "\nFigure {}: {} speedups (net {}, sequential time {:.2}s)",
        w.figure(),
        w.name(),
        net.label(),
        seq.time
    );
    print!("{:>6}", "procs");
    for sys in systems {
        print!(" {sys:>12}");
    }
    println!();
    for n in proc_series(max_procs) {
        for &sys in systems {
            let run = matrix.run(&RunKey::new(w, sys, net, n));
            assert!(
                (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                "{}: {} checksum mismatch at {n} processes",
                w.name(),
                run.system
            );
        }
        print!("{n:>6}");
        for &sys in systems {
            print!(
                " {:>12.2}",
                matrix.run(&RunKey::new(w, sys, net, n)).speedup(seq.time)
            );
        }
        println!();
    }
}

fn table2(
    matrix: &RunMatrix,
    net: NetModel,
    procs: usize,
    systems: &[System],
    workloads: &[Workload],
) {
    println!(
        "\nTable 2: Messages and Data at {procs} Processors (net {}, {:?} preset)",
        net.label(),
        matrix.preset
    );
    print!("{:<12}", "Program");
    for sys in systems {
        print!(" {:>14} {:>14}", format!("{sys} msgs"), format!("{sys} KB"));
    }
    println!();
    let mut protocol_lines: Vec<String> = Vec::new();
    for &w in workloads {
        print!("{:<12}", w.name());
        for &sys in systems {
            let run = matrix.run(&RunKey::new(w, sys, net, procs));
            print!(" {:>14} {:>14.0}", run.messages, run.kilobytes);
            if let (System::TreadMarks(protocol), Some(stats)) = (sys, &run.tmk_stats) {
                // Each backend renders its own counter set (its Table-2
                // stats contribution), so a new protocol never edits the
                // harness.
                protocol_lines.push(format!(
                    "{:<12} {:<5} {}",
                    w.name(),
                    protocol.name(),
                    protocol.backend().counter_summary(stats),
                ));
            }
        }
        println!();
    }
    if !protocol_lines.is_empty() {
        println!("\nPer-protocol DSM runtime counters at {procs} processors:");
        for line in protocol_lines {
            println!("  {line}");
        }
    }
}

/// Machine-readable dump of the full reproduction: every selected workload
/// at each processor count under each selected system, plus the sequential
/// baselines.  Deterministic execution makes the output byte-stable.
fn json_dump(
    matrix: &RunMatrix,
    net: NetModel,
    proc_counts: &[usize],
    systems: &[System],
    workloads: &[Workload],
) {
    println!("{{");
    println!("  \"preset\": \"{:?}\",", matrix.preset);
    println!("  \"net\": \"{}\",", net.label());
    println!("  \"sequential\": [");
    let seqs: Vec<String> = workloads
        .iter()
        .map(|&w| {
            let seq = matrix.sequential(w);
            format!(
                "    {{\"workload\": \"{}\", \"time\": {}, \"time_bits\": \"{:016x}\", \
                 \"checksum_bits\": \"{:016x}\"}}",
                w.name(),
                seq.time,
                seq.time.to_bits(),
                seq.checksum.to_bits()
            )
        })
        .collect();
    println!("{}", seqs.join(",\n"));
    println!("  ],");
    println!("  \"runs\": [");
    let mut recs = Vec::new();
    for &w in workloads {
        for &n in proc_counts {
            for &sys in systems {
                let key = RunKey::new(w, sys, net, n);
                recs.push(format!("    {}", run_record_json(&key, matrix.run(&key))));
            }
        }
    }
    println!("{}", recs.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// The engine-throughput report written by `--bench-out`: deterministic
/// matrix totals first (byte-stable across runs and job counts — CI diffs
/// them), wall-clock timing of this execution second.
fn bench_report(
    matrix: &RunMatrix,
    tuning: &RunTuning,
    jobs: usize,
    islands: usize,
    island_threads: usize,
    wall_seconds: f64,
) -> String {
    let mut events = 0u64; // transport messages processed (sent == consumed)
    let mut virtual_seconds = 0.0f64;
    let mut checksum_xor = 0u64;
    for (_, run) in matrix.runs() {
        events += run.proc_stats.iter().map(|s| s.messages_sent).sum::<u64>();
        virtual_seconds += run.time;
        checksum_xor ^= run.checksum.to_bits();
    }
    // The tuning stamps appear only when non-default, so an untuned report
    // stays byte-identical to every report the harness ever produced.
    let mut tuning_fields = String::new();
    if tuning.sched_seed != 0 {
        tuning_fields.push_str(&format!("    \"sched_seed\": {},\n", tuning.sched_seed));
    }
    if tuning.fault.hash() != 0 {
        tuning_fields.push_str(&format!(
            "    \"fault_plan_hash\": \"{:016x}\",\n",
            tuning.fault.hash()
        ));
    }
    // Like the tuning stamps: the island width and its thread count are
    // execution details, so they land in the (per-machine) timing section —
    // and only when not 1 — keeping the deterministic section identical
    // across every (islands, island_threads) combination.
    let mut timing_fields = String::new();
    if islands != 1 {
        timing_fields.push_str(&format!("    \"islands\": {islands},\n"));
    }
    if island_threads != 1 {
        timing_fields.push_str(&format!("    \"island_threads\": {island_threads},\n"));
    }
    format!(
        "{{\n  \"preset\": \"{:?}\",\n  \"deterministic\": {{\n{tuning_fields}    \"runs\": {},\n    \
         \"total_messages\": {},\n    \"total_virtual_seconds\": {},\n    \
         \"total_virtual_seconds_bits\": \"{:016x}\",\n    \"checksum_bits_xor\": \"{:016x}\"\n  }},\n  \
         \"timing\": {{\n{timing_fields}    \"jobs\": {},\n    \"wall_seconds\": {:.3},\n    \
         \"events_per_second\": {:.0},\n    \"virtual_seconds_per_wall_second\": {:.2}\n  }}\n}}\n",
        matrix.preset,
        matrix.len(),
        events,
        virtual_seconds,
        virtual_seconds.to_bits(),
        checksum_xor,
        jobs,
        wall_seconds,
        events as f64 / wall_seconds,
        virtual_seconds / wall_seconds,
    )
}

/// `--list`: everything a scenario (or the CLI) can name, so authors stop
/// grepping the source.  `--json` renders the same catalogue
/// machine-readably.
fn list_catalogue(json: bool) {
    let protocols: Vec<ProtocolKind> = ProtocolKind::all().to_vec();
    let systems: Vec<System> = System::all().to_vec();
    let presets = ["tiny", "scaled", "paper"];
    let axes = ["procs", "bandwidth", "latency", "islands"];
    if json {
        println!("{{");
        let protos: Vec<String> = protocols
            .iter()
            .map(|p| {
                format!(
                    "    {{\"name\": \"{}\", \"system_label\": \"{}\", \"description\": \"{}\"}}",
                    p.name(),
                    p.system_label(),
                    p.describe()
                )
            })
            .collect();
        println!("  \"protocols\": [\n{}\n  ],", protos.join(",\n"));
        let sys: Vec<String> = systems.iter().map(|s| format!("\"{s}\"")).collect();
        println!("  \"systems\": [{}],", sys.join(", "));
        let nets: Vec<String> = NetPreset::all()
            .iter()
            .map(|n| {
                let cfg = n.config(8);
                format!(
                    "    {{\"name\": \"{}\", \"bandwidth_bytes_per_s\": {}, \"latency_s\": {}, \
                     \"shared_medium\": {}}}",
                    n.name(),
                    cfg.bandwidth,
                    cfg.latency,
                    cfg.shared_medium
                )
            })
            .collect();
        println!("  \"nets\": [\n{}\n  ],", nets.join(",\n"));
        let loads: Vec<String> = Workload::all()
            .iter()
            .map(|w| {
                format!(
                    "    {{\"name\": \"{}\", \"figure\": {}}}",
                    w.name(),
                    w.figure()
                )
            })
            .collect();
        println!("  \"workloads\": [\n{}\n  ],", loads.join(",\n"));
        let quoted = |xs: &[&str]| {
            xs.iter()
                .map(|x| format!("\"{x}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("  \"presets\": [{}],", quoted(&presets));
        println!("  \"sweep_axes\": [{}],", quoted(&axes));
        println!(
            "  \"execution_knobs\": [{}],",
            quoted(&["jobs", "islands", "island_threads"])
        );
        let kinds: Vec<String> = FaultPlan::kinds()
            .iter()
            .map(|(name, desc)| {
                format!("    {{\"name\": \"{name}\", \"description\": \"{desc}\"}}")
            })
            .collect();
        println!("  \"fault_kinds\": [\n{}\n  ]", kinds.join(",\n"));
        println!("}}");
        return;
    }
    println!("Protocols (--protocol NAME, or `all`):");
    for p in &protocols {
        println!(
            "  {:<6} {:<12} {}",
            p.name(),
            p.system_label(),
            p.describe()
        );
    }
    println!("\nSystems (scenario `systems = [...]`):");
    for s in &systems {
        println!("  {s}");
    }
    println!("\nNet presets (--net NAME, scenario `net = \"NAME\"`):");
    for n in NetPreset::all() {
        let cfg = n.config(8);
        println!(
            "  {:<9} {:>12.0} B/s bandwidth, {:>9.1} us latency, {}",
            n.name(),
            cfg.bandwidth,
            cfg.latency * 1e6,
            if cfg.shared_medium {
                "shared medium"
            } else {
                "full bisection"
            }
        );
    }
    println!("\nWorkloads (--workload NAME, repeatable):");
    for w in Workload::all() {
        println!("  {:<12} (Figure {})", w.name(), w.figure());
    }
    println!("\nProblem-size presets: {}", presets.join(", "));
    println!("Sweep axes (sweep --vary AXIS): {}", axes.join(", "));
    println!(
        "Execution knobs (byte-identical output at every value): \
         --jobs N, --islands N, --island-threads N"
    );
    println!("\nFault kinds (scenario [fault] section; fuzz --faults {{lossy,partitioned,FILE}}):");
    for (name, desc) in FaultPlan::kinds() {
        println!("  {name:<12} {desc}");
    }
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Replay a scenario whose fault plan crashes processes: instead of a
/// reproduction matrix (impossible — crashed runs have no results to
/// tabulate), classify every workload × system point through the invariant
/// battery and print one verdict line each, naming the fault context.  The
/// fan uses the ordered executor, so the table is byte-identical across
/// `--jobs` widths.
#[allow(clippy::too_many_arguments)]
fn replay_verdicts(
    preset: Preset,
    net: NetModel,
    nprocs: usize,
    workloads: &[Workload],
    systems: &[System],
    tuning: &RunTuning,
    jobs: usize,
    islands: usize,
    island_threads: usize,
) {
    println!(
        "Crash-plan scenario: verdict replay at {nprocs} processes (net {}, {preset:?} preset)",
        net.label()
    );
    let seqs: Vec<_> = workloads
        .iter()
        .map(|&w| (w, run_sequential(w, preset)))
        .collect();
    let points: Vec<(Workload, System)> = workloads
        .iter()
        .flat_map(|&w| systems.iter().map(move |&sys| (w, sys)))
        .collect();
    let tasks: Vec<_> = points
        .iter()
        .map(|&(w, sys)| {
            let seq = &seqs.iter().find(|(k, _)| *k == w).unwrap().1;
            move || {
                let mut cfg = net.config(nprocs);
                cfg.islands = islands;
                cfg.island_threads = island_threads;
                tuning.apply(&mut cfg);
                invariants::verdict(try_run_parallel_on(w, sys, &cfg, preset), seq)
            }
        })
        .collect();
    for (&(w, sys), verdict) in points.iter().zip(exec::run_ordered(jobs, tasks)) {
        println!(
            "  {:<12} {:<10} {}",
            w.name(),
            sys.to_string(),
            verdict.summary()
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sweep_mode = args.first().map(String::as_str) == Some("sweep");
    let fuzz_mode = args.first().map(String::as_str) == Some("fuzz");
    if sweep_mode || fuzz_mode {
        args.remove(0);
    }

    let wants = |flag: &str| args.iter().any(|a| a == flag);
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    const VALUE_FLAGS: [&str; 14] = [
        "--protocol",
        "--jobs",
        "--bench-out",
        "--net",
        "--procs",
        "--scenario",
        "--vary",
        "--workload",
        "--figure",
        "--trace",
        "--seeds",
        "--faults",
        "--islands",
        "--island-threads",
    ];
    for flag in VALUE_FLAGS {
        if args.last().map(String::as_str) == Some(flag) {
            fail(format!("{flag} requires a value"));
        }
    }
    // `sweep` and `fuzz` are only subcommands in first position; catch them
    // anywhere else (except as a flag's value, e.g. a `--bench-out sweep`
    // filename) rather than silently running the full reproduction.
    if !sweep_mode && !fuzz_mode {
        for (i, arg) in args.iter().enumerate() {
            let is_flag_value = i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
            if (arg == "sweep" || arg == "fuzz") && !is_flag_value {
                fail(format!(
                    "`{arg}` must be the first argument: `reproduce {arg} ...`"
                ));
            }
        }
    }

    if wants("--list") {
        if sweep_mode {
            fail("--list does not apply to sweep mode");
        }
        list_catalogue(wants("--json"));
        return;
    }

    // Defaults shared by the CLI and scenario resolution: sweeps default
    // to a top of 16 processes so `--vary procs` goes past the paper's 8
    // even when a scenario file leaves `procs` unset; fuzz campaigns
    // default to 4 so a many-seed sweep stays fast.
    let default_procs = if sweep_mode {
        16
    } else if fuzz_mode {
        4
    } else {
        8
    };

    // The scenario file (if any) supplies defaults; explicit CLI flags
    // override its individual fields below.
    let scenario: Option<ResolvedScenario> = flag_value("--scenario").map(|path| {
        let parsed = Scenario::from_path(std::path::Path::new(path)).unwrap_or_else(|e| fail(e));
        ResolvedScenario::resolve(&parsed, Preset::Scaled, default_procs)
            .unwrap_or_else(|e| fail(e))
    });

    let preset = if wants("--full") {
        Preset::Paper
    } else if wants("--tiny") {
        Preset::Tiny
    } else {
        scenario
            .as_ref()
            .map(|s| s.preset)
            .unwrap_or(Preset::Scaled)
    };
    let net: NetModel = match flag_value("--net") {
        Some(name) => match name.parse::<NetPreset>() {
            Ok(preset) => NetModel::preset(preset),
            Err(e) => fail(e),
        },
        None => scenario
            .as_ref()
            .map(|s| s.net)
            .unwrap_or(NetModel::preset(NetPreset::Fddi)),
    };
    let max_procs: usize = match flag_value("--procs") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => fail(format!("--procs requires a positive integer, got '{v}'")),
        },
        None => scenario
            .as_ref()
            .map(|s| s.max_procs)
            .unwrap_or(default_procs),
    };
    let islands: usize = match flag_value("--islands") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => fail(format!("--islands requires a positive integer, got '{v}'")),
        },
        None => scenario.as_ref().map(|s| s.islands).unwrap_or(1),
    };
    let island_threads: usize = match flag_value("--island-threads") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => fail(format!(
                "--island-threads requires a positive integer, got '{v}'"
            )),
        },
        None => scenario.as_ref().map(|s| s.island_threads).unwrap_or(1),
    };
    let systems: Vec<System> = match flag_value("--protocol").map(String::as_str) {
        None => scenario
            .as_ref()
            .map(|s| s.systems.clone())
            .unwrap_or_else(|| System::all().to_vec()),
        Some("both") | Some("all") => ProtocolKind::all()
            .iter()
            .map(|&p| System::TreadMarks(p))
            .chain(std::iter::once(System::Pvm))
            .collect(),
        Some(name) => match name.parse::<ProtocolKind>() {
            Ok(kind) => vec![System::TreadMarks(kind), System::Pvm],
            Err(err) => fail(err),
        },
    };
    let jobs: usize = match flag_value("--jobs") {
        None => exec::default_jobs(),
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => fail(format!("--jobs requires a positive integer, got '{v}'")),
        },
    };
    let bench_out = flag_value("--bench-out").cloned();
    let trace_out = flag_value("--trace").cloned();
    let want_metrics = wants("--metrics");
    // Sweeps always record at metrics level (their tables carry a p99
    // lock-acquire column); the reproduction records only when asked, so
    // the default path stays on the zero-cost null sink.
    let obs_level = if trace_out.is_some() {
        ObsLevel::Trace
    } else if want_metrics || sweep_mode {
        ObsLevel::Metrics
    } else {
        ObsLevel::Off
    };
    let analysis_level = if wants("--racecheck") {
        AnalysisLevel::Race
    } else {
        AnalysisLevel::Off
    };

    // `--workload` (repeatable) narrows the set; a scenario file's subset
    // applies when no explicit flag does.
    let workload_flags: Vec<Workload> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--workload")
        .map(|(i, _)| {
            let name = args.get(i + 1).expect("checked above");
            workload_by_name(name).unwrap_or_else(|e| fail(e))
        })
        .collect();
    let selected_workloads: Vec<Workload> = if !workload_flags.is_empty() {
        Workload::all()
            .into_iter()
            .filter(|w| workload_flags.contains(w))
            .collect()
    } else {
        scenario
            .as_ref()
            .map(|s| s.workloads.clone())
            .unwrap_or_else(|| Workload::all().to_vec())
    };

    if fuzz_mode {
        // Fuzz renders its own deterministic report; the reproduction-only
        // output selectors have no meaning here.
        for flag in [
            "--json",
            "--table1",
            "--table2",
            "--figure",
            "--trace",
            "--racecheck",
            "--metrics",
            "--bench-out",
            "--vary",
        ] {
            if wants(flag) {
                fail(format!("{flag} does not apply to fuzz mode"));
            }
        }
        let seeds: u64 = match flag_value("--seeds") {
            None => 10,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => fail(format!("--seeds requires a positive integer, got '{v}'")),
            },
        };
        let plan: FaultPlan = match flag_value("--faults").map(String::as_str) {
            // No --faults: fuzz the scenario's plan if one was loaded,
            // otherwise pure schedule exploration on a fault-free cluster.
            None => scenario
                .as_ref()
                .map(|s| s.tuning.fault.clone())
                .unwrap_or_default(),
            Some("lossy") => FaultPlan::lossy(1),
            Some("partition") | Some("partitioned") => FaultPlan::partitioned(1, max_procs),
            Some(path) => {
                let parsed =
                    Scenario::from_path(std::path::Path::new(path)).unwrap_or_else(|e| fail(e));
                parsed.fault.unwrap_or_else(|| {
                    fail(format!(
                        "{path} carries no [fault] section; \
                         --faults takes `lossy`, `partitioned` or a scenario file with [fault]"
                    ))
                })
            }
        };
        let spec = FuzzSpec {
            preset,
            net,
            nprocs: max_procs,
            workloads: selected_workloads,
            systems,
            seeds,
            plan,
            until_failure: wants("--until-failure"),
            jobs,
            islands,
            island_threads,
        };
        let out = run_fuzz(&spec);
        print!("{}", out.report);
        // Like --racecheck: a campaign that found anything fails the
        // invocation, after the report (and every reproducer) is printed.
        if !out.findings.is_empty() {
            std::process::exit(1);
        }
        return;
    }
    for flag in ["--seeds", "--faults", "--until-failure"] {
        if wants(flag) {
            fail(format!(
                "{flag} only applies to fuzz mode: `reproduce fuzz ...`"
            ));
        }
    }

    if sweep_mode {
        if trace_out.is_some() {
            fail("--trace only applies to the reproduction; sweeps record at metrics level");
        }
        if analysis_level.enabled() {
            fail("--racecheck only applies to the reproduction; sweeps have no race rendering");
        }
        // The reproduction-only output selectors have no sweep rendering;
        // reject them rather than silently printing the ASCII figures to a
        // consumer that asked for a table or the JSON dump.
        for flag in ["--json", "--table1", "--table2", "--figure"] {
            if wants(flag) {
                fail(format!(
                    "{flag} only applies to the reproduction; sweep renders its own figures \
                     (use --workload to narrow a sweep)"
                ));
            }
        }
        let vary: Vary = match flag_value("--vary") {
            Some(v) => v.parse().unwrap_or_else(|e: String| fail(e)),
            None => Vary::Procs,
        };
        let sweep = Sweep {
            vary,
            preset,
            base: net,
            workloads: selected_workloads,
            systems,
            max_procs,
        };
        let keys = sweep.keys();
        // lint:allow(wall-clock): times this machine's execution for the --bench-out report
        let started = std::time::Instant::now();
        let sweep_matrix_at = |islands: usize| {
            run_matrix_islands(
                preset,
                &sweep.workloads,
                &keys,
                jobs,
                obs_level,
                AnalysisLevel::Off,
                &RunTuning::default(),
                islands,
                island_threads,
            )
        };
        let matrix = if vary == Vary::Islands {
            if wants("--islands") {
                fail(
                    "--islands does not compose with `sweep --vary islands`; \
                     the sweep runs every island width itself",
                );
            }
            // The execution-invariance figure: compute the matrix once per
            // width, assert bit-identity, render from the width-1 matrix.
            let reference = sweep_matrix_at(bench::sweep::ISLAND_WIDTHS[0]);
            for &width in &bench::sweep::ISLAND_WIDTHS[1..] {
                let other = sweep_matrix_at(width);
                for key in &keys {
                    assert!(
                        format!("{:?}", reference.run(key)) == format!("{:?}", other.run(key)),
                        "execution-invariance violation: {key:?} differs between \
                         islands={} and islands={width}",
                        bench::sweep::ISLAND_WIDTHS[0],
                    );
                }
            }
            reference
        } else {
            sweep_matrix_at(islands)
        };
        let wall_seconds = started.elapsed().as_secs_f64();
        print!("{}", sweep.render(&matrix));
        if want_metrics {
            print!("\n{}", obs::metrics_report(&matrix));
        }
        if let Some(path) = bench_out {
            let report = bench_report(
                &matrix,
                &RunTuning::default(),
                jobs,
                islands,
                island_threads,
                wall_seconds,
            );
            if let Err(err) = std::fs::write(&path, &report) {
                fail(format!("cannot write {path}: {err}"));
            }
            eprintln!("bench report written to {path}");
        }
        return;
    }

    if wants("--vary") {
        fail("--vary only applies to sweep mode; run `reproduce sweep --vary ...`");
    }

    // The scenario's tuning (schedule seed, tie cap, fault plan) rides on
    // every run of the reproduction.  A plan that crashes processes cannot
    // fill a matrix — the crashed runs have no results to tabulate — so it
    // replays as a verdict table instead: one classified outcome per
    // workload × system, naming the fault context.  This is how a shrunk
    // fuzz reproducer with a crash is replayed.
    let tuning = scenario
        .as_ref()
        .map(|s| s.tuning.clone())
        .unwrap_or_default();
    if !tuning.fault.crashes.is_empty() {
        replay_verdicts(
            preset,
            net,
            max_procs,
            &selected_workloads,
            &systems,
            &tuning,
            jobs,
            islands,
            island_threads,
        );
        return;
    }
    let want_json = wants("--json");
    let figure_arg = flag_value("--figure");
    let run_all = !want_json && !wants("--table1") && !wants("--table2") && figure_arg.is_none();
    let want_table1 = wants("--table1") || run_all;
    let want_table2 = wants("--table2") || run_all;
    // `--json` dumps the full matrix and ignores `--figure`/`--table*`,
    // exactly as it always has.
    let figure_workloads: Vec<Workload> = if want_json || run_all {
        selected_workloads.clone()
    } else if let Some(name) = figure_arg {
        match workload_by_name(name) {
            Ok(w) => vec![w],
            Err(e) => fail(e),
        }
    } else {
        Vec::new()
    };

    // Assemble the requested matrix: sequential baselines plus parallel
    // runs.  (Everything below renders from this precomputed matrix.)
    let mut seq_workloads: Vec<Workload> = Vec::new();
    if want_table1 || want_json {
        seq_workloads.extend(&selected_workloads);
    }
    seq_workloads.extend(&figure_workloads);
    let mut keys: Vec<RunKey> = Vec::new();
    // The JSON dump reports powers of two (the paper's 1/2/4/8, extended
    // by --procs) plus the requested top count itself; the figures report
    // the full paper series plus the extension.
    let json_procs: Vec<usize> = {
        let mut counts = Vec::new();
        let mut p = 1usize;
        while p <= max_procs {
            counts.push(p);
            p *= 2;
        }
        if counts.last() != Some(&max_procs) {
            counts.push(max_procs);
        }
        counts
    };
    for &w in &figure_workloads {
        let counts = if want_json {
            json_procs.clone()
        } else {
            proc_series(max_procs)
        };
        for n in counts {
            for &sys in &systems {
                keys.push(RunKey::new(w, sys, net, n));
            }
        }
    }
    if want_table2 {
        for &w in &selected_workloads {
            for &sys in &systems {
                keys.push(RunKey::new(w, sys, net, max_procs));
            }
        }
    }

    // lint:allow(wall-clock): times this machine's execution for the --bench-out report
    let started = std::time::Instant::now();
    let matrix = run_matrix_islands(
        preset,
        &seq_workloads,
        &keys,
        jobs,
        obs_level,
        analysis_level,
        &tuning,
        islands,
        island_threads,
    );
    let wall_seconds = started.elapsed().as_secs_f64();

    if want_json {
        json_dump(&matrix, net, &json_procs, &systems, &selected_workloads);
    } else {
        if want_table1 {
            table1(&matrix, &selected_workloads);
        }
        for &w in &figure_workloads {
            figure(&matrix, w, net, max_procs, &systems);
        }
        if want_table2 {
            table2(&matrix, net, max_procs, &systems, &selected_workloads);
        }
        if want_metrics {
            print!("\n{}", obs::metrics_report(&matrix));
        }
    }

    if analysis_level.enabled() {
        let report = render_race_reports(&matrix);
        if want_json {
            // stdout is a pure JSON document (the per-run `races` fields are
            // already in it), so the readable report goes to stderr.
            eprint!("{report}");
        } else {
            print!("\nRace check (happens-before, byte-range granularity):\n{report}");
        }
    }

    if let Some(path) = trace_out {
        let trace = obs::chrome_trace_json(&matrix);
        if let Err(err) = obs::validate_json(&trace) {
            fail(format!("internal error: exported trace is invalid: {err}"));
        }
        if let Err(err) = std::fs::write(&path, &trace) {
            fail(format!("cannot write {path}: {err}"));
        }
        eprintln!("trace written to {path} (open in https://ui.perfetto.dev)");
    }

    if let Some(path) = bench_out {
        let report = bench_report(&matrix, &tuning, jobs, islands, island_threads, wall_seconds);
        if let Err(err) = std::fs::write(&path, &report) {
            fail(format!("cannot write {path}: {err}"));
        }
        eprintln!("bench report written to {path}");
    }

    // A racecheck run that found races fails the invocation — after every
    // requested output has been written, so the report is never lost.
    let races_found = matrix
        .runs()
        .any(|(_, r)| r.race.as_ref().is_some_and(|rep| !rep.is_race_free()));
    if races_found {
        std::process::exit(1);
    }
}

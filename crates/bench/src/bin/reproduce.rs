//! Regenerate the tables and figures of the paper, under a selectable DSM
//! coherence protocol.
//!
//! ```text
//! cargo run -p bench --release --bin reproduce                       # both protocols, everything
//! cargo run -p bench --release --bin reproduce -- --protocol hlrc   # HLRC backend only
//! cargo run -p bench --release --bin reproduce -- --protocol lrc    # the paper's protocol only
//! cargo run -p bench --release --bin reproduce -- --full            # paper-scale inputs
//! cargo run -p bench --release --bin reproduce -- --table1
//! cargo run -p bench --release --bin reproduce -- --table2
//! cargo run -p bench --release --bin reproduce -- --figure water-288
//! cargo run -p bench --release --bin reproduce -- --json            # machine-readable dump
//! ```
//!
//! `--json` replaces the human-readable tables with a machine-readable dump
//! of every run (all workloads at 1/2/4/8 processes under each selected
//! system), with every virtual time printed both as a decimal and as its
//! raw f64 bit pattern.  Execution is deterministic — the cluster arbitrates
//! all communication in virtual-time order — so two invocations emit
//! byte-identical JSON; CI runs the dump twice and `diff`s the outputs.
//!
//! Output is plain text shaped like the paper's tables: Table 1 (sequential
//! times and problem sizes), one speedup series per figure (each selected
//! DSM protocol and PVM at 1–8 processors), and Table 2 (messages and
//! kilobytes at 8 processors under each system), followed — for TreadMarks
//! runs — by the per-protocol runtime counters (faults, diff or page
//! traffic, flushes) that explain the message counts.

use apps::runner::System;
use apps::Workload;
use bench::{problem_size, run_parallel, run_sequential, Preset};
use treadmarks::ProtocolKind;

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn table1(preset: Preset) {
    println!("\nTable 1: Sequential Time of Applications ({preset:?} preset)");
    println!(
        "{:<12} {:<34} {:>12}",
        "Program", "Problem Size", "Time (s)"
    );
    for w in Workload::all() {
        let seq = run_sequential(w, preset);
        println!(
            "{:<12} {:<34} {:>12.2}",
            w.name(),
            problem_size(w, preset),
            seq.time
        );
    }
}

fn figure(w: Workload, preset: Preset, max_procs: usize, systems: &[System]) {
    let seq = run_sequential(w, preset);
    println!(
        "\nFigure {}: {} speedups (sequential time {:.2}s)",
        w.figure(),
        w.name(),
        seq.time
    );
    print!("{:>6}", "procs");
    for sys in systems {
        print!(" {sys:>12}");
    }
    println!();
    for n in 1..=max_procs {
        let runs: Vec<_> = systems
            .iter()
            .map(|&sys| run_parallel(w, sys, n, preset))
            .collect();
        for run in &runs {
            assert!(
                (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                "{}: {} checksum mismatch at {n} processes",
                w.name(),
                run.system
            );
        }
        print!("{n:>6}");
        for run in &runs {
            print!(" {:>12.2}", run.speedup(seq.time));
        }
        println!();
    }
}

fn table2(preset: Preset, procs: usize, systems: &[System]) {
    println!("\nTable 2: Messages and Data at {procs} Processors ({preset:?} preset)");
    print!("{:<12}", "Program");
    for sys in systems {
        print!(" {:>14} {:>14}", format!("{sys} msgs"), format!("{sys} KB"));
    }
    println!();
    let mut protocol_lines: Vec<String> = Vec::new();
    for w in Workload::all() {
        print!("{:<12}", w.name());
        for &sys in systems {
            let run = run_parallel(w, sys, procs, preset);
            print!(" {:>14} {:>14.0}", run.messages, run.kilobytes);
            if let (System::TreadMarks(protocol), Some(stats)) = (sys, &run.tmk_stats) {
                protocol_lines.push(format!(
                    "{:<12} {:<5} {:>8} faults {:>8} diff-req {:>8} page-req {:>8} flushes \
                     {:>10} diff-KB {:>10} page-KB",
                    w.name(),
                    protocol.name(),
                    stats.page_faults,
                    stats.diff_requests_sent,
                    stats.page_requests_sent,
                    stats.diff_flushes_sent,
                    (stats.diff_bytes_received / 1024),
                    (stats.page_bytes_fetched / 1024),
                ));
            }
        }
        println!();
    }
    if !protocol_lines.is_empty() {
        println!("\nPer-protocol DSM runtime counters at {procs} processors:");
        for line in protocol_lines {
            println!("  {line}");
        }
    }
}

/// One JSON field per metric, with virtual times carried both as decimal
/// (shortest round-trip) and as the raw f64 bit pattern, so a textual `diff`
/// of two dumps is exactly a bit-identity check.
fn json_run_record(w: Workload, run: &apps::AppRun) -> String {
    let mut rec = format!(
        "{{\"workload\": \"{}\", \"system\": \"{}\", \"nprocs\": {}, \
         \"time\": {}, \"time_bits\": \"{:016x}\", \"checksum_bits\": \"{:016x}\", \
         \"messages\": {}, \"kilobytes_bits\": \"{:016x}\", \
         \"datagrams_received\": {}",
        w.name(),
        run.system,
        run.nprocs,
        run.time,
        run.time.to_bits(),
        run.checksum.to_bits(),
        run.messages,
        run.kilobytes.to_bits(),
        run.proc_stats
            .iter()
            .map(|s| s.datagrams_received)
            .sum::<u64>(),
    );
    if let Some(t) = &run.tmk_stats {
        rec.push_str(&format!(
            ", \"page_faults\": {}, \"diff_requests\": {}, \"diff_flushes\": {}, \
             \"page_requests\": {}",
            t.page_faults, t.diff_requests_sent, t.diff_flushes_sent, t.page_requests_sent
        ));
    }
    rec.push('}');
    rec
}

/// Machine-readable dump of the full reproduction: every workload at
/// 1/2/4/8 processes under each selected system, plus the sequential
/// baselines.  Deterministic execution makes the output byte-stable.
fn json_dump(preset: Preset, systems: &[System]) {
    println!("{{");
    println!("  \"preset\": \"{preset:?}\",");
    println!("  \"sequential\": [");
    let seqs: Vec<String> = Workload::all()
        .into_iter()
        .map(|w| {
            let seq = run_sequential(w, preset);
            format!(
                "    {{\"workload\": \"{}\", \"time\": {}, \"time_bits\": \"{:016x}\", \
                 \"checksum_bits\": \"{:016x}\"}}",
                w.name(),
                seq.time,
                seq.time.to_bits(),
                seq.checksum.to_bits()
            )
        })
        .collect();
    println!("{}", seqs.join(",\n"));
    println!("  ],");
    println!("  \"runs\": [");
    let mut recs = Vec::new();
    for w in Workload::all() {
        for n in [1usize, 2, 4, 8] {
            for &sys in systems {
                let run = run_parallel(w, sys, n, preset);
                recs.push(format!("    {}", json_run_record(w, &run)));
            }
        }
    }
    println!("{}", recs.join(",\n"));
    println!("  ]");
    println!("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = if args.iter().any(|a| a == "--full") {
        Preset::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        Preset::Tiny
    } else {
        Preset::Scaled
    };
    let max_procs = 8;

    let wants = |flag: &str| args.iter().any(|a| a == flag);
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };

    if args.last().map(String::as_str) == Some("--protocol") {
        eprintln!("--protocol requires a value: lrc, hlrc or both");
        std::process::exit(1);
    }
    let protocols: Vec<ProtocolKind> = match flag_value("--protocol").map(String::as_str) {
        None | Some("both") | Some("all") => ProtocolKind::all().to_vec(),
        Some(name) => match name.parse() {
            Ok(kind) => vec![kind],
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(1);
            }
        },
    };
    let systems: Vec<System> = protocols
        .iter()
        .map(|&p| System::TreadMarks(p))
        .chain(std::iter::once(System::Pvm))
        .collect();

    if wants("--json") {
        json_dump(preset, &systems);
        return;
    }

    let figure_arg = flag_value("--figure");
    let run_all = !wants("--table1") && !wants("--table2") && figure_arg.is_none();

    if wants("--table1") || run_all {
        table1(preset);
    }
    if let Some(name) = figure_arg {
        match workload_by_name(name) {
            Some(w) => figure(w, preset, max_procs, &systems),
            None => {
                eprintln!("unknown workload '{name}'; known workloads:");
                for w in Workload::all() {
                    eprintln!("  {}", w.name());
                }
                std::process::exit(1);
            }
        }
    } else if run_all {
        for w in Workload::all() {
            figure(w, preset, max_procs, &systems);
        }
    }
    if wants("--table2") || run_all {
        table2(preset, max_procs, &systems);
    }
}

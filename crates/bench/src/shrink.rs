//! Greedy minimisation of failing fault plans.
//!
//! When the fuzzer ([`crate::fuzz`]) finds a `(plan, seed)` that breaks an
//! invariant, the raw reproducer is noisy: probabilities that never
//! mattered, partitions that never blocked the failing message, thousands
//! of seeded tie-breaks of which only the first few steered the schedule
//! off the rank-order path.  [`shrink`] strips all of that: it repeatedly
//! tries simplifications — zero a probability, remove a crash or a
//! partition, shorten a partition window, drop the schedule seed, bisect
//! the tie-break stream — keeping each one only if the failure still
//! *reproduces with the same verdict kind*, until no simplification
//! survives.  Because every trial run is deterministic, the result is a
//! fixpoint: shrinking a shrunk tuning returns it unchanged (the
//! idempotence the test battery asserts).
//!
//! The oracle is a caller-supplied closure `test: &RunTuning -> bool`
//! (true = the failure still reproduces), so the same shrinker drives real
//! cluster runs in the fuzzer and synthetic predicates in unit tests.

use crate::RunTuning;
use cluster::Partition;

/// Upper bound on the tie-break draws considered when bisecting an
/// uncapped seeded stream: far beyond what any Tiny-preset run draws, and
/// it only bounds the *search*, not the runs themselves.
const TIE_SEARCH_CEILING: u64 = 1 << 16;

/// Greedily minimise `tuning` while `test` keeps returning true.
///
/// `test` must be true for `tuning` itself (the caller verified the
/// failure); the shrunk result is the smallest tuning this greedy pass
/// reaches for which `test` is still true.  Deterministic and idempotent:
/// `shrink(&shrink(t, f), f) == shrink(t, f)` for any pure `f`.
pub fn shrink<F>(tuning: &RunTuning, mut test: F) -> RunTuning
where
    F: FnMut(&RunTuning) -> bool,
{
    let mut cur = tuning.clone();
    // One bounded bisection of the tie-break stream up front (it is the
    // only non-monotone knob: a cap changes *which* draws happen, so it is
    // searched once rather than re-halved every fixpoint round).
    cur = bisect_ties(cur, &mut test);
    loop {
        let mut changed = false;
        let mut attempt = |cand: RunTuning, cur: &mut RunTuning| {
            if cand != *cur && test(&cand) {
                *cur = cand;
                true
            } else {
                false
            }
        };

        // Drop whole fault kinds: zero each probability.
        for zero in [
            |p: &mut RunTuning| p.fault.drop = 0.0,
            |p: &mut RunTuning| p.fault.duplicate = 0.0,
            |p: &mut RunTuning| p.fault.reorder = 0.0,
            |p: &mut RunTuning| p.fault.delay = 0.0,
        ] {
            let mut cand = cur.clone();
            zero(&mut cand);
            changed |= attempt(cand, &mut cur);
        }

        // Remove each crash, then each partition, one at a time.
        for i in (0..cur.fault.crashes.len()).rev() {
            let mut cand = cur.clone();
            cand.fault.crashes.remove(i);
            changed |= attempt(cand, &mut cur);
        }
        for i in (0..cur.fault.partitions.len()).rev() {
            let mut cand = cur.clone();
            cand.fault.partitions.remove(i);
            changed |= attempt(cand, &mut cur);
        }

        // Shorten each surviving partition window: try healing at the
        // midpoint, then try starting at the midpoint.
        for i in 0..cur.fault.partitions.len() {
            let Partition { from, until, .. } = cur.fault.partitions[i];
            let mid = from + (until - from) / 2.0;
            if mid > from && mid < until {
                let mut cand = cur.clone();
                cand.fault.partitions[i].until = mid;
                changed |= attempt(cand, &mut cur);
                let Partition { from, until, .. } = cur.fault.partitions[i];
                let mid = from + (until - from) / 2.0;
                if mid > from && mid < until {
                    let mut cand = cur.clone();
                    cand.fault.partitions[i].from = mid;
                    changed |= attempt(cand, &mut cur);
                }
            }
        }

        // Drop the schedule exploration entirely if the fault plan alone
        // reproduces.
        if cur.sched_seed != 0 {
            let mut cand = cur.clone();
            cand.sched_seed = 0;
            cand.tie_limit = None;
            changed |= attempt(cand, &mut cur);
        }

        if !changed {
            break;
        }
    }
    cur
}

/// Bound the seeded tie-break stream: find the smallest `tie_limit` that
/// still reproduces (rank order resumes after the cap), by doubling up to
/// a ceiling and then binary-searching down.  No-op for seed 0.
fn bisect_ties<F>(mut cur: RunTuning, test: &mut F) -> RunTuning
where
    F: FnMut(&RunTuning) -> bool,
{
    if cur.sched_seed == 0 {
        return cur;
    }
    let with_limit = |cur: &RunTuning, limit: u64| {
        let mut cand = cur.clone();
        cand.tie_limit = Some(limit);
        cand
    };
    // Find a reproducing upper bound by doubling.
    let ceiling = cur.tie_limit.unwrap_or(TIE_SEARCH_CEILING);
    let mut hi = 1u64;
    while hi < ceiling && !test(&with_limit(&cur, hi)) {
        hi *= 2;
    }
    if hi >= ceiling {
        if !test(&with_limit(&cur, ceiling)) {
            // Never reproduced under any cap up to the ceiling: leave the
            // stream uncapped (or at its original cap).
            return cur;
        }
        hi = ceiling;
    }
    // Smallest reproducing cap in (lo, hi]; lo is known non-reproducing
    // (or 0, checked below).
    let mut lo = hi / 2;
    if hi == 1 && test(&with_limit(&cur, 0)) {
        cur.tie_limit = Some(0);
        return cur;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if test(&with_limit(&cur, mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    cur.tie_limit = Some(hi);
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::FaultPlan;

    fn full_tuning() -> RunTuning {
        RunTuning {
            sched_seed: 42,
            tie_limit: None,
            fault: FaultPlan {
                seed: 9,
                drop: 0.02,
                duplicate: 0.01,
                reorder: 0.02,
                delay: 0.02,
                partitions: vec!["0|1@0.001..0.004".parse().unwrap()],
                crashes: vec!["1@0.002".parse().unwrap()],
                ..FaultPlan::default()
            },
        }
    }

    #[test]
    fn shrink_strips_everything_an_oracle_never_looks_at() {
        // Failure depends only on the drop probability being nonzero.
        let test = |t: &RunTuning| t.fault.drop > 0.0;
        let shrunk = shrink(&full_tuning(), test);
        assert!(shrunk.fault.drop > 0.0);
        assert_eq!(shrunk.fault.duplicate, 0.0);
        assert_eq!(shrunk.fault.reorder, 0.0);
        assert_eq!(shrunk.fault.delay, 0.0);
        assert!(shrunk.fault.partitions.is_empty());
        assert!(shrunk.fault.crashes.is_empty());
        assert_eq!(shrunk.sched_seed, 0, "schedule seed was not needed");
    }

    #[test]
    fn shrink_is_idempotent() {
        let test = |t: &RunTuning| !t.fault.crashes.is_empty();
        let once = shrink(&full_tuning(), test);
        let twice = shrink(&once, test);
        assert_eq!(once, twice);
    }

    #[test]
    fn shrink_bisects_the_tie_stream_to_the_minimal_cap() {
        // Failure needs the seeded schedule with at least 11 draws.
        let test =
            |t: &RunTuning| t.sched_seed == 42 && t.tie_limit.map(|l| l >= 11).unwrap_or(true);
        let shrunk = shrink(&full_tuning(), test);
        assert_eq!(shrunk.sched_seed, 42);
        assert_eq!(shrunk.tie_limit, Some(11), "minimal reproducing cap");
        assert!(shrunk.fault.is_empty(), "fault plan was not needed");
    }

    #[test]
    fn shrink_shortens_partition_windows() {
        // Failure needs a partition still active at t = 0.0015.
        let test = |t: &RunTuning| {
            t.fault
                .partitions
                .iter()
                .any(|p| p.from <= 0.0015 && p.until > 0.0015)
        };
        let shrunk = shrink(&full_tuning(), test);
        assert_eq!(shrunk.fault.partitions.len(), 1);
        let p = &shrunk.fault.partitions[0];
        assert!(p.until - p.from < 0.003, "window was not shortened: {p}");
        assert!(p.from <= 0.0015 && p.until > 0.0015);
    }

    #[test]
    fn an_always_failing_oracle_shrinks_to_the_empty_tuning() {
        let shrunk = shrink(&full_tuning(), |_| true);
        assert!(shrunk.is_default(), "{shrunk:?}");
    }
}

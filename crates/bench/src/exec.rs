//! The parallel run executor: fan independent deterministic simulations out
//! across the host's cores with provably unchanged output.
//!
//! The reproduction matrix — workloads × systems × processor counts — is a
//! large set of *independent* runs: each simulation owns its cluster, its
//! mailboxes and its clocks, and (since the deterministic virtual-time
//! arbiter of PR 2) its result is a pure function of its inputs.  Executing
//! them one after another therefore leaves every core but one idle for no
//! semantic reason.  [`run_ordered`] executes a list of such tasks on a
//! fixed-size worker pool and returns the results **in task order**, so any
//! consumer that prints or serialises the results serially produces output
//! byte-identical to a serial execution — which the determinism suite
//! asserts bit-for-bit.
//!
//! Scheduling is a single atomic cursor over the task list: workers claim
//! the next unclaimed index, run it, and park the result in that index's
//! slot.  Which worker runs which task (and in what wall-clock order) is
//! nondeterministic; *nothing observable depends on it*.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Execute every task on a pool of `jobs` worker threads and return the
/// results in task order.
///
/// `jobs <= 1` (or a single task) degenerates to a plain serial loop on the
/// calling thread.  The pool never holds more threads than tasks.
///
/// # Panics
///
/// If a task panics, the queue is cancelled — workers finish their
/// in-flight task and claim nothing more — and the panic is propagated to
/// the caller.
pub fn run_ordered<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = tasks[i]
                        .lock()
                        .expect("task slot poisoned")
                        .take()
                        .expect("every index is claimed exactly once");
                    let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task))
                    {
                        Ok(r) => r,
                        Err(payload) => {
                            // Stop the queue: a 288-run matrix should
                            // not grind on for its full wall time after
                            // one run has already failed.
                            cancelled.store(true, Ordering::Relaxed);
                            std::panic::resume_unwind(payload);
                        }
                    };
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        // Join every worker before propagating, and rethrow the original
        // payload (the lowest-indexed worker's) rather than the scope's
        // generic "a scoped thread panicked".
        let mut first_panic = None;
        for w in workers {
            if let Err(payload) = w.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task stored its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order_whatever_the_worker_count() {
        let serial: Vec<usize> = run_ordered(1, (0..64).map(|i| move || i * i).collect());
        for jobs in [2, 3, 8, 64, 1000] {
            let parallel: Vec<usize> = run_ordered(jobs, (0..64).map(|i| move || i * i).collect());
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_and_empty_task_lists_are_fine() {
        let none: Vec<u8> = run_ordered(4, Vec::<fn() -> u8>::new());
        assert!(none.is_empty());
        let one: Vec<u8> = run_ordered(0, vec![|| 7u8]);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let tasks: Vec<_> = counters
            .iter()
            .map(|c| move || c.fetch_add(1, Ordering::Relaxed))
            .collect();
        let _ = run_ordered(7, tasks);
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn a_panicking_task_propagates() {
        let _ = run_ordered(
            2,
            vec![
                Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                Box::new(|| panic!("boom")),
            ],
        );
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}

//! Sensitivity sweeps: paper-style figures beyond the paper's testbed.
//!
//! The paper plots speedup for 1–8 processors on one FDDI ring.  A sweep
//! generalises the x-axis: [`Vary::Procs`] extends the speedup curves past
//! 8 processes, [`Vary::Bandwidth`] and [`Vary::Latency`] hold the
//! processor count fixed and scale one field of the interconnect model
//! (×0.25 … ×4), answering "how much of each system's advantage is the
//! network?" per workload × {TreadMarks-LRC, TMK-HLRC, PVM}.
//!
//! A sweep is just a set of [`RunKey`]s — the interconnect lives *in* the
//! key — so [`run_matrix`](crate::run_matrix) fans the whole sensitivity
//! matrix across cores exactly as it fans the reproduction, and the
//! rendered figures are byte-identical for every `--jobs` value.

use crate::{proc_series, Preset, RunKey, RunMatrix};
use apps::runner::System;
use apps::Workload;
use cluster::{NetModel, SpanCat};

/// Which axis a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vary {
    /// Processor count: the paper's speedup figures, extended past 8.
    Procs,
    /// Interconnect bandwidth, scaled ×0.25 … ×4 around the base model.
    Bandwidth,
    /// Interconnect latency, scaled ×0.25 … ×4 around the base model.
    Latency,
    /// Scheduler island count, over [`ISLAND_WIDTHS`].  Unlike the other
    /// axes this varies an *execution strategy*, not the model: the driver
    /// computes the matrix once per width and asserts bit-identity, so the
    /// figure's rows are identical by construction — the sweep renders the
    /// engine's execution-invariance guarantee.
    Islands,
}

impl Vary {
    /// Human-readable axis name used in figure headers.
    pub fn axis(&self) -> &'static str {
        match self {
            Vary::Procs => "processes",
            Vary::Bandwidth => "bandwidth",
            Vary::Latency => "latency",
            Vary::Islands => "islands",
        }
    }

    /// What the figure plots on the y axis.
    pub fn measure(&self) -> &'static str {
        match self {
            Vary::Procs => "speedup",
            Vary::Bandwidth | Vary::Latency | Vary::Islands => "runtime (s)",
        }
    }
}

impl std::str::FromStr for Vary {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "procs" | "processes" | "nprocs" => Ok(Vary::Procs),
            "bandwidth" | "bw" => Ok(Vary::Bandwidth),
            "latency" | "lat" => Ok(Vary::Latency),
            "islands" => Ok(Vary::Islands),
            other => Err(format!(
                "unknown sweep axis '{other}'; known axes: procs, bandwidth, latency, islands"
            )),
        }
    }
}

/// The multipliers a bandwidth or latency sweep applies to the base model.
pub const SCALES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// The island widths a `--vary islands` sweep runs the matrix at.
pub const ISLAND_WIDTHS: [usize; 3] = [1, 2, 4];

/// Width of the rendered ASCII bars, in characters.
const BAR_WIDTH: usize = 50;

/// A fully specified sensitivity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The varied axis.
    pub vary: Vary,
    /// Problem-size preset of every run.
    pub preset: Preset,
    /// The base interconnect model the sweep perturbs (or, for
    /// [`Vary::Procs`], simply runs on).
    pub base: NetModel,
    /// Workloads swept, in figure order.
    pub workloads: Vec<Workload>,
    /// Systems compared at every point.
    pub systems: Vec<System>,
    /// For [`Vary::Procs`]: the top of the processor series.  For the
    /// network axes: the fixed processor count of every point.
    pub max_procs: usize,
}

/// One x-axis position of a sweep: a label plus the cluster model behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The x-axis tick label (`"16"`, `"0.5x (5250000 B/s)"`, ...).
    pub label: String,
    /// The interconnect at this point.
    pub net: NetModel,
    /// The processor count at this point.
    pub nprocs: usize,
}

impl Sweep {
    /// The x-axis positions of this sweep, in plotting order.
    pub fn points(&self) -> Vec<SweepPoint> {
        match self.vary {
            Vary::Procs => proc_series(self.max_procs)
                .into_iter()
                .map(|n| SweepPoint {
                    label: n.to_string(),
                    net: self.base,
                    nprocs: n,
                })
                .collect(),
            Vary::Bandwidth => {
                let base = self.base.config(self.max_procs).bandwidth;
                SCALES
                    .iter()
                    .map(|&scale| {
                        let value = base * scale;
                        let mut net = self.base;
                        net.overrides.bandwidth = Some(value);
                        SweepPoint {
                            label: format!("{scale}x ({value} B/s)"),
                            net,
                            nprocs: self.max_procs,
                        }
                    })
                    .collect()
            }
            Vary::Latency => {
                let base = self.base.config(self.max_procs).latency;
                SCALES
                    .iter()
                    .map(|&scale| {
                        let value = base * scale;
                        let mut net = self.base;
                        net.overrides.latency = Some(value);
                        SweepPoint {
                            label: format!("{scale}x ({value} s)"),
                            net,
                            nprocs: self.max_procs,
                        }
                    })
                    .collect()
            }
            // Every point shares one run key: the island width is an
            // execution knob outside the run identity.  The driver computes
            // a matrix per width and asserts they agree bit for bit; the
            // rendered rows then *are* that guarantee, one per width.
            Vary::Islands => ISLAND_WIDTHS
                .iter()
                .map(|&w| SweepPoint {
                    label: w.to_string(),
                    net: self.base,
                    nprocs: self.max_procs,
                })
                .collect(),
        }
    }

    /// Every run the sweep needs: workloads × points × systems.
    pub fn keys(&self) -> Vec<RunKey> {
        let points = self.points();
        let mut keys = Vec::new();
        for &w in &self.workloads {
            for point in &points {
                for &sys in &self.systems {
                    keys.push(RunKey::new(w, sys, point.net, point.nprocs));
                }
            }
        }
        keys
    }

    /// Render the sweep's figures from a computed matrix.
    ///
    /// One figure per workload: a table (x-axis rows, one column per
    /// system) followed by a horizontal-bar chart per system, bars scaled
    /// to the workload's best value so the systems stay visually
    /// comparable.  Rendering is a pure function of the matrix, so the
    /// output is byte-identical across reruns and `--jobs` values.
    ///
    /// # Panics
    ///
    /// Panics if a run is missing from the matrix or a parallel checksum
    /// disagrees with its sequential baseline.
    pub fn render(&self, matrix: &RunMatrix) -> String {
        let points = self.points();
        let label_width = points
            .iter()
            .map(|p| p.label.len())
            .max()
            .unwrap_or(0)
            .max(self.vary.axis().len());
        let mut out = String::new();
        out.push_str(&format!(
            "Sweep: {} vs {} — net {}, {:?} preset{}\n",
            self.vary.measure(),
            self.vary.axis(),
            self.base.label(),
            matrix.preset,
            match self.vary {
                Vary::Procs => String::new(),
                _ => format!(", {} processes", self.max_procs),
            },
        ));
        for &w in &self.workloads {
            let seq = matrix.sequential(w);
            out.push_str(&format!(
                "\n{} — {} vs {} (sequential {:.2}s)\n",
                w.name(),
                self.vary.measure(),
                self.vary.axis(),
                seq.time
            ));
            // The measured value per (point, system) — and, when the matrix
            // was computed at an observability level, the cell's p99
            // lock-acquire latency — in plotting order.
            let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.systems.len());
            let mut p99_lock: Vec<Vec<String>> = Vec::with_capacity(self.systems.len());
            for &sys in &self.systems {
                let mut column = Vec::with_capacity(points.len());
                let mut p99s = Vec::with_capacity(points.len());
                for point in &points {
                    let key = RunKey::new(w, sys, point.net, point.nprocs);
                    let run = matrix.run(&key);
                    assert!(
                        (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                        "{}: {sys} checksum mismatch at {} ({})",
                        w.name(),
                        point.label,
                        point.net.label(),
                    );
                    column.push(match self.vary {
                        Vary::Procs => run.speedup(seq.time),
                        Vary::Bandwidth | Vary::Latency | Vary::Islands => run.time,
                    });
                    // "-" when the run recorded nothing (observability off,
                    // or a system with no remote lock acquires).
                    p99s.push(
                        run.obs
                            .as_ref()
                            .map(|o| o.merged_hist(SpanCat::LockWait))
                            .filter(|h| !h.is_empty())
                            .map(|h| {
                                let p99 = h.value_at_quantile(0.99);
                                format!("{}.{:03}", p99 / 1000, p99 % 1000)
                            })
                            .unwrap_or_else(|| "-".to_string()),
                    );
                }
                columns.push(column);
                p99_lock.push(p99s);
            }
            // The table: per system, the measure plus the cell's p99
            // lock-acquire latency (virtual µs, from the merged histogram).
            out.push_str(&format!("  {:>label_width$}", self.vary.axis()));
            for sys in &self.systems {
                out.push_str(&format!(" {:>12} {:>12}", sys.to_string(), "p99-lock-us"));
            }
            out.push('\n');
            for (pi, point) in points.iter().enumerate() {
                out.push_str(&format!("  {:>label_width$}", point.label));
                for (column, p99s) in columns.iter().zip(&p99_lock) {
                    out.push_str(&format!(" {:>12.2} {:>12}", column[pi], p99s[pi]));
                }
                out.push('\n');
            }
            // The bars, all scaled to the workload's best value.
            let best = columns
                .iter()
                .flatten()
                .copied()
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE);
            for (si, sys) in self.systems.iter().enumerate() {
                out.push_str(&format!("  {} {}\n", sys, self.vary.measure()));
                for (pi, point) in points.iter().enumerate() {
                    let value = columns[si][pi];
                    let len = ((value / best) * BAR_WIDTH as f64).round() as usize;
                    out.push_str(&format!(
                        "  {:>label_width$} {:<BAR_WIDTH$} {:.2}\n",
                        point.label,
                        "#".repeat(len.min(BAR_WIDTH)),
                        value
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_matrix;
    use cluster::NetPreset;
    use treadmarks::ProtocolKind;

    fn tiny_sweep(vary: Vary) -> Sweep {
        Sweep {
            vary,
            preset: Preset::Tiny,
            base: NetModel::preset(NetPreset::Fddi),
            workloads: vec![Workload::Ep],
            systems: vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm],
            max_procs: match vary {
                Vary::Procs => 16,
                _ => 4,
            },
        }
    }

    #[test]
    fn procs_sweep_extends_past_eight() {
        let sweep = tiny_sweep(Vary::Procs);
        let points = sweep.points();
        assert_eq!(points.last().unwrap().nprocs, 16);
        assert_eq!(points.last().unwrap().label, "16");
        assert!(points.iter().all(|p| p.net == sweep.base));
        assert_eq!(sweep.keys().len(), points.len() * 2);
    }

    #[test]
    fn bandwidth_sweep_scales_only_bandwidth() {
        let sweep = tiny_sweep(Vary::Bandwidth);
        let points = sweep.points();
        assert_eq!(points.len(), SCALES.len());
        let base = sweep.base.config(4);
        for (point, scale) in points.iter().zip(SCALES) {
            let cfg = point.net.config(point.nprocs);
            assert_eq!(cfg.bandwidth, base.bandwidth * scale);
            assert_eq!(cfg.latency, base.latency);
            assert_eq!(point.nprocs, 4);
        }
        // The x1.0 point is still a *distinct* key from the bare preset
        // (explicit override), so a sweep never collides with a plain run.
        assert_ne!(points[2].net, sweep.base);
    }

    #[test]
    fn rendered_sweep_is_deterministic_and_shows_bars() {
        let sweep = tiny_sweep(Vary::Latency);
        let keys = sweep.keys();
        let a = sweep.render(&run_matrix(Preset::Tiny, &sweep.workloads, &keys, 1));
        let b = sweep.render(&run_matrix(Preset::Tiny, &sweep.workloads, &keys, 4));
        assert_eq!(a, b, "sweep rendering must not depend on the job count");
        assert!(a.contains("EP — runtime (s) vs latency"), "{a}");
        assert!(a.contains('#'), "no bars rendered:\n{a}");
        assert!(a.contains("0.25x"), "{a}");
    }

    #[test]
    fn metrics_matrix_fills_the_p99_lock_column() {
        let sweep = Sweep {
            vary: Vary::Procs,
            preset: Preset::Tiny,
            base: NetModel::preset(NetPreset::Fddi),
            workloads: vec![Workload::Tsp], // lock-heavy: the column has data
            systems: vec![System::TreadMarks(ProtocolKind::Lrc)],
            max_procs: 4,
        };
        let keys = sweep.keys();
        let off = sweep.render(&run_matrix(Preset::Tiny, &sweep.workloads, &keys, 2));
        let metrics = sweep.render(&crate::run_matrix_obs(
            Preset::Tiny,
            &sweep.workloads,
            &keys,
            2,
            cluster::ObsLevel::Metrics,
        ));
        assert!(off.contains("p99-lock-us"));
        // Off: every cell renders "-".  Metrics: at least one cell at >1
        // process has a real latency, and the measure columns are unchanged
        // (recording must not perturb the simulation).
        assert!(off.contains(" -"));
        let digits = metrics
            .lines()
            .filter(|l| l.contains('.') && !l.contains('#'))
            .count();
        assert!(digits > 0, "no p99 latencies rendered:\n{metrics}");
        let strip = |s: &str| {
            s.lines()
                .map(|l| l.split_whitespace().take(2).collect::<Vec<_>>().join(" "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&off), strip(&metrics));
    }

    #[test]
    fn vary_parses_its_aliases() {
        assert_eq!("procs".parse(), Ok(Vary::Procs));
        assert_eq!("BW".parse(), Ok(Vary::Bandwidth));
        assert_eq!("latency".parse(), Ok(Vary::Latency));
        assert_eq!("islands".parse(), Ok(Vary::Islands));
        assert!("cheese".parse::<Vary>().is_err());
        assert_eq!(Vary::Procs.measure(), "speedup");
        assert_eq!(Vary::Bandwidth.axis(), "bandwidth");
        assert_eq!(Vary::Islands.axis(), "islands");
        assert_eq!(Vary::Islands.measure(), "runtime (s)");
    }

    #[test]
    fn islands_sweep_points_share_one_run_key() {
        let sweep = tiny_sweep(Vary::Islands);
        let points = sweep.points();
        assert_eq!(points.len(), ISLAND_WIDTHS.len());
        assert_eq!(points[0].label, "1");
        assert_eq!(points.last().unwrap().label, "4");
        // Every width runs the *same* simulation — the island count is an
        // execution knob outside the run identity — so all points carry the
        // base net at the fixed processor count.
        assert!(points
            .iter()
            .all(|p| p.net == sweep.base && p.nprocs == sweep.max_procs));
        let keys = sweep.keys();
        assert_eq!(keys.len(), points.len() * sweep.systems.len());
        assert!(keys.iter().all(|k| keys[0..sweep.systems.len()].contains(k)));
        // The rendered figure shows one identical row per width.
        let matrix = run_matrix(Preset::Tiny, &sweep.workloads, &keys, 2);
        let rendered = sweep.render(&matrix);
        assert!(rendered.contains("runtime (s) vs islands"), "{rendered}");
        let row_of = |label: &str| {
            rendered
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("{label} ")) && !l.contains('#'))
                .map(|l| l.trim_start().trim_start_matches(label).to_string())
                .unwrap_or_else(|| panic!("no row for width {label}:\n{rendered}"))
        };
        assert_eq!(row_of("1"), row_of("2"));
        assert_eq!(row_of("2"), row_of("4"));
    }
}

//! Resolution of declarative scenario files into harness terms.
//!
//! `cluster::scenario` owns the *file format* and the network-model half of
//! a scenario; this module resolves the harness half — the strings naming a
//! problem-size preset, a workload subset and a system subset — into
//! [`Preset`], [`Workload`] and [`System`] values, with defaults filled in.
//! `reproduce --scenario FILE` goes through [`ResolvedScenario::resolve`];
//! explicit CLI flags then override individual fields.

use crate::{Preset, RunTuning};
use apps::runner::System;
use apps::Workload;
use cluster::{NetModel, Scenario};
use treadmarks::ProtocolKind;

/// A scenario with every harness-level string resolved and every default
/// filled in: ready to drive a reproduction or a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedScenario {
    /// Display name (empty if the file named none).
    pub name: String,
    /// The interconnect model (preset plus overrides).
    pub net: NetModel,
    /// Top processor count of the figures / the Table 2 count.
    pub max_procs: usize,
    /// Problem-size preset.
    pub preset: Preset,
    /// Workloads to run, in figure order.
    pub workloads: Vec<Workload>,
    /// Systems to compare, in [`System::all`] order.
    pub systems: Vec<System>,
    /// Schedule seed, tie-break cap and fault plan (all default unless the
    /// file carries `sched_seed` / `tie_limit` / `[fault]` keys), applied
    /// to every run the scenario drives — this is how a fuzz reproducer
    /// replays its finding.
    pub tuning: RunTuning,
    /// Scheduler island count (`islands` key, default 1).  An execution
    /// strategy, not part of the run identity: every width is bit-identical.
    pub islands: usize,
    /// Island worker threads inside each horizon window (`island_threads`
    /// key, default 1).  Like `islands`: execution strategy, bit-identical
    /// at every thread count.
    pub island_threads: usize,
}

/// Look a workload up by its harness name (`EP`, `SOR-Zero`, ...),
/// case-insensitively.
pub fn workload_by_name(name: &str) -> Result<Workload, String> {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
            format!(
                "unknown workload '{name}'; known workloads: {}",
                known.join(", ")
            )
        })
}

/// Look a system up by name: a DSM protocol backend (`lrc`, `hlrc`, `sc`,
/// `treadmarks` for the paper's LRC) or `pvm`.
pub fn system_by_name(name: &str) -> Result<System, String> {
    match name.to_ascii_lowercase().as_str() {
        "pvm" => Ok(System::Pvm),
        "tmk-hlrc" => Ok(System::TreadMarks(ProtocolKind::Hlrc)),
        "tmk-sc" => Ok(System::TreadMarks(ProtocolKind::Sc)),
        other => match other.parse::<ProtocolKind>() {
            Ok(kind) => Ok(System::TreadMarks(kind)),
            Err(_) => Err(format!(
                "unknown system '{other}'; known systems: lrc, hlrc, sc, pvm"
            )),
        },
    }
}

impl ResolvedScenario {
    /// Resolve a parsed scenario file, filling absent fields from
    /// `default_preset` and `default_procs`.  An empty workload or system
    /// list means "all"; duplicates are dropped and order is normalised
    /// (figure order for workloads, [`System::all`] order for systems) so
    /// equal subsets always render identically.
    pub fn resolve(
        s: &Scenario,
        default_preset: Preset,
        default_procs: usize,
    ) -> Result<Self, String> {
        let preset = match &s.preset {
            None => default_preset,
            Some(name) => name.parse()?,
        };
        let workloads: Vec<Workload> = if s.workloads.is_empty() {
            Workload::all().to_vec()
        } else {
            let mut subset = Vec::new();
            for name in &s.workloads {
                subset.push(workload_by_name(name)?);
            }
            // Filtering the (duplicate-free) master list both orders and
            // deduplicates the subset.
            Workload::all()
                .into_iter()
                .filter(|w| subset.contains(w))
                .collect()
        };
        let systems: Vec<System> = if s.systems.is_empty() {
            System::all().to_vec()
        } else {
            let mut subset = Vec::new();
            for name in &s.systems {
                subset.push(system_by_name(name)?);
            }
            System::all()
                .into_iter()
                .filter(|sys| subset.contains(sys))
                .collect()
        };
        Ok(ResolvedScenario {
            name: s.name.clone(),
            net: s.net_model(),
            max_procs: s.procs.unwrap_or(default_procs),
            preset,
            workloads,
            systems,
            tuning: RunTuning {
                sched_seed: s.sched_seed.unwrap_or(0),
                tie_limit: s.tie_limit,
                fault: s.fault.clone().unwrap_or_default(),
            },
            islands: s.islands.unwrap_or(1),
            island_threads: s.island_threads.unwrap_or(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::NetPreset;

    #[test]
    fn defaults_fill_an_empty_scenario() {
        let r = ResolvedScenario::resolve(&Scenario::default(), Preset::Scaled, 8).unwrap();
        assert_eq!(r.preset, Preset::Scaled);
        assert_eq!(r.max_procs, 8);
        assert_eq!(r.net, NetModel::preset(NetPreset::Fddi));
        assert_eq!(r.workloads, Workload::all().to_vec());
        assert_eq!(r.systems, System::all().to_vec());
        assert!(r.tuning.is_default());
        assert_eq!(r.islands, 1);
        assert_eq!(r.island_threads, 1);
    }

    #[test]
    fn seeds_and_fault_plans_resolve_onto_the_tuning() {
        let s =
            Scenario::parse_toml("sched_seed = 7\ntie_limit = 3\n[fault]\ndrop = 0.01").unwrap();
        let r = ResolvedScenario::resolve(&s, Preset::Tiny, 8).unwrap();
        assert_eq!(r.tuning.sched_seed, 7);
        assert_eq!(r.islands, 1);
        assert_eq!(r.tuning.tie_limit, Some(3));
        assert_eq!(r.tuning.fault.drop, 0.01);
        assert!(!r.tuning.is_default());
    }

    #[test]
    fn the_islands_key_resolves_onto_the_scenario() {
        let s = Scenario::parse_toml("islands = 4\nisland_threads = 2").unwrap();
        let r = ResolvedScenario::resolve(&s, Preset::Tiny, 8).unwrap();
        assert_eq!(r.islands, 4);
        assert_eq!(r.island_threads, 2);
        assert!(r.tuning.is_default());
    }

    #[test]
    fn subsets_resolve_normalised_and_deduplicated() {
        let s = Scenario {
            preset: Some("tiny".into()),
            procs: Some(16),
            // Out of figure order, with a duplicate and mixed case.
            workloads: vec!["Water-288".into(), "ep".into(), "EP".into()],
            systems: vec!["pvm".into(), "LRC".into()],
            ..Scenario::default()
        };
        let r = ResolvedScenario::resolve(&s, Preset::Scaled, 8).unwrap();
        assert_eq!(r.preset, Preset::Tiny);
        assert_eq!(r.max_procs, 16);
        assert_eq!(r.workloads, vec![Workload::Ep, Workload::Water288]);
        assert_eq!(
            r.systems,
            vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm]
        );
    }

    #[test]
    fn unknown_names_are_reported_with_the_candidates() {
        let s = Scenario {
            workloads: vec!["NOPE".into()],
            ..Scenario::default()
        };
        let e = ResolvedScenario::resolve(&s, Preset::Tiny, 8).unwrap_err();
        assert!(e.contains("unknown workload 'NOPE'"), "{e}");
        assert!(e.contains("EP"), "{e}");
        assert!(system_by_name("mpi").is_err());
        assert!("nano".parse::<Preset>().is_err());
    }
}

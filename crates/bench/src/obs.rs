//! Rendering the engine's observability output: Chrome-trace / Perfetto JSON
//! export, the latency-histogram report, and the virtual-time profile.
//!
//! Everything here is a pure function of a computed [`RunMatrix`] whose runs
//! carry [`AppRun::obs`] recordings: no clocks, no host state, integer
//! formatting only.  Two matrices computed from the same request — serially
//! or on any `--jobs` width — therefore render to byte-identical traces and
//! reports, which is what the determinism test battery diffs.
//!
//! The trace format is the Chrome trace-event JSON array form (the format
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly): one *process* track per matrix run, one *thread* track per
//! simulated rank, `B`/`E` duration events for the engine's spans and `i`
//! instant events for message sends, deliveries, consumes and arbiter
//! grants.  Timestamps are virtual microseconds rendered from the integer
//! virtual-nanosecond event stamps as `<µs>.<ns%1000>`, so no float
//! formatting is involved anywhere.

use crate::RunMatrix;
use apps::runner::AppRun;
use cluster::obs::EventKind;
use cluster::{Histogram, SpanCat};
use std::fmt::Write as _;

/// Render an integer virtual-nanosecond stamp as a trace timestamp in
/// microseconds (`123456` ns → `"123.456"`): pure integer formatting, the
/// decimal fraction being exactly the sub-microsecond nanoseconds.
fn ts_us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The stable track label of run `key` in the exported trace.
fn run_label(key: &crate::RunKey) -> String {
    format!(
        "{}/{}/{}/p{}",
        key.workload.name(),
        key.system,
        key.net.label(),
        key.nprocs
    )
}

/// Export every traced run of the matrix as one Chrome-trace JSON document.
///
/// Runs appear in matrix request order as trace *processes* (pid = run
/// ordinal, labelled `workload/system/net/pN` via `process_name` metadata);
/// simulated ranks appear as *threads*.  Runs without recordings (computed
/// below [`cluster::ObsLevel::Trace`]) are skipped.  The output is
/// deterministic byte-for-byte: event order is per-process emission order
/// followed by the central transport stream in arbiter-serialised order,
/// and all numbers are formatted from integers.
pub fn chrome_trace_json(matrix: &RunMatrix) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (pid, (key, run)) in matrix.runs().enumerate() {
        let Some(obs) = &run.obs else { continue };
        lines.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            esc(&run_label(key))
        ));
        for rank in 0..obs.procs.len() {
            lines.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {rank}, \
                 \"args\": {{\"name\": \"rank {rank}\"}}}}"
            ));
        }
        for po in &obs.procs {
            for ev in &po.events {
                match &ev.kind {
                    EventKind::SpanBegin { cat, arg } => lines.push(format!(
                        "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"B\", \"ts\": {}, \
                         \"pid\": {pid}, \"tid\": {}, \"args\": {{\"arg\": {arg}}}}}",
                        cat.name(),
                        ts_us(ev.t_ns),
                        ev.rank
                    )),
                    EventKind::SpanEnd { cat } => lines.push(format!(
                        "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"E\", \"ts\": {}, \
                         \"pid\": {pid}, \"tid\": {}}}",
                        cat.name(),
                        ts_us(ev.t_ns),
                        ev.rank
                    )),
                    // Send/Consume/Grant live on the central stream, not here.
                    _ => unreachable!("per-process sink records span events only"),
                }
            }
        }
        for ev in &obs.central {
            match &ev.kind {
                EventKind::Send {
                    dst,
                    tag,
                    bytes,
                    datagrams,
                    arrival_ns,
                } => {
                    lines.push(format!(
                        "{{\"name\": \"send\", \"cat\": \"msg\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {}, \"pid\": {pid}, \"tid\": {}, \"args\": {{\"dst\": {dst}, \
                         \"tag\": {tag}, \"bytes\": {bytes}, \"datagrams\": {datagrams}}}}}",
                        ts_us(ev.t_ns),
                        ev.rank
                    ));
                    // The delivery instant on the destination track, so a
                    // message's wire flight is visible end to end.
                    lines.push(format!(
                        "{{\"name\": \"deliver\", \"cat\": \"msg\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {}, \"pid\": {pid}, \"tid\": {dst}, \"args\": {{\"src\": {}, \
                         \"tag\": {tag}}}}}",
                        ts_us(*arrival_ns),
                        ev.rank
                    ));
                }
                EventKind::Consume {
                    src,
                    tag,
                    arrival_ns,
                } => lines.push(format!(
                    "{{\"name\": \"consume\", \"cat\": \"msg\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {}, \"pid\": {pid}, \"tid\": {}, \"args\": {{\"src\": {src}, \
                     \"tag\": {tag}, \"arrival_ns\": {arrival_ns}}}}}",
                    ts_us(ev.t_ns),
                    ev.rank
                )),
                EventKind::Grant => lines.push(format!(
                    "{{\"name\": \"grant\", \"cat\": \"sched\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {}, \"pid\": {pid}, \"tid\": {}}}",
                    ts_us(ev.t_ns),
                    ev.rank
                )),
                EventKind::Fault {
                    kind,
                    dst,
                    delay_ns,
                } => lines.push(format!(
                    "{{\"name\": \"fault:{}\", \"cat\": \"fault\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {}, \"pid\": {pid}, \"tid\": {}, \"args\": {{\"dst\": {dst}, \
                     \"delay_ns\": {delay_ns}}}}}",
                    kind.name(),
                    ts_us(ev.t_ns),
                    ev.rank
                )),
                _ => unreachable!("central stream holds transport/sched events only"),
            }
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Format a virtual-nanosecond duration in microseconds with nanosecond
/// fraction (integer formatting, deterministic).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// `p50/p99/p999` of a histogram, in microseconds, or `-` when empty.
fn quantile_triple(h: &Histogram) -> String {
    if h.is_empty() {
        "-".to_string()
    } else {
        format!(
            "{}/{}/{}",
            us(h.value_at_quantile(0.50)),
            us(h.value_at_quantile(0.99)),
            us(h.value_at_quantile(0.999))
        )
    }
}

/// Percent of `part` in `total` with one decimal, via integer arithmetic
/// (`1234 / 10000` → `"12.3"`); `0.0` when `total` is zero.
fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        return "0.0".to_string();
    }
    let tenths = (part as u128 * 1000 / total as u128) as u64;
    format!("{}.{}", tenths / 10, tenths % 10)
}

/// The latency-histogram section of `--metrics`: per traced run, the
/// merged-across-ranks p50/p99/p999 (µs) of lock-acquire latency
/// ([`SpanCat::LockWait`], the full remote-acquire wait), fault service
/// time ([`SpanCat::Fault`]), and barrier skew ([`SpanCat::BarrierWait`] —
/// the arrival-to-release wait, which is exactly how far ahead of the last
/// arrival the process reached the barrier).
pub fn histogram_report(matrix: &RunMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Latency histograms (virtual µs, p50/p99/p999 across ranks) =="
    );
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>30} {:>30} {:>30}",
        "run", "spans", "lock-acquire", "fault-service", "barrier-skew"
    );
    for (key, run) in matrix.runs() {
        let Some(obs) = &run.obs else { continue };
        let lock = obs.merged_hist(SpanCat::LockWait);
        let fault = obs.merged_hist(SpanCat::Fault);
        let barrier = obs.merged_hist(SpanCat::BarrierWait);
        let spans: u64 = SpanCat::ALL
            .iter()
            .map(|&c| obs.merged_hist(c).count())
            .sum();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>30} {:>30} {:>30}",
            run_label(key),
            spans,
            quantile_triple(&lock),
            quantile_triple(&fault),
            quantile_triple(&barrier)
        );
    }
    out
}

/// Self time (ns) of each category plus the compute residual for one rank
/// of a run: `(compute_ns, [self_ns; NCATS], total_ns)`.
fn rank_profile(run: &AppRun, rank: usize) -> (u64, [u64; cluster::obs::NCATS], u64) {
    let po = &run.obs.as_ref().expect("profiled run has obs").procs[rank];
    let total = cluster::obs::ns(run.proc_stats[rank].finish_time);
    let attributed = po.total_attributed_ns();
    (total.saturating_sub(attributed), po.self_ns, total)
}

/// The virtual-time profile section of `--metrics`: for every traced run,
/// per-rank rows attributing each process's finish time to compute (the
/// residual) and the self time of every [`SpanCat`], followed by an `all`
/// row aggregating the ranks.  Percentages use integer arithmetic so the
/// report is byte-deterministic.
///
/// This is the reproduction of the paper's time-breakdown figure: the
/// non-compute columns are exactly the overhead components the paper
/// charges to each system (fault stalls, lock and barrier waits, GC,
/// diff flushes, receive waits).
pub fn profile_report(matrix: &RunMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Virtual-time profile (% of process time) ==");
    let _ = write!(out, "{:<44} {:>5} {:>8}", "run", "rank", "compute");
    for cat in SpanCat::ALL {
        let _ = write!(out, " {:>12}", cat.name());
    }
    let _ = writeln!(out);
    for (key, run) in matrix.runs() {
        let Some(obs) = &run.obs else { continue };
        let mut agg_self = [0u64; cluster::obs::NCATS];
        let mut agg_compute = 0u64;
        let mut agg_total = 0u64;
        for rank in 0..obs.procs.len() {
            let (compute, self_ns, total) = rank_profile(run, rank);
            agg_compute += compute;
            agg_total += total;
            for (a, s) in agg_self.iter_mut().zip(self_ns) {
                *a += s;
            }
            let _ = write!(
                out,
                "{:<44} {:>5} {:>8}",
                run_label(key),
                rank,
                pct(compute, total)
            );
            for v in self_ns {
                let _ = write!(out, " {:>12}", pct(v, total));
            }
            let _ = writeln!(out);
        }
        let _ = write!(
            out,
            "{:<44} {:>5} {:>8}",
            run_label(key),
            "all",
            pct(agg_compute, agg_total)
        );
        for v in agg_self {
            let _ = write!(out, " {:>12}", pct(v, agg_total));
        }
        let _ = writeln!(out);
    }
    out
}

/// The full `--metrics` report: histograms, then the profile.
pub fn metrics_report(matrix: &RunMatrix) -> String {
    let mut out = histogram_report(matrix);
    out.push('\n');
    out.push_str(&profile_report(matrix));
    out
}

/// Structural validation of a JSON document: non-empty, starts with `{` or
/// `[`, every brace/bracket balanced outside string literals, every string
/// literal and escape closed, nothing after the root value.  (CI
/// additionally runs the trace through a full JSON parser; this check makes
/// the test suite self-contained.)
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut root_closed = false;
    let trimmed = s.trim_start();
    if !trimmed.starts_with('{') && !trimmed.starts_with('[') {
        return Err("document does not start with '{' or '['".to_string());
    }
    for (i, c) in s.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                if root_closed {
                    return Err(format!("content after root value at byte {i}"));
                }
                stack.push(c);
            }
            '}' | ']' => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("unmatched '{c}' at byte {i}"))?;
                let want = if open == '{' { '}' } else { ']' };
                if c != want {
                    return Err(format!("mismatched '{c}' at byte {i}, expected '{want}'"));
                }
                if stack.is_empty() {
                    root_closed = true;
                }
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string literal".to_string());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed scopes at end of input", stack.len()));
    }
    if !root_closed {
        return Err("no root value".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_matrix_obs, Preset, RunKey};
    use apps::runner::System;
    use apps::Workload;
    use cluster::ObsLevel;
    use treadmarks::ProtocolKind;

    fn tiny_traced_matrix(jobs: usize) -> RunMatrix {
        let keys = [
            RunKey::fddi(Workload::Ep, System::TreadMarks(ProtocolKind::Lrc), 2),
            RunKey::fddi(Workload::Ep, System::Pvm, 2),
        ];
        run_matrix_obs(Preset::Tiny, &[], &keys, jobs, ObsLevel::Trace)
    }

    #[test]
    fn trace_is_valid_and_deterministic_across_jobs() {
        let a = chrome_trace_json(&tiny_traced_matrix(1));
        let b = chrome_trace_json(&tiny_traced_matrix(4));
        assert_eq!(a, b, "trace differs between --jobs 1 and --jobs 4");
        validate_json(&a).expect("trace is structurally valid JSON");
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("EP/PVM/fddi/p2"));
        assert!(a.contains("\"ph\": \"B\""));
        assert!(a.contains("\"name\": \"send\""));
        assert!(a.contains("\"name\": \"deliver\""));
        assert!(a.contains("\"name\": \"grant\""));
    }

    #[test]
    fn metrics_report_is_deterministic_and_covers_every_run() {
        let a = metrics_report(&tiny_traced_matrix(1));
        let b = metrics_report(&tiny_traced_matrix(4));
        assert_eq!(a, b);
        assert!(a.contains("lock-acquire"));
        assert!(a.contains("EP/TreadMarks/fddi/p2"));
        // Per-rank rows and the aggregate row are both present.
        assert!(a.contains("  all"));
        assert!(a.contains("barrier-wait"));
    }

    #[test]
    fn untraced_matrix_renders_an_empty_trace() {
        let keys = [RunKey::fddi(Workload::Ep, System::Pvm, 2)];
        let m = crate::run_matrix(Preset::Tiny, &[], &keys, 1);
        let trace = chrome_trace_json(&m);
        validate_json(&trace).expect("empty trace is still valid JSON");
        assert!(!trace.contains("process_name"));
    }

    #[test]
    fn ts_formatting_is_pure_integer() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(123_456_789), "123456.789");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2, {\"b\": \"x\\\"y\"}]}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("plain").is_err());
        assert!(validate_json("{\"a\": 1").is_err());
        assert!(validate_json("{\"a\": 1]}").is_err());
        assert!(validate_json("{\"a\": \"unterminated}").is_err());
        assert!(validate_json("{} {}").is_err());
    }

    #[test]
    fn pct_is_integer_exact() {
        assert_eq!(pct(0, 100), "0.0");
        assert_eq!(pct(1, 1000), "0.1");
        assert_eq!(pct(123, 1000), "12.3");
        assert_eq!(pct(1000, 1000), "100.0");
        assert_eq!(pct(5, 0), "0.0");
    }
}

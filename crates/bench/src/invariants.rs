//! Reusable run invariants: the checks every execution owes the user
//! regardless of schedule or fault plan, promoted out of the
//! protocol-conformance test battery so the fuzzing harness
//! ([`crate::fuzz`]) can apply them to every `(app, system, seed)` point it
//! explores.
//!
//! The invariants come in two layers:
//!
//! * **Run-level** — [`check_run`] / [`verdict`] classify a completed (or
//!   failed) application run: the checksum must agree with the sequential
//!   baseline, the race detector (when enabled) must be clean, and a
//!   structured [`RunFailure`] maps to the matching [`RunVerdict`] —
//!   deadlock verdicts carry the wait graph *and the fault context* (which
//!   peer crashed, which partition was active), so a hang caused by an
//!   injected fault names its cause.  [`cross_backend_equality`] adds the
//!   conformance suite's observational-equivalence check: every DSM backend
//!   must compute the bit-identical answer.
//!
//! * **Micro** — [`check_release_acquire`] and [`check_barrier_visibility`]
//!   run the conformance suite's visibility programs (lock-token passing,
//!   multi-writer barrier publication) under an *arbitrary*
//!   [`ClusterConfig`] — fault plan, schedule seed and all — and return a
//!   verdict instead of asserting, so a seeded schedule or a lossy link
//!   that breaks coherence is a reportable finding, not a harness panic.

use apps::runner::{AppRun, SeqRun, System};
use cluster::{Cluster, ClusterConfig, RunFailure};
use treadmarks::{ProtocolKind, Tmk};

/// The classification of one run under the invariant battery.
#[derive(Debug, Clone, PartialEq)]
pub enum RunVerdict {
    /// The run completed and every invariant held.
    Pass,
    /// Every live process was blocked with no deliverable message.  The
    /// report carries the wait graph plus the fault context (crashed peers,
    /// active fault-plan partitions), so an injected fault that wedges the
    /// protocol is named as the cause.
    Deadlock(String),
    /// The futile-grant livelock detector fired; the report carries the
    /// wait graph and fault context.
    Livelock(String),
    /// Fault-plan crashes killed these `(rank, virtual_time)` processes;
    /// the survivors completed.
    Crashed(Vec<(usize, f64)>),
    /// The run completed but an invariant did not hold (wrong checksum,
    /// data race, cross-backend disagreement, missed visibility edge).
    Violation(String),
}

impl RunVerdict {
    /// Stable one-word classification used in fuzz reports.
    pub fn kind(&self) -> &'static str {
        match self {
            RunVerdict::Pass => "pass",
            RunVerdict::Deadlock(_) => "deadlock",
            RunVerdict::Livelock(_) => "livelock",
            RunVerdict::Crashed(_) => "crash",
            RunVerdict::Violation(_) => "violation",
        }
    }

    /// True for anything other than [`RunVerdict::Pass`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, RunVerdict::Pass)
    }

    /// The structured failure of a run, verbatim.
    pub fn from_failure(failure: RunFailure) -> Self {
        match failure {
            RunFailure::Deadlock(report) => RunVerdict::Deadlock(report),
            RunFailure::Livelock(report) => RunVerdict::Livelock(report),
            RunFailure::Crashed(ranks) => RunVerdict::Crashed(ranks),
        }
    }

    /// One deterministic summary line: the kind plus the head of the
    /// report (for deadlock/livelock, the first line and any `fault
    /// context:` lines of the wait graph; crash and violation render in
    /// full).
    pub fn summary(&self) -> String {
        match self {
            RunVerdict::Pass => "pass".to_string(),
            RunVerdict::Deadlock(report) | RunVerdict::Livelock(report) => {
                let parts: Vec<&str> = report
                    .lines()
                    .take(1)
                    .chain(
                        report
                            .lines()
                            .map(str::trim_start)
                            .filter(|l| l.starts_with("fault context:")),
                    )
                    .map(|l| l.trim_end().trim_end_matches(';'))
                    .collect();
                parts.join("; ")
            }
            RunVerdict::Crashed(ranks) => {
                let mut s = "crash:".to_string();
                for (rank, at) in ranks {
                    s.push_str(&format!(" rank {rank} at t={at:.6}"));
                }
                s
            }
            RunVerdict::Violation(msg) => format!("violation: {msg}"),
        }
    }
}

/// The checksum tolerance the harness has always used: floating-point
/// summation order legitimately differs across process counts and
/// schedules, so agreement is relative, not bitwise.
fn checksum_agrees(run: f64, seq: f64) -> bool {
    (run - seq).abs() <= seq.abs() * 1e-6 + 1e-6
}

/// Check a completed run against the sequential baseline: checksum
/// agreement, plus racecheck cleanliness when the run carried a report.
pub fn check_run(run: &AppRun, seq: &SeqRun) -> RunVerdict {
    if !checksum_agrees(run.checksum, seq.checksum) {
        return RunVerdict::Violation(format!(
            "checksum {} disagrees with sequential {}",
            run.checksum, seq.checksum
        ));
    }
    if let Some(report) = &run.race {
        if !report.is_race_free() {
            return RunVerdict::Violation(format!(
                "racecheck found {} race(s)",
                report.races.len()
            ));
        }
    }
    RunVerdict::Pass
}

/// Classify a fallible run: structured failures map to their verdicts,
/// completed runs go through [`check_run`].
pub fn verdict(result: Result<AppRun, RunFailure>, seq: &SeqRun) -> RunVerdict {
    match result {
        Ok(run) => check_run(&run, seq),
        Err(failure) => RunVerdict::from_failure(failure),
    }
}

/// The conformance suite's observational-equivalence invariant: every DSM
/// backend must compute the bit-identical application answer (PVM runs are
/// checked against the baseline by [`check_run`] and are ignored here —
/// message passing restructures the computation, so only tolerance-level
/// agreement is owed).
pub fn cross_backend_equality(runs: &[(System, f64)]) -> RunVerdict {
    let dsm: Vec<(ProtocolKind, f64)> = runs
        .iter()
        .filter_map(|&(sys, checksum)| match sys {
            System::TreadMarks(protocol) => Some((protocol, checksum)),
            System::Pvm => None,
        })
        .collect();
    for pair in dsm.windows(2) {
        if pair[0].1.to_bits() != pair[1].1.to_bits() {
            return RunVerdict::Violation(format!(
                "backends disagree: {} computed {} but {} computed {}",
                pair[0].0, pair[0].1, pair[1].0, pair[1].1
            ));
        }
    }
    RunVerdict::Pass
}

/// Run a DSM micro-program under `cfg` and classify the outcome: structured
/// failures become their verdicts, and `check` turns the per-process
/// results into `Ok(())` or a violation message.
fn micro<R, F, C>(cfg: &ClusterConfig, protocol: ProtocolKind, body: F, check: C) -> RunVerdict
where
    R: Send,
    F: Fn(&Tmk) -> R + Send + Sync,
    C: FnOnce(&[R]) -> Result<(), String>,
{
    match Cluster::try_run(cfg.clone(), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let r = body(&tmk);
        tmk.exit();
        r
    }) {
        Ok(rep) => match check(&rep.results) {
            Ok(()) => RunVerdict::Pass,
            Err(msg) => RunVerdict::Violation(format!("{protocol}: {msg}")),
        },
        Err(failure) => RunVerdict::from_failure(failure),
    }
}

/// Release/acquire visibility under an arbitrary configuration: a token
/// value travels through a lock, each process in rank order incrementing it
/// under the lock (spinning on barriers in between so the order is
/// deterministic).  Every process must observe its predecessor's write when
/// it acquires — under any schedule seed and any lossy fault plan.
pub fn check_release_acquire(cfg: &ClusterConfig, protocol: ProtocolKind) -> RunVerdict {
    let n = cfg.nprocs;
    micro(
        cfg,
        protocol,
        move |tmk| {
            let slot = tmk.malloc(8);
            tmk.barrier(0);
            let mut seen = -1i64;
            for round in 0..n {
                if tmk.id() == round {
                    tmk.lock_acquire(0);
                    seen = tmk.read_i64(slot);
                    tmk.write_i64(slot, seen + 1);
                    tmk.lock_release(0);
                }
                tmk.barrier(1 + round as u32);
            }
            (seen, tmk.read_i64(slot))
        },
        move |results| {
            for (rank, &(seen, final_v)) in results.iter().enumerate() {
                if seen != rank as i64 {
                    return Err(format!(
                        "process {rank} acquired the lock and read {seen}, expected {rank}: \
                         its predecessor's release was not visible"
                    ));
                }
                if final_v != n as i64 {
                    return Err(format!(
                        "process {rank} read {final_v} after the last release, expected {n}"
                    ));
                }
            }
            Ok(())
        },
    )
}

/// Barrier visibility under an arbitrary configuration: every process
/// writes its own quarter of one page (multi-writer false sharing), and
/// after the barrier every process must read every other's writes.
pub fn check_barrier_visibility(cfg: &ClusterConfig, protocol: ProtocolKind) -> RunVerdict {
    let n = cfg.nprocs;
    micro(
        cfg,
        protocol,
        move |tmk| {
            let region = tmk.malloc_aligned(4096, 4096);
            tmk.barrier(0);
            let me = tmk.id();
            let stride = 4096 / n.max(1);
            for i in 0..8 {
                tmk.write_i64(region + me * stride + i * 8, (me * 1000 + i) as i64);
            }
            tmk.barrier(1);
            let mut missed = Vec::new();
            for w in 0..n {
                for i in 0..8 {
                    let got = tmk.read_i64(region + w * stride + i * 8);
                    if got != (w * 1000 + i) as i64 {
                        missed.push((w, i, got));
                    }
                }
            }
            missed
        },
        |results| {
            for (rank, missed) in results.iter().enumerate() {
                if let Some(&(w, i, got)) = missed.first() {
                    return Err(format!(
                        "process {rank} read {got} at writer {w} slot {i} after the barrier \
                         ({} slot(s) wrong)",
                        missed.len()
                    ));
                }
            }
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::FaultPlan;

    #[test]
    fn micro_invariants_pass_on_the_clean_testbed() {
        let cfg = ClusterConfig::calibrated_fddi(3);
        for protocol in ProtocolKind::all() {
            assert_eq!(
                check_release_acquire(&cfg, protocol),
                RunVerdict::Pass,
                "{protocol}"
            );
            assert_eq!(
                check_barrier_visibility(&cfg, protocol),
                RunVerdict::Pass,
                "{protocol}"
            );
        }
    }

    #[test]
    fn micro_invariants_survive_a_lossy_plan_and_a_seeded_schedule() {
        let mut cfg = ClusterConfig::calibrated_fddi(3);
        cfg.fault = FaultPlan::lossy(7);
        cfg.sched_seed = 7;
        for protocol in ProtocolKind::all() {
            let v = check_release_acquire(&cfg, protocol);
            assert_eq!(v, RunVerdict::Pass, "{protocol}: {}", v.summary());
            let v = check_barrier_visibility(&cfg, protocol);
            assert_eq!(v, RunVerdict::Pass, "{protocol}: {}", v.summary());
        }
    }

    #[test]
    fn a_crash_plan_surfaces_as_a_structured_verdict_with_fault_context() {
        let mut cfg = ClusterConfig::calibrated_fddi(3);
        cfg.fault.crashes = vec!["1@0.0001".parse().unwrap()];
        let v = check_release_acquire(&cfg, ProtocolKind::Lrc);
        // The crashed rank leaves its peers waiting at a barrier: the
        // deadlock detector names the crash in the fault context (or, if
        // the survivors happened to finish, the crash verdict itself).
        match &v {
            RunVerdict::Deadlock(report) => {
                assert!(
                    report.contains("fault context: process 1 crashed"),
                    "deadlock report does not name the crashed peer:\n{report}"
                );
                assert!(v.summary().contains("fault context"), "{}", v.summary());
            }
            RunVerdict::Crashed(ranks) => assert_eq!(ranks[0].0, 1),
            other => panic!("expected a structured failure, got {other:?}"),
        }
        assert!(
            v.kind() == "deadlock" || v.kind() == "crash",
            "{}",
            v.kind()
        );
        assert!(v.is_failure());
    }

    #[test]
    fn verdict_kinds_are_stable_words() {
        assert_eq!(RunVerdict::Pass.kind(), "pass");
        assert_eq!(RunVerdict::Deadlock(String::new()).kind(), "deadlock");
        assert_eq!(RunVerdict::Livelock(String::new()).kind(), "livelock");
        assert_eq!(RunVerdict::Crashed(vec![]).kind(), "crash");
        assert_eq!(RunVerdict::Violation(String::new()).kind(), "violation");
    }

    #[test]
    fn cross_backend_equality_flags_a_bit_flip() {
        let runs = [
            (System::TreadMarks(ProtocolKind::Lrc), 1.5),
            (System::TreadMarks(ProtocolKind::Hlrc), 1.5),
            (System::Pvm, 1.5000001), // PVM is exempt from bitwise equality
        ];
        assert_eq!(cross_backend_equality(&runs), RunVerdict::Pass);
        let bad = [
            (System::TreadMarks(ProtocolKind::Lrc), 1.5),
            (System::TreadMarks(ProtocolKind::Sc), 1.5 + 1e-12),
        ];
        assert!(cross_backend_equality(&bad).is_failure());
    }
}

//! The reproduction harness: maps every table and figure of the paper onto
//! the applications in the [`apps`] crate and runs them under both systems.
//!
//! The `reproduce` binary (`cargo run -p bench --release --bin reproduce`)
//! regenerates Table 1 (sequential times), Figures 1–12 (speedup curves for
//! 1–8 processors) and Table 2 (messages and kilobytes at 8 processors).
//! The criterion benches in `benches/` measure the runtime primitives and
//! the protocol and runtime ablations described in README.md.

#![warn(missing_docs)]

use apps::runner::{AppRun, SeqRun, System};
use apps::{barnes, ep, fft3d, ilink, is, qsort, sor, tsp, water, Workload};

/// Problem-size preset used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny inputs used by tests of the harness itself.
    Tiny,
    /// Scaled-down inputs (default): the whole suite runs in minutes.
    Scaled,
    /// Paper-scale inputs.
    Paper,
}

macro_rules! dispatch {
    ($mod:ident, $params:expr, $sys:expr, $nprocs:expr) => {
        match $sys {
            System::TreadMarks(protocol) => $mod::treadmarks_with($nprocs, &$params, protocol),
            System::Pvm => $mod::pvm($nprocs, &$params),
        }
    };
}

/// Run the sequential reference for a workload under a preset.
pub fn run_sequential(w: Workload, preset: Preset) -> SeqRun {
    match w {
        Workload::Ep => ep::sequential(&ep_params(preset)),
        Workload::SorZero => sor::sequential(&sor_params(preset, true)),
        Workload::SorNonzero => sor::sequential(&sor_params(preset, false)),
        Workload::IsSmall => is::sequential(&is_params(preset, false)),
        Workload::IsLarge => is::sequential(&is_params(preset, true)),
        Workload::Tsp => tsp::sequential(&tsp_params(preset)),
        Workload::Qsort => qsort::sequential(&qsort_params(preset)),
        Workload::Water288 => water::sequential(&water_params(preset, false)),
        Workload::Water1728 => water::sequential(&water_params(preset, true)),
        Workload::BarnesHut => barnes::sequential(&barnes_params(preset)),
        Workload::Fft3d => fft3d::sequential(&fft_params(preset)),
        Workload::Ilink => ilink::sequential(&ilink_params(preset)),
    }
}

/// Run a workload on `nprocs` processes under one of the two systems.
pub fn run_parallel(w: Workload, sys: System, nprocs: usize, preset: Preset) -> AppRun {
    match w {
        Workload::Ep => dispatch!(ep, ep_params(preset), sys, nprocs),
        Workload::SorZero => dispatch!(sor, sor_params(preset, true), sys, nprocs),
        Workload::SorNonzero => dispatch!(sor, sor_params(preset, false), sys, nprocs),
        Workload::IsSmall => dispatch!(is, is_params(preset, false), sys, nprocs),
        Workload::IsLarge => dispatch!(is, is_params(preset, true), sys, nprocs),
        Workload::Tsp => dispatch!(tsp, tsp_params(preset), sys, nprocs),
        Workload::Qsort => dispatch!(qsort, qsort_params(preset), sys, nprocs),
        Workload::Water288 => dispatch!(water, water_params(preset, false), sys, nprocs),
        Workload::Water1728 => dispatch!(water, water_params(preset, true), sys, nprocs),
        Workload::BarnesHut => dispatch!(barnes, barnes_params(preset), sys, nprocs),
        Workload::Fft3d => dispatch!(fft3d, fft_params(preset), sys, nprocs),
        Workload::Ilink => dispatch!(ilink, ilink_params(preset), sys, nprocs),
    }
}

/// Problem-size description printed in the Table 1 reproduction.
pub fn problem_size(w: Workload, preset: Preset) -> String {
    match w {
        Workload::Ep => format!("2^{} pairs", ep_params(preset).pairs.trailing_zeros()),
        Workload::SorZero | Workload::SorNonzero => {
            let p = sor_params(preset, true);
            format!("{}x{} floats, {} iters", p.rows, p.cols, p.iters)
        }
        Workload::IsSmall | Workload::IsLarge => {
            let p = is_params(preset, matches!(w, Workload::IsLarge));
            format!(
                "N=2^{}, Bmax=2^{}, {} iters",
                p.keys.trailing_zeros(),
                p.buckets.trailing_zeros(),
                p.iters
            )
        }
        Workload::Tsp => {
            let p = tsp_params(preset);
            format!("{} cities, threshold {}", p.cities, p.threshold)
        }
        Workload::Qsort => {
            let p = qsort_params(preset);
            format!("{}K integers", p.elems / 1024)
        }
        Workload::Water288 | Workload::Water1728 => {
            let p = water_params(preset, matches!(w, Workload::Water1728));
            format!("{} molecules, {} steps", p.molecules, p.steps)
        }
        Workload::BarnesHut => {
            let p = barnes_params(preset);
            format!("{} bodies, {} steps", p.bodies, p.steps)
        }
        Workload::Fft3d => {
            let p = fft_params(preset);
            format!("{}x{}x{}, {} iters", p.n1, p.n2, p.n3, p.iters)
        }
        Workload::Ilink => {
            let p = ilink_params(preset);
            format!("{} families, genarray {}", p.families, p.genarray)
        }
    }
}

fn ep_params(p: Preset) -> ep::EpParams {
    match p {
        Preset::Tiny => ep::EpParams::tiny(),
        Preset::Scaled => ep::EpParams::scaled(),
        Preset::Paper => ep::EpParams::paper(),
    }
}

fn sor_params(p: Preset, zero: bool) -> sor::SorParams {
    match (p, zero) {
        (Preset::Tiny, z) => sor::SorParams::tiny(z),
        (Preset::Scaled, true) => sor::SorParams::scaled_zero(),
        (Preset::Scaled, false) => sor::SorParams::scaled_nonzero(),
        (Preset::Paper, true) => sor::SorParams::paper_zero(),
        (Preset::Paper, false) => sor::SorParams::paper_nonzero(),
    }
}

fn is_params(p: Preset, large: bool) -> is::IsParams {
    match (p, large) {
        (Preset::Tiny, _) => is::IsParams::tiny(),
        (Preset::Scaled, false) => is::IsParams::scaled_small(),
        (Preset::Scaled, true) => is::IsParams::scaled_large(),
        (Preset::Paper, false) => is::IsParams::paper_small(),
        (Preset::Paper, true) => is::IsParams::paper_large(),
    }
}

fn tsp_params(p: Preset) -> tsp::TspParams {
    match p {
        Preset::Tiny => tsp::TspParams::tiny(),
        Preset::Scaled => tsp::TspParams::scaled(),
        Preset::Paper => tsp::TspParams::paper(),
    }
}

fn qsort_params(p: Preset) -> qsort::QsortParams {
    match p {
        Preset::Tiny => qsort::QsortParams::tiny(),
        Preset::Scaled => qsort::QsortParams::scaled(),
        Preset::Paper => qsort::QsortParams::paper(),
    }
}

fn water_params(p: Preset, large: bool) -> water::WaterParams {
    match (p, large) {
        (Preset::Tiny, _) => water::WaterParams::tiny(),
        (Preset::Scaled, false) => water::WaterParams::scaled_288(),
        (Preset::Scaled, true) => water::WaterParams::scaled_1728(),
        (Preset::Paper, false) => water::WaterParams::paper_288(),
        (Preset::Paper, true) => water::WaterParams::paper_1728(),
    }
}

fn barnes_params(p: Preset) -> barnes::BarnesParams {
    match p {
        Preset::Tiny => barnes::BarnesParams::tiny(),
        Preset::Scaled => barnes::BarnesParams::scaled(),
        Preset::Paper => barnes::BarnesParams::paper(),
    }
}

fn fft_params(p: Preset) -> fft3d::FftParams {
    match p {
        Preset::Tiny => fft3d::FftParams::tiny(),
        Preset::Scaled => fft3d::FftParams::scaled(),
        Preset::Paper => fft3d::FftParams::paper(),
    }
}

fn ilink_params(p: Preset) -> ilink::IlinkParams {
    match p {
        Preset::Tiny => ilink::IlinkParams::tiny(),
        Preset::Scaled => ilink::IlinkParams::scaled(),
        Preset::Paper => ilink::IlinkParams::paper(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_sequential_runner() {
        for w in Workload::all() {
            let s = run_sequential(w, Preset::Tiny);
            assert!(s.time > 0.0, "{} has zero sequential time", w.name());
        }
    }

    #[test]
    fn every_workload_runs_under_every_system() {
        for w in Workload::all() {
            for sys in System::all() {
                let r = run_parallel(w, sys, 2, Preset::Tiny);
                assert!(r.time > 0.0, "{} failed under {}", w.name(), sys);
            }
        }
    }

    /// The `Preset::Tiny` smoke test of the reproduce harness: all
    /// applications at 2 processes under both DSM protocol backends report
    /// finite speedups and nonzero message counts.
    #[test]
    fn tiny_preset_smokes_all_apps_under_both_protocols() {
        use treadmarks::ProtocolKind;
        for w in Workload::all() {
            let seq = run_sequential(w, Preset::Tiny);
            assert!(seq.time > 0.0, "{}: no sequential baseline", w.name());
            for protocol in ProtocolKind::all() {
                let run = run_parallel(w, System::TreadMarks(protocol), 2, Preset::Tiny);
                let speedup = run.speedup(seq.time);
                assert!(
                    speedup.is_finite() && speedup > 0.0,
                    "{} under {protocol}: speedup {speedup} not finite",
                    w.name()
                );
                assert!(
                    run.messages > 0,
                    "{} under {protocol}: no messages at 2 processes",
                    w.name()
                );
                assert!(
                    (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                    "{} under {protocol}: checksum {} vs sequential {}",
                    w.name(),
                    run.checksum,
                    seq.checksum
                );
            }
        }
    }

    #[test]
    fn problem_sizes_are_described() {
        for w in Workload::all() {
            assert!(!problem_size(w, Preset::Scaled).is_empty());
        }
    }
}

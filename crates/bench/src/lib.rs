//! The reproduction harness: maps every table and figure of the paper onto
//! the applications in the [`apps`] crate and runs them under both systems —
//! on the paper's testbed or on any scenario the cluster model can express.
//!
//! The `reproduce` binary (`cargo run -p bench --release --bin reproduce`)
//! regenerates Table 1 (sequential times), Figures 1–12 (speedup curves) and
//! Table 2 (messages and kilobytes at the top processor count).  The
//! scenario subsystem widens the single-testbed reproduction into a
//! question-answering machine: `--net` swaps the interconnect preset,
//! `--procs` lifts the processor count past the paper's 8, `--scenario FILE`
//! loads a declarative testbed description ([`scenario`]), and
//! `reproduce sweep` fans a sensitivity matrix — speedup versus processors,
//! runtime versus bandwidth or latency — across cores ([`sweep`]).  The
//! criterion benches in `benches/` measure the runtime primitives and the
//! protocol and runtime ablations described in README.md.

#![deny(missing_docs)]

pub mod exec;
pub mod fuzz;
pub mod invariants;
pub mod obs;
pub mod scenario;
pub mod shrink;
pub mod sweep;

use apps::runner::{AppRun, SeqRun, System};
use apps::{barnes, ep, fft3d, ilink, is, qsort, sor, tsp, water, Workload};
use cluster::{
    AnalysisLevel, ClusterConfig, FaultPlan, NetModel, NetPreset, ObsLevel, RunFailure, SpanCat,
};

/// Problem-size preset used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny inputs used by tests of the harness itself.
    Tiny,
    /// Scaled-down inputs (default): the whole suite runs in minutes.
    Scaled,
    /// Paper-scale inputs.
    Paper,
}

impl std::str::FromStr for Preset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Preset::Tiny),
            "scaled" => Ok(Preset::Scaled),
            "paper" | "full" => Ok(Preset::Paper),
            other => Err(format!(
                "unknown preset '{other}'; known presets: tiny, scaled, paper"
            )),
        }
    }
}

macro_rules! dispatch {
    ($mod:ident, $params:expr, $sys:expr, $cfg:expr) => {
        match $sys {
            System::TreadMarks(protocol) => $mod::treadmarks_on($cfg, &$params, protocol),
            System::Pvm => $mod::pvm_on($cfg, &$params),
        }
    };
}

macro_rules! try_dispatch {
    ($mod:ident, $params:expr, $sys:expr, $cfg:expr) => {
        match $sys {
            System::TreadMarks(protocol) => $mod::try_treadmarks_on($cfg, &$params, protocol),
            System::Pvm => $mod::try_pvm_on($cfg, &$params),
        }
    };
}

/// The schedule-exploration and fault-injection knobs of a run, all riding
/// on [`ClusterConfig`]: the arbiter's tie-break seed, the optional cap on
/// seeded draws (bisected by the shrinker), and the fault plan.  The
/// default (`seed 0`, no cap, empty plan) is the engine's historical
/// behaviour, byte for byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTuning {
    /// Arbiter tie-break seed; 0 is rank order.
    pub sched_seed: u64,
    /// Cap on seeded tie-break draws (rank order afterwards).
    pub tie_limit: Option<u64>,
    /// The fault plan to inject.
    pub fault: FaultPlan,
}

impl RunTuning {
    /// True when this tuning is the engine's historical default, so the run
    /// is byte-identical to one that never heard of tuning.
    pub fn is_default(&self) -> bool {
        self.sched_seed == 0 && self.tie_limit.is_none() && self.fault.is_empty()
    }

    /// Stamp the tuning onto a cluster configuration.
    pub fn apply(&self, cfg: &mut ClusterConfig) {
        cfg.sched_seed = self.sched_seed;
        cfg.tie_limit = self.tie_limit;
        cfg.fault = self.fault.clone();
    }
}

/// Run the sequential reference for a workload under a preset.
pub fn run_sequential(w: Workload, preset: Preset) -> SeqRun {
    match w {
        Workload::Ep => ep::sequential(&ep_params(preset)),
        Workload::SorZero => sor::sequential(&sor_params(preset, true)),
        Workload::SorNonzero => sor::sequential(&sor_params(preset, false)),
        Workload::IsSmall => is::sequential(&is_params(preset, false)),
        Workload::IsLarge => is::sequential(&is_params(preset, true)),
        Workload::Tsp => tsp::sequential(&tsp_params(preset)),
        Workload::Qsort => qsort::sequential(&qsort_params(preset)),
        Workload::Water288 => water::sequential(&water_params(preset, false)),
        Workload::Water1728 => water::sequential(&water_params(preset, true)),
        Workload::BarnesHut => barnes::sequential(&barnes_params(preset)),
        Workload::Fft3d => fft3d::sequential(&fft_params(preset)),
        Workload::Ilink => ilink::sequential(&ilink_params(preset)),
    }
}

/// Run a workload on `nprocs` processes under one of the two systems, on
/// the paper's calibrated FDDI testbed.  See [`run_parallel_on`] for other
/// interconnects.
pub fn run_parallel(w: Workload, sys: System, nprocs: usize, preset: Preset) -> AppRun {
    run_parallel_on(w, sys, &ClusterConfig::calibrated_fddi(nprocs), preset)
}

/// Run a workload under one of the two systems on an arbitrary cluster
/// model (`cfg.nprocs` processes over `cfg`'s interconnect).
pub fn run_parallel_on(w: Workload, sys: System, cfg: &ClusterConfig, preset: Preset) -> AppRun {
    match w {
        Workload::Ep => dispatch!(ep, ep_params(preset), sys, cfg),
        Workload::SorZero => dispatch!(sor, sor_params(preset, true), sys, cfg),
        Workload::SorNonzero => dispatch!(sor, sor_params(preset, false), sys, cfg),
        Workload::IsSmall => dispatch!(is, is_params(preset, false), sys, cfg),
        Workload::IsLarge => dispatch!(is, is_params(preset, true), sys, cfg),
        Workload::Tsp => dispatch!(tsp, tsp_params(preset), sys, cfg),
        Workload::Qsort => dispatch!(qsort, qsort_params(preset), sys, cfg),
        Workload::Water288 => dispatch!(water, water_params(preset, false), sys, cfg),
        Workload::Water1728 => dispatch!(water, water_params(preset, true), sys, cfg),
        Workload::BarnesHut => dispatch!(barnes, barnes_params(preset), sys, cfg),
        Workload::Fft3d => dispatch!(fft3d, fft_params(preset), sys, cfg),
        Workload::Ilink => dispatch!(ilink, ilink_params(preset), sys, cfg),
    }
}

/// As [`run_parallel_on`], but a structured [`RunFailure`] — a virtual-time
/// deadlock or livelock, or a fault-plan crash — comes back as an `Err`
/// instead of a panic, so the fuzzing harness can classify it as a finding
/// and keep going.
pub fn try_run_parallel_on(
    w: Workload,
    sys: System,
    cfg: &ClusterConfig,
    preset: Preset,
) -> Result<AppRun, RunFailure> {
    match w {
        Workload::Ep => try_dispatch!(ep, ep_params(preset), sys, cfg),
        Workload::SorZero => try_dispatch!(sor, sor_params(preset, true), sys, cfg),
        Workload::SorNonzero => try_dispatch!(sor, sor_params(preset, false), sys, cfg),
        Workload::IsSmall => try_dispatch!(is, is_params(preset, false), sys, cfg),
        Workload::IsLarge => try_dispatch!(is, is_params(preset, true), sys, cfg),
        Workload::Tsp => try_dispatch!(tsp, tsp_params(preset), sys, cfg),
        Workload::Qsort => try_dispatch!(qsort, qsort_params(preset), sys, cfg),
        Workload::Water288 => try_dispatch!(water, water_params(preset, false), sys, cfg),
        Workload::Water1728 => try_dispatch!(water, water_params(preset, true), sys, cfg),
        Workload::BarnesHut => try_dispatch!(barnes, barnes_params(preset), sys, cfg),
        Workload::Fft3d => try_dispatch!(fft3d, fft_params(preset), sys, cfg),
        Workload::Ilink => try_dispatch!(ilink, ilink_params(preset), sys, cfg),
    }
}

/// One entry of a reproduction matrix: a workload under a system, on an
/// interconnect model, at a processor count.
///
/// The interconnect is part of the key so that a single matrix (and the
/// executor fanning it out) can hold the same workload under several
/// network models at once — exactly what a bandwidth or latency sweep is.
/// Equality is exact: [`NetModel`] compares overridden floats by bit
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunKey {
    /// The application and input set.
    pub workload: Workload,
    /// The runtime system (a DSM protocol backend, or PVM).
    pub system: System,
    /// The interconnect model the cluster runs over.
    pub net: NetModel,
    /// Number of simulated processes.
    pub nprocs: usize,
}

impl RunKey {
    /// A run on an arbitrary interconnect model.
    pub fn new(workload: Workload, system: System, net: NetModel, nprocs: usize) -> Self {
        RunKey {
            workload,
            system,
            net,
            nprocs,
        }
    }

    /// A run on the paper's testbed (the calibrated FDDI preset).
    pub fn fddi(workload: Workload, system: System, nprocs: usize) -> Self {
        RunKey::new(workload, system, NetModel::preset(NetPreset::Fddi), nprocs)
    }

    /// The cluster configuration this key describes.
    pub fn config(&self) -> ClusterConfig {
        self.net.config(self.nprocs)
    }
}

/// The processor counts a figure reports for a top count of `max`: every
/// count through 8 exactly as the paper plots it, then powers of two (and
/// `max` itself) beyond — `proc_series(16)` is `1..=8, 16` and
/// `proc_series(32)` is `1..=8, 16, 32`, keeping the beyond-the-paper
/// figures readable instead of 32 rows deep.
pub fn proc_series(max: usize) -> Vec<usize> {
    let mut series: Vec<usize> = (1..=max.min(8)).collect();
    let mut p = 16;
    while p < max {
        series.push(p);
        p *= 2;
    }
    if max > 8 {
        series.push(max);
    }
    series
}

/// The precomputed results of a reproduction: every requested sequential
/// baseline and parallel run, keyed for lookup.
///
/// A matrix is *computed* (possibly on many cores, see [`run_matrix`]) and
/// then *rendered*: because every simulation is deterministic and the
/// results are stored under their keys — never in completion order — the
/// rendering is a pure function of the request, so serial and parallel
/// computation produce byte-identical tables, figures and JSON.
pub struct RunMatrix {
    /// The preset the matrix was computed under.
    pub preset: Preset,
    seq: Vec<(Workload, SeqRun)>,
    runs: Vec<(RunKey, AppRun)>,
}

impl RunMatrix {
    /// The sequential baseline of `w`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix was not computed with `w`'s baseline.
    pub fn sequential(&self, w: Workload) -> &SeqRun {
        self.seq
            .iter()
            .find(|(k, _)| *k == w)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("{} baseline not in the matrix", w.name()))
    }

    /// The parallel run stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if that run is not in the matrix.
    pub fn run(&self, key: &RunKey) -> &AppRun {
        self.runs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, r)| r)
            .unwrap_or_else(|| {
                panic!(
                    "{} under {} on {} at {} processes not in the matrix",
                    key.workload.name(),
                    key.system,
                    key.net.label(),
                    key.nprocs
                )
            })
    }

    /// Every parallel run in the matrix, in request order.
    pub fn runs(&self) -> impl Iterator<Item = (&RunKey, &AppRun)> {
        self.runs.iter().map(|(k, r)| (k, r))
    }

    /// Number of parallel runs held.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the matrix holds no parallel runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Compute a reproduction matrix — the sequential baseline of every workload
/// in `seq_workloads` plus every run in `keys` — on `jobs` worker threads.
///
/// Each entry is an independent deterministic simulation; the executor in
/// [`exec`] fans them out and delivers results in request order, so the
/// returned matrix (and anything rendered from it) is bit-identical for
/// every `jobs` value.  Duplicate keys are computed once.
///
/// # Example
///
/// One workload, two systems, two interconnects, computed on two workers:
///
/// ```
/// use apps::runner::System;
/// use apps::Workload;
/// use bench::{run_matrix, Preset, RunKey};
/// use cluster::{NetModel, NetPreset};
///
/// let atm = NetModel::preset(NetPreset::Atm);
/// let keys = [
///     RunKey::fddi(Workload::Ep, System::Pvm, 2),
///     RunKey::new(Workload::Ep, System::Pvm, atm, 2),
/// ];
/// let matrix = run_matrix(Preset::Tiny, &[Workload::Ep], &keys, 2);
/// let seq = matrix.sequential(Workload::Ep);
/// // Same answer on both networks, and the paper's ring is never faster.
/// assert_eq!(matrix.run(&keys[0]).checksum, seq.checksum);
/// assert!(matrix.run(&keys[0]).time >= matrix.run(&keys[1]).time);
/// ```
pub fn run_matrix(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
) -> RunMatrix {
    run_matrix_obs(preset, seq_workloads, keys, jobs, ObsLevel::Off)
}

/// [`run_matrix`] with an observability level applied to every parallel run
/// in the matrix (sequential baselines are plain closed-form models and
/// record nothing).  The level reaches the simulations through
/// [`ClusterConfig::obs`] — it is *not* part of the [`RunKey`], so matrices
/// computed at different levels are keyed (and rendered) identically, and
/// the recorded output rides along on [`AppRun::obs`].
pub fn run_matrix_obs(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
    obs: ObsLevel,
) -> RunMatrix {
    run_matrix_full(preset, seq_workloads, keys, jobs, obs, AnalysisLevel::Off)
}

/// [`run_matrix_obs`] with an analysis level on top: like the observability
/// level it reaches the simulations through the configuration
/// ([`ClusterConfig::analysis`]), is *not* part of the [`RunKey`], and never
/// perturbs the simulated output — a matrix computed under
/// [`AnalysisLevel::Race`] carries a [`apps::runner::AppRun::race`] report
/// per DSM run and is otherwise bit-identical to one computed at
/// [`AnalysisLevel::Off`].
pub fn run_matrix_full(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
    obs: ObsLevel,
    analysis: AnalysisLevel,
) -> RunMatrix {
    run_matrix_tuned(
        preset,
        seq_workloads,
        keys,
        jobs,
        obs,
        analysis,
        &RunTuning::default(),
    )
}

/// [`run_matrix_full`] with a [`RunTuning`] applied to every parallel run:
/// the schedule seed, tie-break cap and fault plan reach the simulations
/// through the configuration, exactly like the observability and analysis
/// levels — not part of the [`RunKey`], and a no-op at the default tuning.
/// Crash plans panic the matrix (a crashed run has no complete result to
/// store); the fuzzer fans crash plans through [`try_run_parallel_on`]
/// instead.
pub fn run_matrix_tuned(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
    obs: ObsLevel,
    analysis: AnalysisLevel,
    tuning: &RunTuning,
) -> RunMatrix {
    run_matrix_islands(preset, seq_workloads, keys, jobs, obs, analysis, tuning, 1, 1)
}

/// [`run_matrix_tuned`] with a scheduler island width and an island thread
/// count applied to every parallel run.  Like the observability, analysis
/// and tuning knobs both reach the simulations through the configuration
/// ([`ClusterConfig::islands`] / [`ClusterConfig::island_threads`]) and are
/// *not* part of the [`RunKey`]: every width and thread count produces
/// bit-identical runs (asserted against the serial reference executor under
/// `oracle-checks`), so matrices computed at different widths render
/// byte-identically.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_islands(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
    obs: ObsLevel,
    analysis: AnalysisLevel,
    tuning: &RunTuning,
    islands: usize,
    island_threads: usize,
) -> RunMatrix {
    let mut seq_keys: Vec<Workload> = Vec::new();
    for &w in seq_workloads {
        if !seq_keys.contains(&w) {
            seq_keys.push(w);
        }
    }
    let mut run_keys: Vec<RunKey> = Vec::new();
    for &k in keys {
        if !run_keys.contains(&k) {
            run_keys.push(k);
        }
    }
    enum Task {
        Seq(Workload),
        Run(RunKey),
    }
    enum Done {
        Seq(Workload, SeqRun),
        // Boxed: an AppRun (with its per-process stats) dwarfs a SeqRun.
        Run(RunKey, Box<AppRun>),
    }
    let tasks: Vec<Task> = seq_keys
        .iter()
        .map(|&w| Task::Seq(w))
        .chain(run_keys.iter().map(|&k| Task::Run(k)))
        .collect();
    let closures: Vec<_> = tasks
        .into_iter()
        .map(|t| {
            let tuning = tuning.clone();
            move || match t {
                Task::Seq(w) => Done::Seq(w, run_sequential(w, preset)),
                Task::Run(key) => {
                    let mut cfg = key.config();
                    cfg.obs = obs;
                    cfg.analysis = analysis;
                    cfg.islands = islands;
                    cfg.island_threads = island_threads;
                    tuning.apply(&mut cfg);
                    Done::Run(
                        key,
                        Box::new(run_parallel_on(key.workload, key.system, &cfg, preset)),
                    )
                }
            }
        })
        .collect();
    let mut matrix = RunMatrix {
        preset,
        seq: Vec::with_capacity(seq_keys.len()),
        runs: Vec::with_capacity(run_keys.len()),
    };
    for done in exec::run_ordered(jobs, closures) {
        match done {
            Done::Seq(w, s) => matrix.seq.push((w, s)),
            Done::Run(k, r) => matrix.runs.push((k, *r)),
        }
    }
    matrix
}

/// Render the happens-before race reports of a matrix computed under
/// [`AnalysisLevel::Race`]: one summary line per checked run (PVM runs are
/// message-passing only and carry no report), the full per-race detail for
/// any run that is not race-free, and a final `racecheck summary:` line
/// totalling races over checked runs — the line CI greps for.
///
/// Deterministic like every other rendering: runs appear in request order
/// and each report is itself deterministically sorted.
pub fn render_race_reports(matrix: &RunMatrix) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut checked = 0usize;
    let mut total_races = 0usize;
    for (key, run) in matrix.runs() {
        let Some(report) = &run.race else { continue };
        checked += 1;
        total_races += report.races.len();
        writeln!(
            out,
            "  {:<12} {:<10} {:<10} n={:<3} {}",
            key.workload.name(),
            run.system.to_string(),
            key.net.label(),
            key.nprocs,
            report.render().lines().next().unwrap_or_default()
        )
        .unwrap();
        if !report.is_race_free() {
            for line in report.render().lines().skip(1) {
                writeln!(out, "    {line}").unwrap();
            }
        }
    }
    writeln!(
        out,
        "racecheck summary: {total_races} race(s) across {checked} checked run(s)"
    )
    .unwrap();
    out
}

/// One JSON record per run with every virtual time carried both as decimal
/// and as its raw f64 bit pattern, so a textual `diff` of two dumps is
/// exactly a bit-identity check.  Shared by the `reproduce --json` dump and
/// the parallel-vs-serial determinism tests.
pub fn run_record_json(key: &RunKey, run: &AppRun) -> String {
    let mut rec = format!(
        "{{\"workload\": \"{}\", \"system\": \"{}\", \"net\": \"{}\", \"nprocs\": {}, \
         \"time\": {}, \"time_bits\": \"{:016x}\", \"checksum_bits\": \"{:016x}\", \
         \"messages\": {}, \"kilobytes_bits\": \"{:016x}\", \
         \"datagrams_received\": {}",
        key.workload.name(),
        run.system,
        key.net.label(),
        run.nprocs,
        run.time,
        run.time.to_bits(),
        run.checksum.to_bits(),
        run.messages,
        run.kilobytes.to_bits(),
        run.proc_stats
            .iter()
            .map(|s| s.datagrams_received)
            .sum::<u64>(),
    );
    // The tuning stamps appear only when nonzero, so a default-tuned dump
    // stays byte-identical to every dump the harness ever produced.
    if run.sched_seed != 0 {
        rec.push_str(&format!(", \"sched_seed\": {}", run.sched_seed));
    }
    if run.fault_hash != 0 {
        rec.push_str(&format!(
            ", \"fault_hash\": \"{:016x}\", \"faults_injected\": {}",
            run.fault_hash,
            run.faults.injected()
        ));
    }
    if let Some(t) = &run.tmk_stats {
        rec.push_str(&format!(
            ", \"page_faults\": {}, \"diff_requests\": {}, \"diff_flushes\": {}, \
             \"page_requests\": {}",
            t.page_faults, t.diff_requests_sent, t.diff_flushes_sent, t.page_requests_sent
        ));
    }
    if let Some(obs) = &run.obs {
        // Integer virtual-ns quantiles of the merged histograms: present
        // only when the run was computed at an observability level, and
        // byte-deterministic like everything else in the record.
        for (label, cat) in [
            ("lock", SpanCat::LockWait),
            ("fault", SpanCat::Fault),
            ("barrier", SpanCat::BarrierWait),
        ] {
            let h = obs.merged_hist(cat);
            rec.push_str(&format!(
                ", \"{label}_spans\": {}, \"{label}_p50_ns\": {}, \"{label}_p99_ns\": {}, \
                 \"{label}_p999_ns\": {}",
                h.count(),
                h.value_at_quantile(0.50),
                h.value_at_quantile(0.99),
                h.value_at_quantile(0.999)
            ));
        }
        let events: usize =
            obs.central.len() + obs.procs.iter().map(|p| p.events.len()).sum::<usize>();
        rec.push_str(&format!(", \"obs_events\": {events}"));
    }
    if let Some(race) = &run.race {
        // Present only when the run was computed under a racecheck analysis
        // level; the simulated fields above are bit-identical either way.
        rec.push_str(&format!(
            ", \"race_accesses\": {}, \"races\": {}",
            race.accesses,
            race.races.len()
        ));
    }
    rec.push('}');
    rec
}

/// Problem-size description printed in the Table 1 reproduction.
pub fn problem_size(w: Workload, preset: Preset) -> String {
    match w {
        Workload::Ep => format!("2^{} pairs", ep_params(preset).pairs.trailing_zeros()),
        Workload::SorZero | Workload::SorNonzero => {
            let p = sor_params(preset, true);
            format!("{}x{} floats, {} iters", p.rows, p.cols, p.iters)
        }
        Workload::IsSmall | Workload::IsLarge => {
            let p = is_params(preset, matches!(w, Workload::IsLarge));
            format!(
                "N=2^{}, Bmax=2^{}, {} iters",
                p.keys.trailing_zeros(),
                p.buckets.trailing_zeros(),
                p.iters
            )
        }
        Workload::Tsp => {
            let p = tsp_params(preset);
            format!("{} cities, threshold {}", p.cities, p.threshold)
        }
        Workload::Qsort => {
            let p = qsort_params(preset);
            format!("{}K integers", p.elems / 1024)
        }
        Workload::Water288 | Workload::Water1728 => {
            let p = water_params(preset, matches!(w, Workload::Water1728));
            format!("{} molecules, {} steps", p.molecules, p.steps)
        }
        Workload::BarnesHut => {
            let p = barnes_params(preset);
            format!("{} bodies, {} steps", p.bodies, p.steps)
        }
        Workload::Fft3d => {
            let p = fft_params(preset);
            format!("{}x{}x{}, {} iters", p.n1, p.n2, p.n3, p.iters)
        }
        Workload::Ilink => {
            let p = ilink_params(preset);
            format!("{} families, genarray {}", p.families, p.genarray)
        }
    }
}

fn ep_params(p: Preset) -> ep::EpParams {
    match p {
        Preset::Tiny => ep::EpParams::tiny(),
        Preset::Scaled => ep::EpParams::scaled(),
        Preset::Paper => ep::EpParams::paper(),
    }
}

fn sor_params(p: Preset, zero: bool) -> sor::SorParams {
    match (p, zero) {
        (Preset::Tiny, z) => sor::SorParams::tiny(z),
        (Preset::Scaled, true) => sor::SorParams::scaled_zero(),
        (Preset::Scaled, false) => sor::SorParams::scaled_nonzero(),
        (Preset::Paper, true) => sor::SorParams::paper_zero(),
        (Preset::Paper, false) => sor::SorParams::paper_nonzero(),
    }
}

fn is_params(p: Preset, large: bool) -> is::IsParams {
    match (p, large) {
        (Preset::Tiny, _) => is::IsParams::tiny(),
        (Preset::Scaled, false) => is::IsParams::scaled_small(),
        (Preset::Scaled, true) => is::IsParams::scaled_large(),
        (Preset::Paper, false) => is::IsParams::paper_small(),
        (Preset::Paper, true) => is::IsParams::paper_large(),
    }
}

fn tsp_params(p: Preset) -> tsp::TspParams {
    match p {
        Preset::Tiny => tsp::TspParams::tiny(),
        Preset::Scaled => tsp::TspParams::scaled(),
        Preset::Paper => tsp::TspParams::paper(),
    }
}

fn qsort_params(p: Preset) -> qsort::QsortParams {
    match p {
        Preset::Tiny => qsort::QsortParams::tiny(),
        Preset::Scaled => qsort::QsortParams::scaled(),
        Preset::Paper => qsort::QsortParams::paper(),
    }
}

fn water_params(p: Preset, large: bool) -> water::WaterParams {
    match (p, large) {
        (Preset::Tiny, _) => water::WaterParams::tiny(),
        (Preset::Scaled, false) => water::WaterParams::scaled_288(),
        (Preset::Scaled, true) => water::WaterParams::scaled_1728(),
        (Preset::Paper, false) => water::WaterParams::paper_288(),
        (Preset::Paper, true) => water::WaterParams::paper_1728(),
    }
}

fn barnes_params(p: Preset) -> barnes::BarnesParams {
    match p {
        Preset::Tiny => barnes::BarnesParams::tiny(),
        Preset::Scaled => barnes::BarnesParams::scaled(),
        Preset::Paper => barnes::BarnesParams::paper(),
    }
}

fn fft_params(p: Preset) -> fft3d::FftParams {
    match p {
        Preset::Tiny => fft3d::FftParams::tiny(),
        Preset::Scaled => fft3d::FftParams::scaled(),
        Preset::Paper => fft3d::FftParams::paper(),
    }
}

fn ilink_params(p: Preset) -> ilink::IlinkParams {
    match p {
        Preset::Tiny => ilink::IlinkParams::tiny(),
        Preset::Scaled => ilink::IlinkParams::scaled(),
        Preset::Paper => ilink::IlinkParams::paper(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_sequential_runner() {
        for w in Workload::all() {
            let s = run_sequential(w, Preset::Tiny);
            assert!(s.time > 0.0, "{} has zero sequential time", w.name());
        }
    }

    #[test]
    fn every_workload_runs_under_every_system() {
        for w in Workload::all() {
            for sys in System::all() {
                let r = run_parallel(w, sys, 2, Preset::Tiny);
                assert!(r.time > 0.0, "{} failed under {}", w.name(), sys);
            }
        }
    }

    /// The `Preset::Tiny` smoke test of the reproduce harness: all
    /// applications at 2 processes under both DSM protocol backends report
    /// finite speedups and nonzero message counts.
    #[test]
    fn tiny_preset_smokes_all_apps_under_both_protocols() {
        use treadmarks::ProtocolKind;
        for w in Workload::all() {
            let seq = run_sequential(w, Preset::Tiny);
            assert!(seq.time > 0.0, "{}: no sequential baseline", w.name());
            for protocol in ProtocolKind::all() {
                let run = run_parallel(w, System::TreadMarks(protocol), 2, Preset::Tiny);
                let speedup = run.speedup(seq.time);
                assert!(
                    speedup.is_finite() && speedup > 0.0,
                    "{} under {protocol}: speedup {speedup} not finite",
                    w.name()
                );
                assert!(
                    run.messages > 0,
                    "{} under {protocol}: no messages at 2 processes",
                    w.name()
                );
                assert!(
                    (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                    "{} under {protocol}: checksum {} vs sequential {}",
                    w.name(),
                    run.checksum,
                    seq.checksum
                );
            }
        }
    }

    /// The tentpole guarantee of the parallel executor: a matrix computed on
    /// a worker pool is bit-identical — every virtual time, checksum and
    /// counter, on every process of every run — to the same matrix computed
    /// serially on one thread.
    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let workloads = [
            Workload::Ep,
            Workload::SorZero,
            Workload::Tsp,
            Workload::Water288,
        ];
        let keys: Vec<RunKey> = workloads
            .iter()
            .flat_map(|&w| {
                System::all().into_iter().flat_map(move |sys| {
                    [1usize, 2, 4]
                        .into_iter()
                        .map(move |n| RunKey::fddi(w, sys, n))
                })
            })
            .collect();
        let serial = run_matrix(Preset::Tiny, &workloads, &keys, 1);
        let parallel = run_matrix(Preset::Tiny, &workloads, &keys, 4);
        for &w in &workloads {
            let (a, b) = (serial.sequential(w), parallel.sequential(w));
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "{} seq time", w.name());
            assert_eq!(
                a.checksum.to_bits(),
                b.checksum.to_bits(),
                "{} seq checksum",
                w.name()
            );
        }
        for key in &keys {
            let (a, b) = (serial.run(key), parallel.run(key));
            // f64 Debug output is shortest-round-trip, so Debug equality of
            // the full record (times, counters, per-process stats) is
            // bit-identity.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{key:?} differs between serial and parallel execution"
            );
            assert_eq!(
                run_record_json(key, a),
                run_record_json(key, b),
                "{key:?}: JSON record differs"
            );
        }
    }

    /// The tentpole guarantee of the island scheduler, at matrix level: a
    /// matrix computed at any island width renders byte-identically to the
    /// width-1 (flat-arbiter) matrix — every virtual time, checksum,
    /// counter and JSON record.
    #[test]
    fn island_widths_render_byte_identical_matrices() {
        let workloads = [Workload::Ep, Workload::SorZero, Workload::Tsp];
        let keys: Vec<RunKey> = workloads
            .iter()
            .flat_map(|&w| {
                System::all()
                    .into_iter()
                    .map(move |sys| RunKey::fddi(w, sys, 4))
            })
            .collect();
        let matrix_at = |islands: usize, threads: usize| {
            run_matrix_islands(
                Preset::Tiny,
                &workloads,
                &keys,
                2,
                ObsLevel::Off,
                AnalysisLevel::Off,
                &RunTuning::default(),
                islands,
                threads,
            )
        };
        let flat = matrix_at(1, 1);
        for (islands, threads) in [(2usize, 1usize), (4, 1), (2, 2), (4, 4)] {
            let wide = matrix_at(islands, threads);
            for key in &keys {
                let (a, b) = (flat.run(key), wide.run(key));
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{key:?} differs between islands=1 and islands={islands} \
                     island_threads={threads}"
                );
                assert_eq!(
                    run_record_json(key, a),
                    run_record_json(key, b),
                    "{key:?}: JSON record differs at islands={islands} \
                     island_threads={threads}"
                );
            }
        }
    }

    #[test]
    fn duplicate_matrix_keys_are_computed_once() {
        let key = RunKey::fddi(Workload::Ep, System::Pvm, 2);
        let keys = vec![key, key, key];
        let m = run_matrix(Preset::Tiny, &[Workload::Ep], &keys, 2);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert!(m.run(&key).time > 0.0);
    }

    #[test]
    fn one_matrix_holds_the_same_run_under_several_nets() {
        use cluster::NetPreset;
        let w = Workload::Ep;
        let sys = System::Pvm;
        let keys: Vec<RunKey> = NetPreset::all()
            .into_iter()
            .map(|p| RunKey::new(w, sys, NetModel::preset(p), 2))
            .collect();
        let m = run_matrix(Preset::Tiny, &[], &keys, 2);
        assert_eq!(m.len(), 4, "four presets, four distinct matrix entries");
        // Identical answers on every interconnect; distinct virtual times
        // on the distinctly-priced ones.
        let checksums: Vec<u64> = keys.iter().map(|k| m.run(k).checksum.to_bits()).collect();
        assert!(checksums.windows(2).all(|w| w[0] == w[1]));
        let ethernet = m.run(&keys[1]).time;
        let atm = m.run(&keys[2]).time;
        assert!(
            ethernet > atm,
            "ethernet {ethernet} not slower than atm {atm}"
        );
    }

    #[test]
    fn proc_series_matches_the_paper_below_eight_and_doubles_beyond() {
        assert_eq!(proc_series(4), vec![1, 2, 3, 4]);
        assert_eq!(proc_series(8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(proc_series(16), vec![1, 2, 3, 4, 5, 6, 7, 8, 16]);
        assert_eq!(proc_series(32), vec![1, 2, 3, 4, 5, 6, 7, 8, 16, 32]);
        assert_eq!(proc_series(24), vec![1, 2, 3, 4, 5, 6, 7, 8, 16, 24]);
    }

    #[test]
    fn problem_sizes_are_described() {
        for w in Workload::all() {
            assert!(!problem_size(w, Preset::Scaled).is_empty());
        }
    }
}

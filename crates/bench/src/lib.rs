//! The reproduction harness: maps every table and figure of the paper onto
//! the applications in the [`apps`] crate and runs them under both systems.
//!
//! The `reproduce` binary (`cargo run -p bench --release --bin reproduce`)
//! regenerates Table 1 (sequential times), Figures 1–12 (speedup curves for
//! 1–8 processors) and Table 2 (messages and kilobytes at 8 processors).
//! The criterion benches in `benches/` measure the runtime primitives and
//! the protocol and runtime ablations described in README.md.

#![warn(missing_docs)]

pub mod exec;

use apps::runner::{AppRun, SeqRun, System};
use apps::{barnes, ep, fft3d, ilink, is, qsort, sor, tsp, water, Workload};

/// Problem-size preset used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny inputs used by tests of the harness itself.
    Tiny,
    /// Scaled-down inputs (default): the whole suite runs in minutes.
    Scaled,
    /// Paper-scale inputs.
    Paper,
}

macro_rules! dispatch {
    ($mod:ident, $params:expr, $sys:expr, $nprocs:expr) => {
        match $sys {
            System::TreadMarks(protocol) => $mod::treadmarks_with($nprocs, &$params, protocol),
            System::Pvm => $mod::pvm($nprocs, &$params),
        }
    };
}

/// Run the sequential reference for a workload under a preset.
pub fn run_sequential(w: Workload, preset: Preset) -> SeqRun {
    match w {
        Workload::Ep => ep::sequential(&ep_params(preset)),
        Workload::SorZero => sor::sequential(&sor_params(preset, true)),
        Workload::SorNonzero => sor::sequential(&sor_params(preset, false)),
        Workload::IsSmall => is::sequential(&is_params(preset, false)),
        Workload::IsLarge => is::sequential(&is_params(preset, true)),
        Workload::Tsp => tsp::sequential(&tsp_params(preset)),
        Workload::Qsort => qsort::sequential(&qsort_params(preset)),
        Workload::Water288 => water::sequential(&water_params(preset, false)),
        Workload::Water1728 => water::sequential(&water_params(preset, true)),
        Workload::BarnesHut => barnes::sequential(&barnes_params(preset)),
        Workload::Fft3d => fft3d::sequential(&fft_params(preset)),
        Workload::Ilink => ilink::sequential(&ilink_params(preset)),
    }
}

/// Run a workload on `nprocs` processes under one of the two systems.
pub fn run_parallel(w: Workload, sys: System, nprocs: usize, preset: Preset) -> AppRun {
    match w {
        Workload::Ep => dispatch!(ep, ep_params(preset), sys, nprocs),
        Workload::SorZero => dispatch!(sor, sor_params(preset, true), sys, nprocs),
        Workload::SorNonzero => dispatch!(sor, sor_params(preset, false), sys, nprocs),
        Workload::IsSmall => dispatch!(is, is_params(preset, false), sys, nprocs),
        Workload::IsLarge => dispatch!(is, is_params(preset, true), sys, nprocs),
        Workload::Tsp => dispatch!(tsp, tsp_params(preset), sys, nprocs),
        Workload::Qsort => dispatch!(qsort, qsort_params(preset), sys, nprocs),
        Workload::Water288 => dispatch!(water, water_params(preset, false), sys, nprocs),
        Workload::Water1728 => dispatch!(water, water_params(preset, true), sys, nprocs),
        Workload::BarnesHut => dispatch!(barnes, barnes_params(preset), sys, nprocs),
        Workload::Fft3d => dispatch!(fft3d, fft_params(preset), sys, nprocs),
        Workload::Ilink => dispatch!(ilink, ilink_params(preset), sys, nprocs),
    }
}

/// One entry of a reproduction matrix: a workload under a system at a
/// processor count.
pub type RunKey = (Workload, System, usize);

/// The precomputed results of a reproduction: every requested sequential
/// baseline and parallel run, keyed for lookup.
///
/// A matrix is *computed* (possibly on many cores, see [`run_matrix`]) and
/// then *rendered*: because every simulation is deterministic and the
/// results are stored under their keys — never in completion order — the
/// rendering is a pure function of the request, so serial and parallel
/// computation produce byte-identical tables, figures and JSON.
pub struct RunMatrix {
    /// The preset the matrix was computed under.
    pub preset: Preset,
    seq: Vec<(Workload, SeqRun)>,
    runs: Vec<(RunKey, AppRun)>,
}

impl RunMatrix {
    /// The sequential baseline of `w`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix was not computed with `w`'s baseline.
    pub fn sequential(&self, w: Workload) -> &SeqRun {
        self.seq
            .iter()
            .find(|(k, _)| *k == w)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("{} baseline not in the matrix", w.name()))
    }

    /// The parallel run of `w` under `sys` at `nprocs` processes.
    ///
    /// # Panics
    ///
    /// Panics if that run is not in the matrix.
    pub fn run(&self, w: Workload, sys: System, nprocs: usize) -> &AppRun {
        self.runs
            .iter()
            .find(|((kw, ks, kn), _)| *kw == w && *ks == sys && *kn == nprocs)
            .map(|(_, r)| r)
            .unwrap_or_else(|| panic!("{} under {sys} at {nprocs} not in the matrix", w.name()))
    }

    /// Every parallel run in the matrix, in request order.
    pub fn runs(&self) -> impl Iterator<Item = (&RunKey, &AppRun)> {
        self.runs.iter().map(|(k, r)| (k, r))
    }

    /// Number of parallel runs held.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the matrix holds no parallel runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Compute a reproduction matrix — the sequential baseline of every workload
/// in `seq_workloads` plus every run in `keys` — on `jobs` worker threads.
///
/// Each entry is an independent deterministic simulation; the executor in
/// [`exec`] fans them out and delivers results in request order, so the
/// returned matrix (and anything rendered from it) is bit-identical for
/// every `jobs` value.  Duplicate keys are computed once.
pub fn run_matrix(
    preset: Preset,
    seq_workloads: &[Workload],
    keys: &[RunKey],
    jobs: usize,
) -> RunMatrix {
    let mut seq_keys: Vec<Workload> = Vec::new();
    for &w in seq_workloads {
        if !seq_keys.contains(&w) {
            seq_keys.push(w);
        }
    }
    let mut run_keys: Vec<RunKey> = Vec::new();
    for &k in keys {
        if !run_keys.contains(&k) {
            run_keys.push(k);
        }
    }
    enum Task {
        Seq(Workload),
        Run(RunKey),
    }
    enum Done {
        Seq(Workload, SeqRun),
        // Boxed: an AppRun (with its per-process stats) dwarfs a SeqRun.
        Run(RunKey, Box<AppRun>),
    }
    let tasks: Vec<Task> = seq_keys
        .iter()
        .map(|&w| Task::Seq(w))
        .chain(run_keys.iter().map(|&k| Task::Run(k)))
        .collect();
    let closures: Vec<_> = tasks
        .into_iter()
        .map(|t| {
            move || match t {
                Task::Seq(w) => Done::Seq(w, run_sequential(w, preset)),
                Task::Run((w, sys, n)) => {
                    Done::Run((w, sys, n), Box::new(run_parallel(w, sys, n, preset)))
                }
            }
        })
        .collect();
    let mut matrix = RunMatrix {
        preset,
        seq: Vec::with_capacity(seq_keys.len()),
        runs: Vec::with_capacity(run_keys.len()),
    };
    for done in exec::run_ordered(jobs, closures) {
        match done {
            Done::Seq(w, s) => matrix.seq.push((w, s)),
            Done::Run(k, r) => matrix.runs.push((k, *r)),
        }
    }
    matrix
}

/// One JSON record per run with every virtual time carried both as decimal
/// and as its raw f64 bit pattern, so a textual `diff` of two dumps is
/// exactly a bit-identity check.  Shared by the `reproduce --json` dump and
/// the parallel-vs-serial determinism tests.
pub fn run_record_json(w: Workload, run: &AppRun) -> String {
    let mut rec = format!(
        "{{\"workload\": \"{}\", \"system\": \"{}\", \"nprocs\": {}, \
         \"time\": {}, \"time_bits\": \"{:016x}\", \"checksum_bits\": \"{:016x}\", \
         \"messages\": {}, \"kilobytes_bits\": \"{:016x}\", \
         \"datagrams_received\": {}",
        w.name(),
        run.system,
        run.nprocs,
        run.time,
        run.time.to_bits(),
        run.checksum.to_bits(),
        run.messages,
        run.kilobytes.to_bits(),
        run.proc_stats
            .iter()
            .map(|s| s.datagrams_received)
            .sum::<u64>(),
    );
    if let Some(t) = &run.tmk_stats {
        rec.push_str(&format!(
            ", \"page_faults\": {}, \"diff_requests\": {}, \"diff_flushes\": {}, \
             \"page_requests\": {}",
            t.page_faults, t.diff_requests_sent, t.diff_flushes_sent, t.page_requests_sent
        ));
    }
    rec.push('}');
    rec
}

/// Problem-size description printed in the Table 1 reproduction.
pub fn problem_size(w: Workload, preset: Preset) -> String {
    match w {
        Workload::Ep => format!("2^{} pairs", ep_params(preset).pairs.trailing_zeros()),
        Workload::SorZero | Workload::SorNonzero => {
            let p = sor_params(preset, true);
            format!("{}x{} floats, {} iters", p.rows, p.cols, p.iters)
        }
        Workload::IsSmall | Workload::IsLarge => {
            let p = is_params(preset, matches!(w, Workload::IsLarge));
            format!(
                "N=2^{}, Bmax=2^{}, {} iters",
                p.keys.trailing_zeros(),
                p.buckets.trailing_zeros(),
                p.iters
            )
        }
        Workload::Tsp => {
            let p = tsp_params(preset);
            format!("{} cities, threshold {}", p.cities, p.threshold)
        }
        Workload::Qsort => {
            let p = qsort_params(preset);
            format!("{}K integers", p.elems / 1024)
        }
        Workload::Water288 | Workload::Water1728 => {
            let p = water_params(preset, matches!(w, Workload::Water1728));
            format!("{} molecules, {} steps", p.molecules, p.steps)
        }
        Workload::BarnesHut => {
            let p = barnes_params(preset);
            format!("{} bodies, {} steps", p.bodies, p.steps)
        }
        Workload::Fft3d => {
            let p = fft_params(preset);
            format!("{}x{}x{}, {} iters", p.n1, p.n2, p.n3, p.iters)
        }
        Workload::Ilink => {
            let p = ilink_params(preset);
            format!("{} families, genarray {}", p.families, p.genarray)
        }
    }
}

fn ep_params(p: Preset) -> ep::EpParams {
    match p {
        Preset::Tiny => ep::EpParams::tiny(),
        Preset::Scaled => ep::EpParams::scaled(),
        Preset::Paper => ep::EpParams::paper(),
    }
}

fn sor_params(p: Preset, zero: bool) -> sor::SorParams {
    match (p, zero) {
        (Preset::Tiny, z) => sor::SorParams::tiny(z),
        (Preset::Scaled, true) => sor::SorParams::scaled_zero(),
        (Preset::Scaled, false) => sor::SorParams::scaled_nonzero(),
        (Preset::Paper, true) => sor::SorParams::paper_zero(),
        (Preset::Paper, false) => sor::SorParams::paper_nonzero(),
    }
}

fn is_params(p: Preset, large: bool) -> is::IsParams {
    match (p, large) {
        (Preset::Tiny, _) => is::IsParams::tiny(),
        (Preset::Scaled, false) => is::IsParams::scaled_small(),
        (Preset::Scaled, true) => is::IsParams::scaled_large(),
        (Preset::Paper, false) => is::IsParams::paper_small(),
        (Preset::Paper, true) => is::IsParams::paper_large(),
    }
}

fn tsp_params(p: Preset) -> tsp::TspParams {
    match p {
        Preset::Tiny => tsp::TspParams::tiny(),
        Preset::Scaled => tsp::TspParams::scaled(),
        Preset::Paper => tsp::TspParams::paper(),
    }
}

fn qsort_params(p: Preset) -> qsort::QsortParams {
    match p {
        Preset::Tiny => qsort::QsortParams::tiny(),
        Preset::Scaled => qsort::QsortParams::scaled(),
        Preset::Paper => qsort::QsortParams::paper(),
    }
}

fn water_params(p: Preset, large: bool) -> water::WaterParams {
    match (p, large) {
        (Preset::Tiny, _) => water::WaterParams::tiny(),
        (Preset::Scaled, false) => water::WaterParams::scaled_288(),
        (Preset::Scaled, true) => water::WaterParams::scaled_1728(),
        (Preset::Paper, false) => water::WaterParams::paper_288(),
        (Preset::Paper, true) => water::WaterParams::paper_1728(),
    }
}

fn barnes_params(p: Preset) -> barnes::BarnesParams {
    match p {
        Preset::Tiny => barnes::BarnesParams::tiny(),
        Preset::Scaled => barnes::BarnesParams::scaled(),
        Preset::Paper => barnes::BarnesParams::paper(),
    }
}

fn fft_params(p: Preset) -> fft3d::FftParams {
    match p {
        Preset::Tiny => fft3d::FftParams::tiny(),
        Preset::Scaled => fft3d::FftParams::scaled(),
        Preset::Paper => fft3d::FftParams::paper(),
    }
}

fn ilink_params(p: Preset) -> ilink::IlinkParams {
    match p {
        Preset::Tiny => ilink::IlinkParams::tiny(),
        Preset::Scaled => ilink::IlinkParams::scaled(),
        Preset::Paper => ilink::IlinkParams::paper(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_sequential_runner() {
        for w in Workload::all() {
            let s = run_sequential(w, Preset::Tiny);
            assert!(s.time > 0.0, "{} has zero sequential time", w.name());
        }
    }

    #[test]
    fn every_workload_runs_under_every_system() {
        for w in Workload::all() {
            for sys in System::all() {
                let r = run_parallel(w, sys, 2, Preset::Tiny);
                assert!(r.time > 0.0, "{} failed under {}", w.name(), sys);
            }
        }
    }

    /// The `Preset::Tiny` smoke test of the reproduce harness: all
    /// applications at 2 processes under both DSM protocol backends report
    /// finite speedups and nonzero message counts.
    #[test]
    fn tiny_preset_smokes_all_apps_under_both_protocols() {
        use treadmarks::ProtocolKind;
        for w in Workload::all() {
            let seq = run_sequential(w, Preset::Tiny);
            assert!(seq.time > 0.0, "{}: no sequential baseline", w.name());
            for protocol in ProtocolKind::all() {
                let run = run_parallel(w, System::TreadMarks(protocol), 2, Preset::Tiny);
                let speedup = run.speedup(seq.time);
                assert!(
                    speedup.is_finite() && speedup > 0.0,
                    "{} under {protocol}: speedup {speedup} not finite",
                    w.name()
                );
                assert!(
                    run.messages > 0,
                    "{} under {protocol}: no messages at 2 processes",
                    w.name()
                );
                assert!(
                    (run.checksum - seq.checksum).abs() <= seq.checksum.abs() * 1e-6 + 1e-6,
                    "{} under {protocol}: checksum {} vs sequential {}",
                    w.name(),
                    run.checksum,
                    seq.checksum
                );
            }
        }
    }

    /// The tentpole guarantee of the parallel executor: a matrix computed on
    /// a worker pool is bit-identical — every virtual time, checksum and
    /// counter, on every process of every run — to the same matrix computed
    /// serially on one thread.
    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let workloads = [
            Workload::Ep,
            Workload::SorZero,
            Workload::Tsp,
            Workload::Water288,
        ];
        let keys: Vec<RunKey> = workloads
            .iter()
            .flat_map(|&w| {
                System::all()
                    .into_iter()
                    .flat_map(move |sys| [1usize, 2, 4].into_iter().map(move |n| (w, sys, n)))
            })
            .collect();
        let serial = run_matrix(Preset::Tiny, &workloads, &keys, 1);
        let parallel = run_matrix(Preset::Tiny, &workloads, &keys, 4);
        for &w in &workloads {
            let (a, b) = (serial.sequential(w), parallel.sequential(w));
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "{} seq time", w.name());
            assert_eq!(
                a.checksum.to_bits(),
                b.checksum.to_bits(),
                "{} seq checksum",
                w.name()
            );
        }
        for &(w, sys, n) in &keys {
            let (a, b) = (serial.run(w, sys, n), parallel.run(w, sys, n));
            // f64 Debug output is shortest-round-trip, so Debug equality of
            // the full record (times, counters, per-process stats) is
            // bit-identity.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{} under {sys} at {n} differs between serial and parallel execution",
                w.name()
            );
            assert_eq!(
                run_record_json(w, a),
                run_record_json(w, b),
                "{} under {sys} at {n}: JSON record differs",
                w.name()
            );
        }
    }

    #[test]
    fn duplicate_matrix_keys_are_computed_once() {
        let w = Workload::Ep;
        let sys = System::Pvm;
        let keys = vec![(w, sys, 2), (w, sys, 2), (w, sys, 2)];
        let m = run_matrix(Preset::Tiny, &[w], &keys, 2);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert!(m.run(w, sys, 2).time > 0.0);
    }

    #[test]
    fn problem_sizes_are_described() {
        for w in Workload::all() {
            assert!(!problem_size(w, Preset::Scaled).is_empty());
        }
    }
}

//! Seeded schedule-exploration and fault-injection fuzzing.
//!
//! `reproduce fuzz` fans every `(workload, system)` point of a spec across
//! `--seeds N` fuzz seeds.  Seed 0 is the pristine run — schedule seed 0
//! (rank order) and the plan exactly as given — so one point of every
//! campaign is the engine's historical behaviour; seed `s > 0` explores a
//! perturbed world: the arbiter breaks virtual-time ties with schedule
//! seed `s` and the fault plan's per-link streams re-key through
//! [`FaultPlan::for_seed`].  Every run is classified by the invariant
//! battery ([`crate::invariants`]); anything that is not a clean pass —
//! wrong checksum, data race, cross-backend disagreement, deadlock,
//! livelock, fault-plan crash — becomes a [`Finding`], is greedily shrunk
//! to a minimal tuning ([`crate::shrink`]), and is rendered as a scenario
//! file ([`cluster::Scenario`] TOML) that `reproduce --scenario` replays
//! exactly.
//!
//! Everything here is deterministic: the fan runs on the ordered executor
//! ([`crate::exec`]), the report is assembled in request order, and each
//! simulated run is a pure function of its configuration — so the whole
//! report is byte-identical across reruns and `--jobs` widths, which CI
//! asserts.

use crate::invariants::{self, RunVerdict};
use crate::{exec, run_sequential, shrink, try_run_parallel_on, Preset, RunTuning};
use apps::runner::{SeqRun, System};
use apps::Workload;
use cluster::{AnalysisLevel, ClusterConfig, FaultPlan, NetModel, Scenario};

/// What to fuzz: the cross product of workloads and systems, explored over
/// `seeds` fuzz seeds under a base fault plan.
#[derive(Debug, Clone)]
pub struct FuzzSpec {
    /// Problem-size preset (Tiny keeps a campaign in seconds).
    pub preset: Preset,
    /// The interconnect model every run uses.
    pub net: NetModel,
    /// Processor count of every run.
    pub nprocs: usize,
    /// Workloads to fan over.
    pub workloads: Vec<Workload>,
    /// Systems to fan over.
    pub systems: Vec<System>,
    /// Number of fuzz seeds; seed 0 is always the pristine run.
    pub seeds: u64,
    /// Base fault plan; seed `s > 0` runs it re-keyed via
    /// [`FaultPlan::for_seed`].
    pub plan: FaultPlan,
    /// Stop after the first seed whose batch produced a finding.
    pub until_failure: bool,
    /// Worker threads for the per-seed fan (the report is identical for
    /// every value).
    pub jobs: usize,
    /// Scheduler island width of every run (the report is identical for
    /// every value: faults draw from per-link PRNG streams, so island order
    /// never leaks into draws).
    pub islands: usize,
    /// Island worker threads inside each horizon window (the report is
    /// identical for every value: the staging-buffer merge fixes delivery
    /// order before any thread interleaving can reach a simulated byte).
    pub island_threads: usize,
}

/// One invariant failure the fuzzer found, shrunk and ready to replay.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The workload that failed.
    pub workload: Workload,
    /// The system it failed under.
    pub system: System,
    /// The fuzz seed of the failing run.
    pub seed: u64,
    /// How it failed.
    pub verdict: RunVerdict,
    /// The minimal tuning that still reproduces the verdict kind.
    pub shrunk: RunTuning,
    /// A scenario file (TOML) replaying the shrunk failure via
    /// `reproduce --scenario`.
    pub reproducer: String,
}

/// The outcome of a campaign: the findings plus the deterministic textual
/// report (one line per seed, each finding's summary and reproducer, and a
/// final `findings: N` line).
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Every finding, in (seed, workload, system) order.
    pub findings: Vec<Finding>,
    /// The rendered report; byte-identical across reruns and jobs widths.
    pub report: String,
}

/// The tuning fuzz seed `seed` explores under base plan `plan`: seed 0 is
/// pristine (schedule seed 0, the plan as given — the empty plan stays
/// bit-identical to the un-fuzzed harness), seed `s > 0` breaks ties with
/// schedule seed `s` and re-keys the plan's fault streams per seed.
pub fn tuning_for(plan: &FaultPlan, seed: u64) -> RunTuning {
    let fault = if seed == 0 || plan.is_empty() {
        plan.clone()
    } else {
        plan.for_seed(seed)
    };
    RunTuning {
        sched_seed: seed,
        tie_limit: None,
        fault,
    }
}

/// The scenario-file name of a system (`lrc` / `hlrc` / `sc` / `pvm`),
/// accepted back by `reproduce --scenario` and `--systems`.
fn system_name(sys: System) -> &'static str {
    match sys {
        System::TreadMarks(protocol) => protocol.name(),
        System::Pvm => "pvm",
    }
}

fn preset_name(p: Preset) -> &'static str {
    match p {
        Preset::Tiny => "tiny",
        Preset::Scaled => "scaled",
        Preset::Paper => "paper",
    }
}

/// The cluster configuration of one fuzz point: the spec's interconnect at
/// its processor count, racecheck enabled (the race detector is one of the
/// invariants and never perturbs simulated output), and the tuning applied.
fn point_config(spec: &FuzzSpec, tuning: &RunTuning) -> ClusterConfig {
    let mut cfg = spec.net.config(spec.nprocs);
    cfg.analysis = AnalysisLevel::Race;
    cfg.islands = spec.islands;
    cfg.island_threads = spec.island_threads;
    tuning.apply(&mut cfg);
    cfg
}

/// Render the shrunk failure as a scenario file that `reproduce --scenario`
/// replays: one workload, the named systems, the spec's testbed, and the
/// shrunk schedule seed / tie cap / fault plan.
fn reproducer(spec: &FuzzSpec, w: Workload, systems: &[System], tuning: &RunTuning) -> String {
    Scenario {
        name: format!(
            "fuzz-{}-{}",
            w.name().to_ascii_lowercase(),
            systems
                .iter()
                .map(|&s| system_name(s))
                .collect::<Vec<_>>()
                .join("-")
        ),
        net: spec.net.preset,
        procs: Some(spec.nprocs),
        preset: Some(preset_name(spec.preset).to_string()),
        workloads: vec![w.name().to_string()],
        systems: systems
            .iter()
            .map(|&s| system_name(s).to_string())
            .collect(),
        overrides: spec.net.overrides,
        sched_seed: (tuning.sched_seed != 0).then_some(tuning.sched_seed),
        tie_limit: tuning.tie_limit,
        // Neither the island width nor its thread count is part of a
        // finding's identity (every width reproduces it bit for bit), so
        // reproducers never carry them.
        islands: None,
        island_threads: None,
        fault: (!tuning.fault.is_empty() || tuning.fault.seed != 0).then(|| tuning.fault.clone()),
    }
    .to_toml()
}

/// Run a fuzz campaign.
///
/// Per seed, the `(workload, system)` cross product fans across the
/// ordered executor; each run's verdict comes from the invariant battery,
/// and per workload the completed DSM backends are additionally checked
/// for bitwise cross-backend agreement.  Failures are shrunk (re-running
/// the failing point under candidate tunings until the verdict kind stops
/// reproducing under anything smaller) and rendered as reproducer
/// scenarios.  With `until_failure`, later seeds are skipped once a seed
/// batch has produced a finding.
pub fn run_fuzz(spec: &FuzzSpec) -> FuzzReport {
    use std::fmt::Write as _;
    let seqs: Vec<(Workload, SeqRun)> = spec
        .workloads
        .iter()
        .map(|&w| (w, run_sequential(w, spec.preset)))
        .collect();
    let seq_of = |w: Workload| &seqs.iter().find(|(k, _)| *k == w).unwrap().1;
    let points: Vec<(Workload, System)> = spec
        .workloads
        .iter()
        .flat_map(|&w| spec.systems.iter().map(move |&s| (w, s)))
        .collect();

    let mut report = String::new();
    writeln!(
        report,
        "fuzz: {} seed(s) x {} point(s) ({} workload(s) x {} system(s)), preset {}, \
         net {}, {} procs, plan {}",
        spec.seeds,
        points.len(),
        spec.workloads.len(),
        spec.systems.len(),
        preset_name(spec.preset),
        spec.net.label(),
        spec.nprocs,
        if spec.plan.is_empty() && spec.plan.seed == 0 {
            "empty".to_string()
        } else {
            format!("{:016x}", spec.plan.hash())
        },
    )
    .unwrap();

    let mut findings: Vec<Finding> = Vec::new();
    for seed in 0..spec.seeds {
        let tuning = tuning_for(&spec.plan, seed);
        let tasks: Vec<_> = points
            .iter()
            .map(|&(w, sys)| {
                let tuning = tuning.clone();
                let seq = seq_of(w);
                move || {
                    let cfg = point_config(spec, &tuning);
                    let result = try_run_parallel_on(w, sys, &cfg, spec.preset);
                    let checksum = result.as_ref().ok().map(|r| r.checksum);
                    (invariants::verdict(result, seq), checksum)
                }
            })
            .collect();
        let outcomes = exec::run_ordered(spec.jobs, tasks);

        // Per-point verdicts, then the per-workload cross-backend check
        // over whichever DSM backends completed this seed.
        let mut seed_failures: Vec<(Workload, System, RunVerdict)> = Vec::new();
        for (&(w, sys), (v, _)) in points.iter().zip(&outcomes) {
            if v.is_failure() {
                seed_failures.push((w, sys, v.clone()));
            }
        }
        for &w in &spec.workloads {
            let completed: Vec<(System, f64)> = points
                .iter()
                .zip(&outcomes)
                .filter(|((pw, _), _)| *pw == w)
                .filter_map(|(&(_, sys), (_, checksum))| checksum.map(|c| (sys, c)))
                .collect();
            let v = invariants::cross_backend_equality(&completed);
            if v.is_failure() {
                let offender = completed.first().map(|&(s, _)| s).unwrap_or(System::Pvm);
                seed_failures.push((w, offender, v));
            }
        }

        if seed_failures.is_empty() {
            writeln!(report, "seed {seed}: {} run(s), all pass", points.len()).unwrap();
        } else {
            for (w, sys, v) in &seed_failures {
                writeln!(
                    report,
                    "seed {seed}: FAIL {}/{}: {}",
                    w.name(),
                    system_name(*sys),
                    v.summary()
                )
                .unwrap();
            }
            for (w, sys, v) in seed_failures {
                let finding = shrink_finding(spec, w, sys, seed, v, &tuning, seq_of(w));
                writeln!(
                    report,
                    "  shrunk reproducer for {}/{}:",
                    w.name(),
                    system_name(sys)
                )
                .unwrap();
                for line in finding.reproducer.lines() {
                    if line.is_empty() {
                        writeln!(report).unwrap();
                    } else {
                        writeln!(report, "    {line}").unwrap();
                    }
                }
                findings.push(finding);
            }
            if spec.until_failure {
                writeln!(report, "stopping at seed {seed} (--until-failure)").unwrap();
                break;
            }
        }
    }
    writeln!(report, "findings: {}", findings.len()).unwrap();
    FuzzReport { findings, report }
}

/// Shrink one failure: re-run the failing point under candidate tunings,
/// keeping a candidate only while the verdict kind still reproduces, then
/// render the reproducer scenario.  Cross-backend violations re-run every
/// completing system of the workload and reproduce when any pair of DSM
/// backends still disagrees bitwise.
fn shrink_finding(
    spec: &FuzzSpec,
    w: Workload,
    sys: System,
    seed: u64,
    verdict: RunVerdict,
    tuning: &RunTuning,
    seq: &SeqRun,
) -> Finding {
    let kind = verdict.kind();
    let cross_backend =
        matches!(&verdict, RunVerdict::Violation(msg) if msg.contains("backends disagree"));
    let shrunk = if cross_backend {
        shrink::shrink(tuning, |t| {
            let cfg = point_config(spec, t);
            let completed: Vec<(System, f64)> = spec
                .systems
                .iter()
                .filter_map(|&s| {
                    try_run_parallel_on(w, s, &cfg, spec.preset)
                        .ok()
                        .map(|r| (s, r.checksum))
                })
                .collect();
            invariants::cross_backend_equality(&completed).is_failure()
        })
    } else {
        shrink::shrink(tuning, |t| {
            let cfg = point_config(spec, t);
            invariants::verdict(try_run_parallel_on(w, sys, &cfg, spec.preset), seq).kind() == kind
        })
    };
    let systems: Vec<System> = if cross_backend {
        spec.systems.clone()
    } else {
        vec![sys]
    };
    let reproducer = reproducer(spec, w, &systems, &shrunk);
    Finding {
        workload: w,
        system: sys,
        seed,
        verdict,
        shrunk,
        reproducer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::NetPreset;
    use treadmarks::ProtocolKind;

    fn tiny_spec(systems: Vec<System>, seeds: u64, plan: FaultPlan) -> FuzzSpec {
        FuzzSpec {
            preset: Preset::Tiny,
            net: NetModel::preset(NetPreset::Fddi),
            nprocs: 2,
            workloads: vec![Workload::Ep],
            systems,
            seeds,
            plan,
            until_failure: false,
            jobs: 2,
            islands: 1,
            island_threads: 1,
        }
    }

    #[test]
    fn seed_zero_is_the_pristine_tuning() {
        assert!(tuning_for(&FaultPlan::default(), 0).is_default());
        // And with a plan, seed 0 runs the plan exactly as given.
        let plan = FaultPlan::lossy(7);
        let t = tuning_for(&plan, 0);
        assert_eq!(t.sched_seed, 0);
        assert_eq!(t.fault, plan);
        // Seed s > 0 re-keys the streams and seeds the arbiter.
        let t = tuning_for(&plan, 3);
        assert_eq!(t.sched_seed, 3);
        assert_ne!(t.fault.seed, plan.seed);
        assert_eq!(t.fault.drop, plan.drop);
    }

    #[test]
    fn a_clean_campaign_reports_zero_findings() {
        let spec = tiny_spec(
            vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm],
            2,
            FaultPlan::default(),
        );
        let out = run_fuzz(&spec);
        assert!(out.findings.is_empty(), "{}", out.report);
        assert!(
            out.report.trim_end().ends_with("findings: 0"),
            "{}",
            out.report
        );
        assert!(out.report.contains("seed 0: 2 run(s), all pass"));
    }

    #[test]
    fn the_report_is_bit_identical_across_jobs_widths() {
        let mut narrow = tiny_spec(
            vec![System::TreadMarks(ProtocolKind::Lrc), System::Pvm],
            3,
            FaultPlan::lossy(5),
        );
        let mut wide = narrow.clone();
        narrow.jobs = 1;
        wide.jobs = 4;
        assert_eq!(run_fuzz(&narrow).report, run_fuzz(&wide).report);
    }

    #[test]
    fn a_crash_plan_yields_a_shrunk_replayable_reproducer() {
        let plan = FaultPlan {
            crashes: vec!["1@0.00001".parse().unwrap()],
            ..FaultPlan::default()
        };
        let spec = tiny_spec(vec![System::TreadMarks(ProtocolKind::Lrc)], 1, plan);
        let out = run_fuzz(&spec);
        assert_eq!(out.findings.len(), 1, "{}", out.report);
        let f = &out.findings[0];
        assert!(
            f.verdict.kind() == "crash" || f.verdict.kind() == "deadlock",
            "{}",
            f.verdict.summary()
        );
        // The reproducer is a valid scenario that carries the crash.
        let s = Scenario::parse_toml(&f.reproducer).unwrap();
        assert_eq!(s.procs, Some(2));
        assert_eq!(s.workloads, vec!["EP".to_string()]);
        assert_eq!(s.systems, vec!["lrc".to_string()]);
        assert_eq!(s.fault.as_ref().unwrap().crashes.len(), 1);
        // And shrinking was a fixpoint: the shrunk tuning still has the
        // crash and nothing else.
        assert!(f.shrunk.fault.partitions.is_empty());
        assert_eq!(f.shrunk.sched_seed, 0);
    }
}

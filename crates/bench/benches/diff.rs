//! Ablation: run-length diffs versus whole-page transfers.
//!
//! The multiple-writer protocol's diffs are what let TreadMarks send *less*
//! data than PVM in SOR-Zero (most pages stay zero, so diffs are tiny).
//! This bench measures diff creation and application for sparse and dense
//! pages and compares the encoded size against a whole-page transfer.

use criterion::{criterion_group, criterion_main, Criterion};
use treadmarks::Diff;

const PAGE: usize = 4096;

fn sparse_pair() -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; PAGE];
    let mut page = twin.clone();
    for i in (0..64).map(|k| k * 61) {
        page[i] = 1;
    }
    (twin, page)
}

fn dense_pair() -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; PAGE];
    let page: Vec<u8> = (0..PAGE).map(|i| (i % 251 + 1) as u8).collect();
    (twin, page)
}

/// The simulator's dominant case: an almost untouched page (one cache line
/// of f64s modified), as SOR-Zero and the barrier-heavy apps produce.
fn mostly_equal_pair() -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; PAGE];
    let mut page = twin.clone();
    for b in &mut page[2048..2112] {
        *b = 7;
    }
    (twin, page)
}

fn bench_diffs(c: &mut Criterion) {
    let (stwin, spage) = sparse_pair();
    let (dtwin, dpage) = dense_pair();
    let (mtwin, mpage) = mostly_equal_pair();

    c.bench_function("diff_create_mostly_equal_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&mtwin), std::hint::black_box(&mpage)))
    });
    c.bench_function("diff_create_mostly_equal_page_bytewise_reference", |b| {
        b.iter(|| {
            Diff::create_reference(std::hint::black_box(&mtwin), std::hint::black_box(&mpage))
        })
    });

    c.bench_function("diff_create_sparse_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&stwin), std::hint::black_box(&spage)))
    });
    c.bench_function("diff_create_dense_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&dtwin), std::hint::black_box(&dpage)))
    });
    // The byte-at-a-time oracle, timed alongside the shipping word-scan so
    // the fast path's advantage stays visible (and honest) in bench output.
    c.bench_function("diff_create_sparse_page_bytewise_reference", |b| {
        b.iter(|| {
            Diff::create_reference(std::hint::black_box(&stwin), std::hint::black_box(&spage))
        })
    });
    c.bench_function("diff_create_dense_page_bytewise_reference", |b| {
        b.iter(|| {
            Diff::create_reference(std::hint::black_box(&dtwin), std::hint::black_box(&dpage))
        })
    });

    let sparse = Diff::create(&stwin, &spage);
    let dense = Diff::create(&dtwin, &dpage);
    // The data-volume ablation: a sparse diff is far smaller than a page,
    // a dense diff is slightly larger (run headers).
    assert!(sparse.encoded_len() < PAGE / 4);
    assert!(dense.encoded_len() >= PAGE);

    c.bench_function("diff_apply_sparse_page", |b| {
        let mut target = vec![0u8; PAGE];
        b.iter(|| sparse.apply(std::hint::black_box(&mut target)))
    });
    c.bench_function("diff_apply_dense_page", |b| {
        let mut target = vec![0u8; PAGE];
        b.iter(|| dense.apply(std::hint::black_box(&mut target)))
    });
    c.bench_function("whole_page_copy_baseline", |b| {
        let mut target = vec![0u8; PAGE];
        b.iter(|| target.copy_from_slice(std::hint::black_box(&dpage)))
    });
}

criterion_group!(benches, bench_diffs);
criterion_main!(benches);

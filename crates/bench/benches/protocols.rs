//! Ablation: fault-service cost under the two coherence-protocol backends.
//!
//! The same repeated-fault workloads run under multiple-writer LRC (diff
//! requests to every concurrent writer, diff accumulation at the responders)
//! and under home-based LRC (eager flushes at release, one full-page fetch
//! per fault).  The benches measure the end-to-end simulation cost of the
//! fault-heavy phases; the companion assertions pin the structural
//! difference — HLRC never issues more fault round-trips than LRC.

use cluster::{Cluster, ClusterConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treadmarks::{ProtocolKind, Tmk};

/// False sharing: two writers modify disjoint halves of the same pages every
/// round; every process then reads everything, faulting each page back in.
fn false_sharing_faults(protocol: ProtocolKind, rounds: u32) -> (f64, u64) {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(4), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let pages = 4usize;
        let a = tmk.malloc_aligned(pages * 4096, 4096);
        tmk.barrier(0);
        for round in 0..rounds {
            if tmk.id() < 2 {
                for page in 0..pages {
                    let base = a + page * 4096 + tmk.id() * 2048;
                    for i in 0..8 {
                        tmk.write_i64(base + i * 8, (round as usize * 100 + i) as i64);
                    }
                }
            }
            tmk.barrier(1 + 2 * round);
            let mut sink = 0i64;
            for page in 0..pages {
                sink ^= tmk.read_i64(a + page * 4096);
            }
            std::hint::black_box(sink);
            tmk.barrier(2 + 2 * round);
        }
        let trips = tmk.stats().fault_round_trips();
        tmk.exit();
        trips
    });
    (rep.parallel_time(), rep.results.iter().sum())
}

/// Migratory data: each process in turn rewrites a block under a lock, so
/// every handoff faults the block in at the next writer.
fn migratory_faults(protocol: ProtocolKind, rounds: u32) -> (f64, u64) {
    let n = 4;
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::with_protocol(p, protocol);
        let a = tmk.malloc_aligned(4096, 4096);
        tmk.barrier(0);
        for round in 0..rounds {
            let writer = (round as usize) % n;
            if tmk.id() == writer {
                tmk.lock_acquire(0);
                for i in 0..64 {
                    tmk.write_i64(a + i * 8, (round as usize * 1000 + i) as i64);
                }
                tmk.lock_release(0);
            }
            tmk.barrier(1 + round);
        }
        let trips = tmk.stats().fault_round_trips();
        tmk.exit();
        trips
    });
    (rep.parallel_time(), rep.results.iter().sum())
}

fn bench_protocols(c: &mut Criterion) {
    // Pin the structural claim before timing anything: per workload, HLRC
    // issues no more fault round-trips than LRC.
    let (_, lrc_trips) = false_sharing_faults(ProtocolKind::Lrc, 4);
    let (_, hlrc_trips) = false_sharing_faults(ProtocolKind::Hlrc, 4);
    assert!(
        hlrc_trips < lrc_trips,
        "false sharing: HLRC {hlrc_trips} vs LRC {lrc_trips} round-trips"
    );
    let (_, lrc_trips) = migratory_faults(ProtocolKind::Lrc, 8);
    let (_, hlrc_trips) = migratory_faults(ProtocolKind::Hlrc, 8);
    assert!(
        hlrc_trips <= lrc_trips,
        "migratory: HLRC {hlrc_trips} vs LRC {lrc_trips} round-trips"
    );

    let mut group = c.benchmark_group("fault_service_false_sharing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for protocol in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, &protocol| b.iter(|| false_sharing_faults(protocol, 4)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fault_service_migratory");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for protocol in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, &protocol| b.iter(|| migratory_faults(protocol, 8)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);

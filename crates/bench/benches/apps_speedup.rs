//! End-to-end benchmark of the application suite at tiny problem sizes —
//! one criterion measurement per (workload, system), so regressions in the
//! runtime systems or in the simulator show up in `cargo bench` output.
//! The full paper-shaped sweeps (Figures 1–12, Tables 1–2) are produced by
//! the `reproduce` binary, which is not time-boxed by criterion.

use apps::runner::System;
use apps::Workload;
use bench::{run_parallel, Preset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_tiny_4procs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for w in Workload::all() {
        for sys in System::all() {
            group.bench_with_input(
                BenchmarkId::new(w.name(), sys.to_string()),
                &(w, sys),
                |b, &(w, sys)| b.iter(|| run_parallel(w, sys, 4, Preset::Tiny)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);

//! Ablation: synchronization primitive costs.
//!
//! Barriers cost `2 * (n - 1)` messages with a centralised manager; an
//! uncontended remote lock acquire costs up to three messages (request,
//! forward, grant) while a repeated acquire by the last holder is free.
//! These benches measure the simulated-cluster implementation of both.

use cluster::{Cluster, ClusterConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treadmarks::Tmk;

fn barrier_round(n: usize, rounds: u32) -> f64 {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::new(p);
        for i in 0..rounds {
            tmk.barrier(i);
        }
        tmk.exit();
        p.clock()
    });
    rep.parallel_time()
}

fn lock_chain(n: usize, rounds: usize) -> f64 {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::new(p);
        tmk.barrier(0);
        for _ in 0..rounds {
            tmk.lock_acquire(0);
            tmk.lock_release(0);
        }
        tmk.barrier(1);
        tmk.exit();
        p.clock()
    });
    rep.parallel_time()
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| barrier_round(n, 4))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lock_contention");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| lock_chain(n, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);

//! Ablation: transport cost model — per-message latency versus bandwidth and
//! MTU fragmentation.
//!
//! The FFT transpose and the IS-Large bucket array both move large blocks;
//! the number of datagrams (and therefore the per-message overhead) depends
//! on the MTU.  This bench exercises the simulated transport at several
//! message sizes.

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ping_pong(bytes: usize, rounds: usize) -> f64 {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), move |p| {
        let payload = Bytes::from(vec![0u8; bytes]);
        for i in 0..rounds as u32 {
            if p.id() == 0 {
                p.send(1, i, payload.clone());
                p.recv(Some(1), i);
            } else {
                p.recv(Some(0), i);
                p.send(0, i, payload.clone());
            }
        }
        p.clock()
    });
    rep.parallel_time()
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("ping_pong");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &size in &[64usize, 4 * 1024, 64 * 1024, 1 << 20] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| ping_pong(size, 4))
        });
    }
    group.finish();

    // Sanity ablation: virtual time grows with message size (bandwidth term)
    // and small messages are latency-dominated.
    let small = ping_pong(64, 4);
    let large = ping_pong(1 << 20, 4);
    assert!(large > small);
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);

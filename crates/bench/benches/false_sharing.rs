//! Ablation: false sharing — multiple writers of one page versus writers of
//! page-aligned private regions.
//!
//! Water-288 suffers from false sharing because several processes' molecules
//! share pages; Water-1728 suffers much less because each process's chunk
//! spans many pages.  This bench isolates the effect: n processes write
//! interleaved 64-byte slots of the same pages, versus each writing its own
//! page-aligned region, and a reader then fetches everything.

use cluster::{Cluster, ClusterConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treadmarks::Tmk;

fn shared_writes(n: usize, interleaved: bool) -> (f64, u64) {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::new(p);
        let slots = 64usize; // 64 slots of 64 bytes = one page per "group"
        let total = slots * 64 * n;
        let addr = tmk.malloc(total);
        tmk.barrier(0);
        for s in 0..slots {
            let idx = if interleaved {
                s * n + tmk.id()
            } else {
                tmk.id() * slots + s
            };
            let data = vec![tmk.id() as u8 + 1; 64];
            tmk.write_bytes(addr + idx * 64, &data);
        }
        tmk.barrier(1);
        // Everyone reads everything (the force read-back phase of Water).
        let mut buf = vec![0u8; total];
        tmk.read_bytes(addr, &mut buf);
        tmk.barrier(2);
        tmk.exit();
        buf[0] as f64
    });
    (rep.parallel_time(), rep.total_messages())
}

fn bench_false_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("false_sharing");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("interleaved", n), &n, |b, &n| {
            b.iter(|| shared_writes(n, true))
        });
        group.bench_with_input(BenchmarkId::new("page_aligned", n), &n, |b, &n| {
            b.iter(|| shared_writes(n, false))
        });
    }
    group.finish();

    // The effect itself: interleaved (falsely shared) layout needs more
    // messages than the page-aligned layout at 8 processes.
    let (_, interleaved) = shared_writes(8, true);
    let (_, aligned) = shared_writes(8, false);
    assert!(
        interleaved > aligned,
        "false sharing should cost messages: {interleaved} vs {aligned}"
    );
}

criterion_group!(benches, bench_false_sharing);
criterion_main!(benches);

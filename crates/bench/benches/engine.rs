//! Engine throughput: how fast the simulator simulates.
//!
//! Two figures of merit, printed per configuration alongside the criterion
//! timings so the perf trajectory of the engine itself (PR 3 and onward) is
//! measurable:
//!
//! * **events/sec** — transport messages processed per wall-clock second
//!   (each message is one arbitrated send plus one arbitrated consume, the
//!   engine's unit of scheduling work);
//! * **virtual-seconds-per-wall-second** — how much simulated cluster time
//!   one wall second buys.
//!
//! The `matrix_*` benches time the parallel run executor end-to-end at
//! different worker counts over the same workload matrix; on a multi-core
//! host the default-jobs variant is the one the `reproduce` binary ships.

use apps::runner::System;
use apps::Workload;
use bench::{exec, run_matrix, run_parallel, run_parallel_on, Preset, RunKey};
use cluster::ClusterConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use treadmarks::ProtocolKind;

fn transport_messages(run: &apps::AppRun) -> u64 {
    run.proc_stats.iter().map(|s| s.messages_sent).sum()
}

fn engine_throughput(c: &mut Criterion) {
    let configs = [
        (Workload::SorZero, System::TreadMarks(ProtocolKind::Lrc), 4),
        (Workload::Water288, System::TreadMarks(ProtocolKind::Lrc), 8),
        (
            Workload::Water288,
            System::TreadMarks(ProtocolKind::Hlrc),
            8,
        ),
        (Workload::Ep, System::Pvm, 8),
    ];
    for (w, sys, n) in configs {
        let label = format!("engine/{}/{sys}/{n}p", w.name());
        // Explicit throughput numbers (criterion's shim prints only times).
        // lint:allow(wall-clock): benchmark measures this machine's throughput
        let started = Instant::now();
        let iters = 5;
        let mut events = 0u64;
        let mut virtual_seconds = 0.0;
        for _ in 0..iters {
            let run = run_parallel(w, sys, n, Preset::Tiny);
            events += transport_messages(&run);
            virtual_seconds += run.time;
        }
        let wall = started.elapsed().as_secs_f64();
        println!(
            "{label}: {:.0} events/sec, {:.2} virtual-seconds/wall-second",
            events as f64 / wall,
            virtual_seconds / wall
        );
        c.bench_function(&label, |b| b.iter(|| run_parallel(w, sys, n, Preset::Tiny)));
    }
}

/// The threaded windowed engine at increasing widths over one run: the
/// `(islands, island_threads)` knobs are execution-only (bit-identical
/// output, asserted by the determinism suite), so any spread between these
/// rows is pure engine throughput.
fn threaded_windows(c: &mut Criterion) {
    let (w, sys, n) = (Workload::Water288, System::TreadMarks(ProtocolKind::Lrc), 8);
    for (islands, threads) in [(1usize, 1usize), (4, 1), (4, 4)] {
        let run_once = || {
            let mut cfg = ClusterConfig::calibrated_fddi(n);
            cfg.islands = islands;
            cfg.island_threads = threads;
            run_parallel_on(w, sys, &cfg, Preset::Tiny)
        };
        let label = format!(
            "engine/windowed/{}/{sys}/{n}p/islands{islands}_threads{threads}",
            w.name()
        );
        // lint:allow(wall-clock): benchmark measures this machine's throughput
        let started = Instant::now();
        let iters = 5;
        let mut events = 0u64;
        for _ in 0..iters {
            events += transport_messages(&run_once());
        }
        let wall = started.elapsed().as_secs_f64();
        println!("{label}: {:.0} events/sec", events as f64 / wall);
        c.bench_function(&label, |b| b.iter(run_once));
    }
}

/// The allocation pass head-to-head, on the diff store's churn pattern
/// (batch insert, ordered range scan, GC-retain): a plain `BTreeMap` of
/// owned records — the pre-PR-10 layout, every insert and every GC'd
/// removal a tree-node allocation carrying the whole record — against the
/// slab-indexed layout the engine now uses (4-byte handles in the ordered
/// index, records in a recycling slab).
fn slab_vs_btreemap(c: &mut Criterion) {
    use std::collections::BTreeMap;
    use treadmarks::heap::Slab;
    // Shaped like a stored diff: a key the index orders on plus a payload
    // heavy enough that node churn is what the benchmark measures.
    type Key = (u64, usize, u32);
    #[derive(Clone)]
    struct Rec {
        payload: [u64; 8],
    }
    let n = 4096usize;
    let key_of = |i: usize| -> Key { (i as u64 % 64, i % 8, i as u32) };
    c.bench_function("alloc/diff_store/btreemap_records", |b| {
        b.iter(|| {
            let mut map: BTreeMap<Key, Rec> = BTreeMap::new();
            for i in 0..n {
                map.insert(key_of(i), Rec {
                    payload: [i as u64; 8],
                });
            }
            let scanned: u64 = map
                .range((0u64, 0usize, 0u32)..(32u64, 0usize, 0u32))
                .map(|(_, r)| r.payload[0])
                .sum();
            map.retain(|&(page, _, _), _| page >= 32);
            (scanned, map.len())
        })
    });
    c.bench_function("alloc/diff_store/slab_indexed", |b| {
        b.iter(|| {
            let mut slab: Slab<Rec> = Slab::default();
            let mut index: BTreeMap<Key, u32> = BTreeMap::new();
            for i in 0..n {
                let handle = slab.insert(Rec {
                    payload: [i as u64; 8],
                });
                index.insert(key_of(i), handle);
            }
            let scanned: u64 = index
                .range((0u64, 0usize, 0u32)..(32u64, 0usize, 0u32))
                .map(|(_, &h)| slab.get(h).payload[0])
                .sum();
            index.retain(|&(page, _, _), &mut handle| {
                if page >= 32 {
                    true
                } else {
                    slab.remove(handle);
                    false
                }
            });
            (scanned, index.len())
        })
    });
}

fn executor_fanout(c: &mut Criterion) {
    let keys: Vec<RunKey> = Workload::all()
        .into_iter()
        .flat_map(|w| {
            System::all().into_iter().flat_map(move |sys| {
                [2usize, 4]
                    .into_iter()
                    .map(move |n| RunKey::fddi(w, sys, n))
            })
        })
        .collect();
    let mut job_counts = vec![1];
    if exec::default_jobs() > 1 {
        job_counts.push(exec::default_jobs());
    }
    for jobs in job_counts {
        let label = format!("matrix_tiny_jobs_{jobs}");
        // lint:allow(wall-clock): benchmark measures this machine's throughput
        let started = Instant::now();
        let matrix = run_matrix(Preset::Tiny, &[], &keys, jobs);
        let wall = started.elapsed().as_secs_f64();
        let events: u64 = matrix.runs().map(|(_, r)| transport_messages(r)).sum();
        let virtual_seconds: f64 = matrix.runs().map(|(_, r)| r.time).sum();
        println!(
            "{label}: {:.0} events/sec, {:.2} virtual-seconds/wall-second \
             ({} runs in {wall:.2}s)",
            events as f64 / wall,
            virtual_seconds / wall,
            matrix.len()
        );
        c.bench_function(&label, |b| {
            b.iter(|| run_matrix(Preset::Tiny, &[], &keys, jobs))
        });
    }
}

criterion_group!(
    benches,
    engine_throughput,
    threaded_windows,
    slab_vs_btreemap,
    executor_fanout
);
criterion_main!(benches);

//! Engine throughput: how fast the simulator simulates.
//!
//! Two figures of merit, printed per configuration alongside the criterion
//! timings so the perf trajectory of the engine itself (PR 3 and onward) is
//! measurable:
//!
//! * **events/sec** — transport messages processed per wall-clock second
//!   (each message is one arbitrated send plus one arbitrated consume, the
//!   engine's unit of scheduling work);
//! * **virtual-seconds-per-wall-second** — how much simulated cluster time
//!   one wall second buys.
//!
//! The `matrix_*` benches time the parallel run executor end-to-end at
//! different worker counts over the same workload matrix; on a multi-core
//! host the default-jobs variant is the one the `reproduce` binary ships.

use apps::runner::System;
use apps::Workload;
use bench::{exec, run_matrix, run_parallel, Preset, RunKey};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use treadmarks::ProtocolKind;

fn transport_messages(run: &apps::AppRun) -> u64 {
    run.proc_stats.iter().map(|s| s.messages_sent).sum()
}

fn engine_throughput(c: &mut Criterion) {
    let configs = [
        (Workload::SorZero, System::TreadMarks(ProtocolKind::Lrc), 4),
        (Workload::Water288, System::TreadMarks(ProtocolKind::Lrc), 8),
        (
            Workload::Water288,
            System::TreadMarks(ProtocolKind::Hlrc),
            8,
        ),
        (Workload::Ep, System::Pvm, 8),
    ];
    for (w, sys, n) in configs {
        let label = format!("engine/{}/{sys}/{n}p", w.name());
        // Explicit throughput numbers (criterion's shim prints only times).
        // lint:allow(wall-clock): benchmark measures this machine's throughput
        let started = Instant::now();
        let iters = 5;
        let mut events = 0u64;
        let mut virtual_seconds = 0.0;
        for _ in 0..iters {
            let run = run_parallel(w, sys, n, Preset::Tiny);
            events += transport_messages(&run);
            virtual_seconds += run.time;
        }
        let wall = started.elapsed().as_secs_f64();
        println!(
            "{label}: {:.0} events/sec, {:.2} virtual-seconds/wall-second",
            events as f64 / wall,
            virtual_seconds / wall
        );
        c.bench_function(&label, |b| b.iter(|| run_parallel(w, sys, n, Preset::Tiny)));
    }
}

fn executor_fanout(c: &mut Criterion) {
    let keys: Vec<RunKey> = Workload::all()
        .into_iter()
        .flat_map(|w| {
            System::all().into_iter().flat_map(move |sys| {
                [2usize, 4]
                    .into_iter()
                    .map(move |n| RunKey::fddi(w, sys, n))
            })
        })
        .collect();
    let mut job_counts = vec![1];
    if exec::default_jobs() > 1 {
        job_counts.push(exec::default_jobs());
    }
    for jobs in job_counts {
        let label = format!("matrix_tiny_jobs_{jobs}");
        // lint:allow(wall-clock): benchmark measures this machine's throughput
        let started = Instant::now();
        let matrix = run_matrix(Preset::Tiny, &[], &keys, jobs);
        let wall = started.elapsed().as_secs_f64();
        let events: u64 = matrix.runs().map(|(_, r)| transport_messages(r)).sum();
        let virtual_seconds: f64 = matrix.runs().map(|(_, r)| r.time).sum();
        println!(
            "{label}: {:.0} events/sec, {:.2} virtual-seconds/wall-second \
             ({} runs in {wall:.2}s)",
            events as f64 / wall,
            virtual_seconds / wall,
            matrix.len()
        );
        c.bench_function(&label, |b| {
            b.iter(|| run_matrix(Preset::Tiny, &[], &keys, jobs))
        });
    }
}

criterion_group!(benches, engine_throughput, executor_fanout);
criterion_main!(benches);

//! Ablation: diff accumulation on migratory data.
//!
//! When several processes modify the same block under a lock in turn, a
//! later acquirer receives *all* earlier diffs even when they overwrite one
//! another — the paper's explanation for the IS-Large and TSP data volumes.
//! This bench runs the migratory pattern at 2–8 processes; the ratio of
//! TreadMarks bytes to the minimum useful bytes grows with the process
//! count.

use cluster::{Cluster, ClusterConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treadmarks::Tmk;

fn migratory(n: usize, block: usize) -> (f64, u64) {
    let rep = Cluster::run(ClusterConfig::calibrated_fddi(n), move |p| {
        let tmk = Tmk::new(p);
        let addr = tmk.malloc(block);
        tmk.barrier(0);
        // Each process in turn completely overwrites the block.
        for round in 0..n {
            if tmk.id() == round {
                tmk.lock_acquire(0);
                let data = vec![round as i32 + 1; block / 4];
                tmk.write_i32_slice(addr, &data);
                tmk.lock_release(0);
            }
            tmk.barrier(1 + round as u32);
        }
        let mut out = vec![0i32; block / 4];
        tmk.read_i32_slice(addr, &mut out);
        tmk.exit();
        out[0] as f64
    });
    (rep.parallel_time(), rep.total_bytes())
}

fn bench_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("migratory_block_16k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| migratory(n, 16 * 1024))
        });
    }
    group.finish();

    // The accumulation effect itself: bytes grow super-linearly in n.
    let (_, b2) = migratory(2, 16 * 1024);
    let (_, b8) = migratory(8, 16 * 1024);
    assert!(
        b8 as f64 > 2.5 * b2 as f64,
        "expected super-linear growth: {b2} bytes at 2 procs, {b8} at 8"
    );
}

criterion_group!(benches, bench_accumulation);
criterion_main!(benches);

//! Barnes-Hut — hierarchical N-body simulation from the SPLASH suite.
//!
//! Each time step has four phases: build the octree (MakeTree), partition
//! the bodies, compute forces by walking the tree, and update positions and
//! velocities.
//!
//! * **TreadMarks**: the array of bodies is shared and the tree cells are
//!   private — every process reads *all* shared body positions in MakeTree
//!   (many read faults, false sharing because a process's bodies are not
//!   adjacent in memory), computes forces for its own bodies, and writes its
//!   bodies back in the update phase, with barriers between phases.
//! * **PVM**: every process broadcasts its bodies at the end of each step so
//!   that everyone can build a complete private tree; no other communication
//!   is needed.  At 8 processes these simultaneous broadcasts saturate the
//!   network, which is why PVM's own speedup is poor here.

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost per body-cell or body-body interaction evaluated during the force
/// computation.
pub const COST_INTERACTION: f64 = 1.0e-6;
/// Cost per body inserted while building the tree.
pub const COST_INSERT: f64 = 1.3e-6;
/// Opening criterion (theta) of the Barnes-Hut approximation.
const THETA: f64 = 0.6;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct BarnesParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Time steps simulated (the paper times the last `steps - 2`).
    pub steps: usize,
}

impl BarnesParams {
    /// Paper-scale problem: 8192 bodies.
    pub fn paper() -> Self {
        BarnesParams {
            bodies: 8192,
            steps: 4,
        }
    }

    /// Scaled-down problem for the default harness preset.
    pub fn scaled() -> Self {
        BarnesParams {
            bodies: 2048,
            steps: 3,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        BarnesParams {
            bodies: 128,
            steps: 2,
        }
    }

    /// Deterministic initial bodies (Plummer-ish ball of unit masses).
    pub fn initial(&self) -> Vec<Body> {
        let mut out = Vec::with_capacity(self.bodies);
        let mut state = 0x1234_5678_9abc_def1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..self.bodies {
            out.push(Body {
                pos: [next() * 100.0, next() * 100.0, next() * 100.0],
                vel: [0.0; 3],
                mass: 1.0 + next(),
            });
        }
        out
    }
}

/// One body of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// Octree node: either an internal cell with aggregated mass or a leaf body.
enum Node {
    Cell {
        center: [f64; 3],
        half: f64,
        mass: f64,
        com: [f64; 3],
        children: [Option<Box<Node>>; 8],
    },
    Leaf {
        pos: [f64; 3],
        mass: f64,
    },
}

/// Build the octree over all bodies; returns the tree and the insert count.
fn build_tree(bodies: &[Body]) -> (Node, u64) {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for b in bodies {
        for c in 0..3 {
            lo[c] = lo[c].min(b.pos[c]);
            hi[c] = hi[c].max(b.pos[c]);
        }
    }
    let half = (0..3).map(|c| hi[c] - lo[c]).fold(0.0f64, f64::max) / 2.0 + 1e-9;
    let center = [
        (lo[0] + hi[0]) / 2.0,
        (lo[1] + hi[1]) / 2.0,
        (lo[2] + hi[2]) / 2.0,
    ];
    let mut root = Node::Cell {
        center,
        half,
        mass: 0.0,
        com: [0.0; 3],
        children: Default::default(),
    };
    let mut inserts = 0u64;
    for b in bodies {
        insert(&mut root, b.pos, b.mass, &mut inserts);
    }
    finalize(&mut root);
    (root, inserts)
}

fn octant(center: &[f64; 3], pos: &[f64; 3]) -> usize {
    (usize::from(pos[0] >= center[0]))
        | (usize::from(pos[1] >= center[1]) << 1)
        | (usize::from(pos[2] >= center[2]) << 2)
}

fn insert(node: &mut Node, pos: [f64; 3], mass: f64, inserts: &mut u64) {
    *inserts += 1;
    match node {
        Node::Cell {
            center,
            half,
            mass: m,
            com,
            children,
        } => {
            *m += mass;
            for c in 0..3 {
                com[c] += mass * pos[c];
            }
            let o = octant(center, &pos);
            let quarter = *half / 2.0;
            let child_center = [
                center[0] + if o & 1 != 0 { quarter } else { -quarter },
                center[1] + if o & 2 != 0 { quarter } else { -quarter },
                center[2] + if o & 4 != 0 { quarter } else { -quarter },
            ];
            match &mut children[o] {
                slot @ None => {
                    *slot = Some(Box::new(Node::Leaf { pos, mass }));
                }
                Some(child) => {
                    if let Node::Leaf {
                        pos: lp, mass: lm, ..
                    } = **child
                    {
                        // Split the leaf into a cell (unless degenerate).
                        if (lp[0] - pos[0]).abs() + (lp[1] - pos[1]).abs() + (lp[2] - pos[2]).abs()
                            < 1e-12
                        {
                            // Co-located bodies: merge masses.
                            if let Node::Leaf { mass: m2, .. } = &mut **child {
                                *m2 += mass;
                            }
                            return;
                        }
                        let mut cell = Node::Cell {
                            center: child_center,
                            half: quarter,
                            mass: 0.0,
                            com: [0.0; 3],
                            children: Default::default(),
                        };
                        insert(&mut cell, lp, lm, inserts);
                        insert(&mut cell, pos, mass, inserts);
                        **child = cell;
                    } else {
                        insert(child, pos, mass, inserts);
                    }
                }
            }
        }
        Node::Leaf { .. } => unreachable!("insert called on a leaf"),
    }
}

fn finalize(node: &mut Node) {
    if let Node::Cell {
        mass,
        com,
        children,
        ..
    } = node
    {
        if *mass > 0.0 {
            #[allow(clippy::needless_range_loop)]
            // indexing is clearer for the coordinate/matrix access
            for c in 0..3 {
                com[c] /= *mass;
            }
        }
        for child in children.iter_mut().flatten() {
            finalize(child);
        }
    }
}

/// Compute the acceleration on a body; returns (acc, interactions).
fn force_on(node: &Node, pos: &[f64; 3]) -> ([f64; 3], u64) {
    fn add_grav(acc: &mut [f64; 3], from: &[f64; 3], to: &[f64; 3], mass: f64) {
        let d = [from[0] - to[0], from[1] - to[1], from[2] - to[2]];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 0.5;
        let inv = mass / (r2 * r2.sqrt());
        for c in 0..3 {
            acc[c] += d[c] * inv;
        }
    }
    let mut acc = [0.0; 3];
    let mut count = 0u64;
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        match n {
            Node::Leaf { pos: p, mass } => {
                count += 1;
                add_grav(&mut acc, p, pos, *mass);
            }
            Node::Cell {
                half,
                mass,
                com,
                children,
                ..
            } => {
                if *mass == 0.0 {
                    continue;
                }
                let d = [com[0] - pos[0], com[1] - pos[1], com[2] - pos[2]];
                let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if 2.0 * *half / (dist + 1e-12) < THETA {
                    count += 1;
                    add_grav(&mut acc, com, pos, *mass);
                } else {
                    for child in children.iter().flatten() {
                        stack.push(child);
                    }
                }
            }
        }
    }
    (acc, count)
}

/// Advance the bodies in `range` by one step against the tree built over all
/// bodies.  Returns (interactions, inserts are charged by the caller).
fn step_bodies(bodies: &mut [Body], range: std::ops::Range<usize>, tree: &Node) -> u64 {
    const DT: f64 = 0.025;
    let mut interactions = 0u64;
    for i in range {
        let (acc, c) = force_on(tree, &bodies[i].pos);
        interactions += c;
        #[allow(clippy::needless_range_loop)]
        // indexing is clearer for the coordinate/matrix access
        for k in 0..3 {
            bodies[i].vel[k] += DT * acc[k];
            bodies[i].pos[k] += DT * bodies[i].vel[k];
        }
    }
    interactions
}

fn checksum(bodies: &[Body]) -> f64 {
    bodies
        .iter()
        .map(|b| b.pos[0] + 2.0 * b.pos[1] + 3.0 * b.pos[2])
        .sum()
}

/// Sequential reference implementation.
pub fn sequential(p: &BarnesParams) -> SeqRun {
    let mut bodies = p.initial();
    let mut time = 0.0;
    for _ in 0..p.steps {
        let (tree, inserts) = build_tree(&bodies);
        let interactions = step_bodies(&mut bodies, 0..p.bodies, &tree);
        time += inserts as f64 * COST_INSERT + interactions as f64 * COST_INTERACTION;
    }
    SeqRun {
        checksum: checksum(&bodies),
        time,
    }
}

const BODY_F64: usize = 7; // pos 3, vel 3, mass

fn pack_body(b: &Body) -> [f64; BODY_F64] {
    [
        b.pos[0], b.pos[1], b.pos[2], b.vel[0], b.vel[1], b.vel[2], b.mass,
    ]
}

fn unpack_body(f: &[f64]) -> Body {
    Body {
        pos: [f[0], f[1], f[2]],
        vel: [f[3], f[4], f[5]],
        mass: f[6],
    }
}

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &BarnesParams) -> f64 {
    let n = p.bodies;
    let nprocs = tmk.nprocs();
    let bodies_addr = tmk.malloc(n * BODY_F64 * 8);
    if tmk.id() == 0 {
        let init = p.initial();
        let flat: Vec<f64> = init.iter().flat_map(pack_body).collect();
        tmk.write_f64_slice(bodies_addr, &flat);
    }
    tmk.barrier(0);

    let mine = block_range(n, nprocs, tmk.id());
    let mut barrier = 1u32;
    for _ in 0..p.steps {
        // MakeTree: read all shared bodies and build a private tree.
        let mut flat = vec![0.0f64; n * BODY_F64];
        tmk.read_f64_slice(bodies_addr, &mut flat);
        let mut bodies: Vec<Body> = flat.chunks_exact(BODY_F64).map(unpack_body).collect();
        let (tree, inserts) = build_tree(&bodies);
        tmk.proc().compute(inserts as f64 * COST_INSERT);
        tmk.barrier(barrier);
        barrier += 1;

        // Force computation + update of my own bodies.
        let interactions = step_bodies(&mut bodies, mine.clone(), &tree);
        tmk.proc().compute(interactions as f64 * COST_INTERACTION);
        let flat_mine: Vec<f64> = bodies[mine.clone()].iter().flat_map(pack_body).collect();
        tmk.write_f64_slice(bodies_addr + mine.start * BODY_F64 * 8, &flat_mine);
        tmk.barrier(barrier);
        barrier += 1;
    }

    let mut flat = vec![0.0f64; mine.len() * BODY_F64];
    tmk.read_f64_slice(bodies_addr + mine.start * BODY_F64 * 8, &mut flat);
    let own: Vec<Body> = flat.chunks_exact(BODY_F64).map(unpack_body).collect();
    checksum(&own)
}

/// PVM version.
pub fn pvm_body(pvm: &Pvm, p: &BarnesParams) -> f64 {
    let n = p.bodies;
    let nprocs = pvm.nprocs();
    let me = pvm.id();
    let mine = block_range(n, nprocs, me);
    let mut bodies = p.initial();

    for step in 0..p.steps {
        let (tree, inserts) = build_tree(&bodies);
        pvm.proc().compute(inserts as f64 * COST_INSERT);
        let interactions = step_bodies(&mut bodies, mine.clone(), &tree);
        pvm.proc().compute(interactions as f64 * COST_INTERACTION);

        // Broadcast my updated bodies; receive everyone else's.
        if nprocs > 1 {
            let tag = 300 + step as u32;
            let mut b = pvm.new_buffer();
            let flat: Vec<f64> = bodies[mine.clone()].iter().flat_map(pack_body).collect();
            b.pack_f64(&flat);
            pvm.bcast(tag, b);
            for _ in 0..nprocs - 1 {
                let mut m = pvm.recv(None, tag);
                let src = m.src();
                let owned = block_range(n, nprocs, src);
                let flat = m.unpack_f64(owned.len() * BODY_F64);
                for (k, i) in owned.enumerate() {
                    bodies[i] = unpack_body(&flat[k * BODY_F64..(k + 1) * BODY_F64]);
                }
            }
        }
    }
    checksum(&bodies[mine])
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &BarnesParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &BarnesParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &BarnesParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &BarnesParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.bodies * BODY_F64 * 8 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &BarnesParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &BarnesParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &BarnesParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_mass_equals_total_mass() {
        let p = BarnesParams::tiny();
        let bodies = p.initial();
        let (tree, _) = build_tree(&bodies);
        if let Node::Cell { mass, .. } = tree {
            let total: f64 = bodies.iter().map(|b| b.mass).sum();
            assert!((mass - total).abs() < 1e-9);
        } else {
            panic!("root must be a cell");
        }
    }

    #[test]
    fn versions_agree_on_final_positions() {
        let p = BarnesParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            let tol = seq.checksum.abs() * 1e-9 + 1e-9;
            assert!((t.checksum - seq.checksum).abs() < tol, "TMK n={n}");
            assert!((m.checksum - seq.checksum).abs() < tol, "PVM n={n}");
        }
    }

    #[test]
    fn treadmarks_sends_more_messages_pvm_sends_more_or_similar_data() {
        // Broadcast-everything PVM moves whole body arrays; page-based TMK
        // moves diffs but needs many more messages (diff requests).
        let p = BarnesParams::tiny();
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(t.messages > m.messages, "{} vs {}", t.messages, m.messages);
    }
}

//! TSP — branch-and-bound Traveling Salesman.
//!
//! The program keeps a pool of partially evaluated tours, a priority queue of
//! promising partial tours, a stack of free pool slots, and the current
//! shortest tour.  `get_tour` pops the most promising partial tour and, if it
//! is shorter than a threshold, expands it by one city and pushes the
//! children back; once a partial tour reaches the threshold it is handed to
//! `recursive_solve`, which exhaustively permutes the remaining cities with
//! pruning against the current best.
//!
//! * **TreadMarks**: all the major data structures are shared; `get_tour`
//!   and updates to the best tour are protected by locks.  The structures
//!   *migrate* between processes, which is where diff accumulation and the
//!   lock-contention effects the paper describes come from.
//! * **PVM**: a master/slave arrangement — the master (process 0, which also
//!   runs a slave) keeps all structures private, executes `get_tour` on
//!   behalf of the slaves, and tracks the best tour; slaves only exchange
//!   solvable tours and best-tour updates with the master.

use crate::runner::{try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost charged per node visited in `recursive_solve`.
pub const COST_NODE: f64 = 1.1e-6;
/// Cost charged per child generated in `get_tour`.
pub const COST_EXPAND: f64 = 2.0e-6;

/// Maximum number of cities supported by the fixed-size tour records.
pub const MAX_CITIES: usize = 20;
/// Number of slots in the tour pool.
const POOL_SLOTS: usize = 65536;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct TspParams {
    /// Number of cities.
    pub cities: usize,
    /// Partial tours at least this long are solved exhaustively.
    pub threshold: usize,
    /// Seed for the random city coordinates.
    pub seed: u64,
}

impl TspParams {
    /// Paper-scale problem: 19 cities, recursion threshold 12.
    pub fn paper() -> Self {
        TspParams {
            cities: 19,
            threshold: 12,
            seed: 20240601,
        }
    }

    /// Scaled-down problem for the default harness preset.  The threshold
    /// leaves 8 cities for each `recursive_solve`, close to the paper's
    /// 19-city/threshold-12 task granularity — a finer threshold floods the
    /// shared work queue with tiny tasks and the DSM runs degenerate into
    /// queue migration, while more cities blow up the branch-and-bound
    /// frontier far past the shared tour pool.
    pub fn scaled() -> Self {
        TspParams {
            cities: 13,
            threshold: 5,
            seed: 20240601,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        TspParams {
            cities: 9,
            threshold: 5,
            seed: 20240601,
        }
    }

    /// Deterministic distance matrix for the configured city count.
    pub fn distances(&self) -> Vec<Vec<f64>> {
        let nc = self.cities;
        let mut coords = Vec::with_capacity(nc);
        let mut state = self.seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..nc {
            coords.push((next() * 1000.0, next() * 1000.0));
        }
        let mut d = vec![vec![0.0; nc]; nc];
        for i in 0..nc {
            for j in 0..nc {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                d[i][j] = (dx * dx + dy * dy).sqrt();
            }
        }
        d
    }
}

/// A partial tour: the cities visited so far and the path cost.
#[derive(Debug, Clone)]
struct Tour {
    cities: Vec<u8>,
    cost: f64,
}

/// Lower bound: partial cost plus, for the endpoint and every unvisited
/// city, its cheapest edge to a city that can still follow it.
fn lower_bound(dist: &[Vec<f64>], tour: &Tour, nc: usize) -> f64 {
    let visited: u32 = tour.cities.iter().fold(0, |m, &c| m | (1 << c));
    let mut bound = tour.cost;
    let last = *tour.cities.last().unwrap() as usize;
    #[allow(clippy::needless_range_loop)] // indexing is clearer for the coordinate/matrix access
    for c in 0..nc {
        if c != last && visited & (1 << c) != 0 {
            continue;
        }
        let mut best = f64::INFINITY;
        #[allow(clippy::needless_range_loop)]
        // indexing is clearer for the coordinate/matrix access
        for o in 0..nc {
            if o != c && (visited & (1 << o) == 0 || o == 0) {
                best = best.min(dist[c][o]);
            }
        }
        if best.is_finite() {
            bound += best;
        }
    }
    bound
}

/// Greedy nearest-neighbour tour used to seed the best cost.
fn greedy_cost(dist: &[Vec<f64>], nc: usize) -> f64 {
    let mut visited = vec![false; nc];
    visited[0] = true;
    let mut cur = 0usize;
    let mut cost = 0.0;
    for _ in 1..nc {
        let mut best = f64::INFINITY;
        let mut pick = 0;
        for c in 0..nc {
            if !visited[c] && dist[cur][c] < best {
                best = dist[cur][c];
                pick = c;
            }
        }
        visited[pick] = true;
        cost += best;
        cur = pick;
    }
    cost + dist[cur][0]
}

/// Exhaustively complete a partial tour, pruning against `best`.
/// Returns `(best found, nodes visited)`.
fn recursive_solve(dist: &[Vec<f64>], tour: &Tour, nc: usize, mut best: f64) -> (f64, u64) {
    fn dfs(
        dist: &[Vec<f64>],
        path: &mut Vec<u8>,
        visited: u32,
        cost: f64,
        nc: usize,
        best: &mut f64,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        if cost >= *best {
            return;
        }
        if path.len() == nc {
            let total = cost + dist[*path.last().unwrap() as usize][0];
            if total < *best {
                *best = total;
            }
            return;
        }
        let last = *path.last().unwrap() as usize;
        for c in 0..nc {
            if visited & (1 << c) == 0 {
                path.push(c as u8);
                dfs(
                    dist,
                    path,
                    visited | (1 << c),
                    cost + dist[last][c],
                    nc,
                    best,
                    nodes,
                );
                path.pop();
            }
        }
    }
    let mut path = tour.cities.clone();
    let visited = path.iter().fold(0u32, |m, &c| m | (1 << c));
    let mut nodes = 0u64;
    dfs(
        dist, &mut path, visited, tour.cost, nc, &mut best, &mut nodes,
    );
    (best, nodes)
}

/// A queued tour with its lower bound, ordered for a min-heap (the bound is
/// computed once, when the tour is enqueued — scanning the queue and
/// recomputing bounds on every pop is quadratic and dominated the harness
/// at paper-scale inputs).
struct QueueEntry {
    bound: f64,
    tour: Tour,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .partial_cmp(&self.bound)
            .expect("tour bounds are finite")
    }
}

/// In-memory work-queue engine used identically by the sequential version
/// and by the PVM master; the TreadMarks version keeps the same structures
/// in shared memory instead.
struct Engine {
    dist: Vec<Vec<f64>>,
    nc: usize,
    threshold: usize,
    queue: std::collections::BinaryHeap<QueueEntry>,
    best: f64,
    expansions: u64,
}

impl Engine {
    fn new(p: &TspParams) -> Self {
        let dist = p.distances();
        let best = greedy_cost(&dist, p.cities);
        let root = Tour {
            cities: vec![0],
            cost: 0.0,
        };
        let mut queue = std::collections::BinaryHeap::new();
        queue.push(QueueEntry {
            bound: lower_bound(&dist, &root, p.cities),
            tour: root,
        });
        Engine {
            nc: p.cities,
            threshold: p.threshold,
            queue,
            best,
            expansions: 0,
            dist,
        }
    }

    /// Pop the most promising tour; expand until one reaches the threshold.
    fn get_tour(&mut self) -> Option<Tour> {
        loop {
            let QueueEntry { bound, tour } = self.queue.pop()?;
            if bound >= self.best {
                continue;
            }
            if tour.cities.len() >= self.threshold {
                return Some(tour);
            }
            let last = *tour.cities.last().unwrap() as usize;
            let visited: u32 = tour.cities.iter().fold(0, |m, &c| m | (1 << c));
            for c in 0..self.nc {
                if visited & (1 << c) == 0 {
                    let cost = tour.cost + self.dist[last][c];
                    if cost >= self.best {
                        continue;
                    }
                    let mut cities = tour.cities.clone();
                    cities.push(c as u8);
                    let child = Tour { cities, cost };
                    let bound = lower_bound(&self.dist, &child, self.nc);
                    // A child whose bound cannot beat the incumbent is
                    // dominated: every completion costs at least `bound`.
                    if bound < self.best {
                        self.queue.push(QueueEntry { bound, tour: child });
                        self.expansions += 1;
                    }
                }
            }
        }
    }
}

/// Sequential reference implementation.
pub fn sequential(p: &TspParams) -> SeqRun {
    let mut eng = Engine::new(p);
    let mut nodes = 0u64;
    while let Some(tour) = eng.get_tour() {
        let (best, n) = recursive_solve(&eng.dist, &tour, eng.nc, eng.best);
        eng.best = eng.best.min(best);
        nodes += n;
    }
    SeqRun {
        checksum: (eng.best * 1000.0).round() / 1000.0,
        time: nodes as f64 * COST_NODE + eng.expansions as f64 * COST_EXPAND,
    }
}

// -------------------------------------------------------------- TreadMarks

const LOCK_QUEUE: u32 = 0;
const LOCK_BEST: u32 = 1;
const SLOT_BYTES: usize = 8 + 4 + MAX_CITIES;

/// Shared-memory layout of the TSP data structures.
struct SharedTsp {
    best: usize,
    qlen: usize,
    queue: usize,
    free_sp: usize,
    free: usize,
    pool: usize,
    /// Per-slot lower bound, written when the slot's tour is enqueued so
    /// `get_tour` scans 8 bytes per queued entry instead of re-reading and
    /// re-bounding every tour record (the same bound caching the in-memory
    /// engine uses).
    bounds: usize,
}

impl SharedTsp {
    fn alloc(tmk: &Tmk) -> Self {
        SharedTsp {
            best: tmk.malloc(8),
            qlen: tmk.malloc(4),
            queue: tmk.malloc(POOL_SLOTS * 4),
            free_sp: tmk.malloc(4),
            free: tmk.malloc(POOL_SLOTS * 4),
            pool: tmk.malloc(POOL_SLOTS * SLOT_BYTES),
            bounds: tmk.malloc(POOL_SLOTS * 8),
        }
    }

    fn write_tour(&self, tmk: &Tmk, slot: usize, t: &Tour) {
        let base = self.pool + slot * SLOT_BYTES;
        tmk.write_f64(base, t.cost);
        tmk.write_i32(base + 8, t.cities.len() as i32);
        let mut cities = [0u8; MAX_CITIES];
        cities[..t.cities.len()].copy_from_slice(&t.cities);
        tmk.write_bytes(base + 12, &cities);
    }

    fn read_tour(&self, tmk: &Tmk, slot: usize) -> Tour {
        let base = self.pool + slot * SLOT_BYTES;
        let cost = tmk.read_f64(base);
        let len = tmk.read_i32(base + 8) as usize;
        let mut cities = vec![0u8; MAX_CITIES];
        tmk.read_bytes(base + 12, &mut cities);
        cities.truncate(len);
        Tour { cities, cost }
    }
}

/// TreadMarks version: shared pool / queue / free-stack / best, lock-guarded
/// `get_tour`, private `recursive_solve`.
pub fn treadmarks_body(tmk: &Tmk, p: &TspParams) -> f64 {
    let dist = p.distances();
    let nc = p.cities;
    let sh = SharedTsp::alloc(tmk);

    if tmk.id() == 0 {
        tmk.write_f64(sh.best, greedy_cost(&dist, nc));
        let root = Tour {
            cities: vec![0],
            cost: 0.0,
        };
        sh.write_tour(tmk, 0, &root);
        tmk.write_f64(sh.bounds, lower_bound(&dist, &root, nc));
        tmk.write_i32(sh.qlen, 1);
        tmk.write_i32(sh.queue, 0);
        let free: Vec<i32> = (1..POOL_SLOTS as i32).rev().collect();
        tmk.write_i32(sh.free_sp, free.len() as i32);
        tmk.write_i32_slice(sh.free, &free);
    }
    tmk.barrier(0);

    loop {
        // ---- get_tour under the queue lock --------------------------------
        tmk.lock_acquire(LOCK_QUEUE);
        let mut found: Option<Tour> = None;
        let mut expansions = 0u64;
        loop {
            let qlen = tmk.read_i32(sh.qlen) as usize;
            if qlen == 0 {
                break;
            }
            // lint:allow(unsync-read): optimistic incumbent read under the
            // queue lock, not LOCK_BEST; a stale bound only weakens pruning
            // and every update re-checks under LOCK_BEST.
            let best = tmk.read_f64_unsync(sh.best);
            let mut slots = vec![0i32; qlen];
            tmk.read_i32_slice(sh.queue, &mut slots);
            let mut best_idx = 0usize;
            let mut best_bound = f64::INFINITY;
            for (i, &s) in slots.iter().enumerate() {
                let b = tmk.read_f64(sh.bounds + s as usize * 8);
                if b < best_bound {
                    best_bound = b;
                    best_idx = i;
                }
            }
            let slot = slots[best_idx] as usize;
            let tour = sh.read_tour(tmk, slot);
            // Remove from the queue and return the slot to the free stack.
            slots[best_idx] = slots[qlen - 1];
            tmk.write_i32_slice(sh.queue, &slots[..qlen]);
            tmk.write_i32(sh.qlen, qlen as i32 - 1);
            let sp = tmk.read_i32(sh.free_sp);
            tmk.write_i32(sh.free + sp as usize * 4, slot as i32);
            tmk.write_i32(sh.free_sp, sp + 1);

            if best_bound >= best {
                continue;
            }
            if tour.cities.len() >= p.threshold {
                found = Some(tour);
                break;
            }
            let last = *tour.cities.last().unwrap() as usize;
            let visited: u32 = tour.cities.iter().fold(0, |m, &c| m | (1 << c));
            for c in 0..nc {
                if visited & (1 << c) == 0 {
                    let cost = tour.cost + dist[last][c];
                    if cost >= best {
                        continue;
                    }
                    let mut cities = tour.cities.clone();
                    cities.push(c as u8);
                    let child = Tour { cities, cost };
                    let child_bound = lower_bound(&dist, &child, nc);
                    // A child whose bound cannot beat the incumbent is
                    // dominated: every completion costs at least the bound.
                    if child_bound >= best {
                        continue;
                    }
                    let sp = tmk.read_i32(sh.free_sp);
                    if sp == 0 {
                        // Pool exhausted: solve the child in place rather
                        // than queueing it (bounds the shared pool), unless
                        // a freshly-read incumbent already dominates it.
                        // lint:allow(unsync-read): optimistic incumbent
                        // read; stale values only weaken pruning.
                        let cur = tmk.read_f64_unsync(sh.best);
                        if child_bound >= cur {
                            continue;
                        }
                        let (found_best, nodes) = recursive_solve(&dist, &child, nc, cur);
                        tmk.proc().compute(nodes as f64 * COST_NODE);
                        if found_best < cur {
                            tmk.lock_acquire(LOCK_BEST);
                            let now = tmk.read_f64(sh.best);
                            if found_best < now {
                                tmk.write_f64(sh.best, found_best);
                            }
                            tmk.lock_release(LOCK_BEST);
                        }
                        continue;
                    }
                    let child_slot = tmk.read_i32(sh.free + (sp - 1) as usize * 4) as usize;
                    tmk.write_i32(sh.free_sp, sp - 1);
                    sh.write_tour(tmk, child_slot, &child);
                    tmk.write_f64(sh.bounds + child_slot * 8, child_bound);
                    let ql = tmk.read_i32(sh.qlen);
                    tmk.write_i32(sh.queue + ql as usize * 4, child_slot as i32);
                    tmk.write_i32(sh.qlen, ql + 1);
                    expansions += 1;
                }
            }
        }
        tmk.proc().compute(expansions as f64 * COST_EXPAND);
        tmk.lock_release(LOCK_QUEUE);

        let Some(tour) = found else { break };

        // ---- recursive_solve privately ------------------------------------
        // lint:allow(unsync-read): optimistic incumbent read outside any
        // lock; stale values only weaken pruning, and the update below
        // re-reads under LOCK_BEST before writing.
        let best_now = tmk.read_f64_unsync(sh.best);
        let (found_best, nodes) = recursive_solve(&dist, &tour, nc, best_now);
        tmk.proc().compute(nodes as f64 * COST_NODE);
        if found_best < best_now {
            tmk.lock_acquire(LOCK_BEST);
            let cur = tmk.read_f64(sh.best);
            if found_best < cur {
                tmk.write_f64(sh.best, found_best);
            }
            tmk.lock_release(LOCK_BEST);
        }
    }

    tmk.barrier(1);
    if tmk.id() == 0 {
        (tmk.read_f64(sh.best) * 1000.0).round() / 1000.0
    } else {
        0.0
    }
}

// --------------------------------------------------------------------- PVM

const TAG_WORK_REQ: u32 = 10;
const TAG_WORK: u32 = 11;
const TAG_NOWORK: u32 = 12;
const TAG_BEST: u32 = 13;

/// PVM version: master/slave; the master (process 0) also runs a slave.
pub fn pvm_body(pvm: &Pvm, p: &TspParams) -> f64 {
    let dist = p.distances();
    let nc = p.cities;
    let n = pvm.nprocs();

    if pvm.id() == 0 {
        let mut eng = Engine::new(p);
        let mut slaves_done = 0usize;
        let total_slaves = n - 1;
        loop {
            while let Some(mut m) = pvm.nrecv(None, TAG_BEST) {
                let b = m.unpack_f64(1)[0];
                eng.best = eng.best.min(b);
            }
            if let Some(m) = pvm.nrecv(None, TAG_WORK_REQ) {
                let slave = m.src();
                let before = eng.expansions;
                let tour = eng.get_tour();
                pvm.proc()
                    .compute((eng.expansions - before) as f64 * COST_EXPAND);
                match tour {
                    Some(t) => {
                        let mut b = pvm.new_buffer();
                        b.pack_f64(&[eng.best, t.cost]);
                        b.pack_u32(&[t.cities.len() as u32]);
                        b.pack_bytes(&t.cities);
                        pvm.send(slave, TAG_WORK, b);
                    }
                    None => {
                        pvm.send(slave, TAG_NOWORK, pvm.new_buffer());
                        slaves_done += 1;
                    }
                }
                continue;
            }
            // No requests pending: the master's own slave does some work.
            let before = eng.expansions;
            match eng.get_tour() {
                Some(t) => {
                    pvm.proc()
                        .compute((eng.expansions - before) as f64 * COST_EXPAND);
                    let (best, nodes) = recursive_solve(&dist, &t, nc, eng.best);
                    pvm.proc().compute(nodes as f64 * COST_NODE);
                    eng.best = eng.best.min(best);
                }
                None => {
                    pvm.proc()
                        .compute((eng.expansions - before) as f64 * COST_EXPAND);
                    if slaves_done == total_slaves {
                        break;
                    }
                    let m = pvm.recv(None, TAG_WORK_REQ);
                    pvm.send(m.src(), TAG_NOWORK, pvm.new_buffer());
                    slaves_done += 1;
                }
            }
        }
        while let Some(mut m) = pvm.nrecv(None, TAG_BEST) {
            let b = m.unpack_f64(1)[0];
            eng.best = eng.best.min(b);
        }
        (eng.best * 1000.0).round() / 1000.0
    } else {
        let mut my_best = f64::INFINITY;
        loop {
            pvm.send(0, TAG_WORK_REQ, pvm.new_buffer());
            // Block for the master's answer — work or NOWORK — instead of
            // busy-polling the two tags: the reply is in this process's
            // virtual future, so a poll loop would never see it (and never
            // advances the clock to it).
            let m = pvm.recv_any(Some(0));
            let reply = match m.tag() {
                TAG_WORK => Some(m),
                TAG_NOWORK => None,
                other => unreachable!("slave got unexpected tag {other}"),
            };
            let Some(mut m) = reply else { break };
            let header = m.unpack_f64(2);
            let (master_best, cost) = (header[0], header[1]);
            let len = m.unpack_u32(1)[0] as usize;
            let cities = m.unpack_bytes(len);
            let tour = Tour { cities, cost };
            let bound = master_best.min(my_best);
            let (best, nodes) = recursive_solve(&dist, &tour, nc, bound);
            pvm.proc().compute(nodes as f64 * COST_NODE);
            if best < bound {
                my_best = best;
                let mut b = pvm.new_buffer();
                b.pack_f64(&[best]);
                pvm.send(0, TAG_BEST, b);
            }
        }
        0.0
    }
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &TspParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &TspParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &TspParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &TspParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (POOL_SLOTS * (SLOT_BYTES + 16) + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &TspParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &TspParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &TspParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_and_bound_finds_the_optimum_of_a_small_instance() {
        let p = TspParams::tiny();
        let dist = p.distances();
        let nc = p.cities;
        let mut perm: Vec<u8> = (1..nc as u8).collect();
        let mut best = f64::INFINITY;
        fn permute(perm: &mut Vec<u8>, k: usize, dist: &[Vec<f64>], best: &mut f64) {
            if k == perm.len() {
                let mut cost = dist[0][perm[0] as usize];
                for w in perm.windows(2) {
                    cost += dist[w[0] as usize][w[1] as usize];
                }
                cost += dist[*perm.last().unwrap() as usize][0];
                if cost < *best {
                    *best = cost;
                }
                return;
            }
            for i in k..perm.len() {
                perm.swap(k, i);
                permute(perm, k + 1, dist, best);
                perm.swap(k, i);
            }
        }
        permute(&mut perm, 0, &dist, &mut best);
        let seq = sequential(&p);
        assert!(
            (seq.checksum - best).abs() < 1e-3,
            "{} vs {best}",
            seq.checksum
        );
    }

    #[test]
    fn parallel_versions_find_the_same_optimum() {
        let p = TspParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            assert!((t.checksum - seq.checksum).abs() < 1e-3, "TMK n={n}");
            assert!((m.checksum - seq.checksum).abs() < 1e-3, "PVM n={n}");
        }
    }

    #[test]
    fn treadmarks_migrates_far_more_data_than_pvm() {
        // In PVM only solvable tours and best updates travel; in TreadMarks
        // the pool, queue, stack and best all migrate between processes.
        let p = TspParams {
            cities: 10,
            threshold: 6,
            seed: 99,
        };
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(t.messages > m.messages, "{} vs {}", t.messages, m.messages);
        assert!(
            t.kilobytes > m.kilobytes,
            "{} vs {}",
            t.kilobytes,
            m.kilobytes
        );
    }
}

//! 3-D FFT from the NAS benchmark suite.
//!
//! The complex array `A` (n1 × n2 × n3, row-major) is distributed along its
//! first dimension.  Each iteration applies 1-D FFTs along the two local
//! dimensions, transposes the array into `B` (distributed along what used to
//! be the last dimension), and applies the remaining 1-D FFT there; a
//! point-wise evolution factor is applied and the roles of `A` and `B` swap
//! for the next iteration.  All communication happens at the transpose.
//!
//! * **TreadMarks**: a barrier precedes the transpose; each process simply
//!   reads the elements it needs through shared memory (index swapping), and
//!   the page-based invalidate protocol turns that into one diff request per
//!   remote page.
//! * **PVM**: the transpose is written by hand — each process figures out
//!   which block of its planes every other process needs and sends it in one
//!   message, `n * (n - 1)` messages per transpose.  The paper notes this
//!   index arithmetic made the PVM version considerably harder to write.

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost per complex point per 1-D FFT butterfly level.
pub const COST_FFT: f64 = 0.09e-6;

/// Problem parameters (all dimensions must be powers of two).
#[derive(Debug, Clone)]
pub struct FftParams {
    /// First (distributed) dimension.
    pub n1: usize,
    /// Second dimension.
    pub n2: usize,
    /// Third dimension.
    pub n3: usize,
    /// Number of iterations (transposes).
    pub iters: usize,
}

impl FftParams {
    /// Paper-scale problem (scaled-down class A as in the paper): 64×64×32.
    pub fn paper() -> Self {
        FftParams {
            n1: 64,
            n2: 64,
            n3: 32,
            iters: 6,
        }
    }

    /// Scaled-down problem for the default harness preset.
    pub fn scaled() -> Self {
        FftParams {
            n1: 32,
            n2: 32,
            n3: 32,
            iters: 3,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        FftParams {
            n1: 8,
            n2: 8,
            n3: 8,
            iters: 2,
        }
    }

    /// Total number of complex elements.
    pub fn elems(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Deterministic initial array (interleaved re/im pairs).
    pub fn initial(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.elems() * 2);
        let mut state = 0xDEADBEEFu64 | 1;
        for _ in 0..self.elems() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            v.push(re);
            v.push(im);
        }
        v
    }
}

/// In-place iterative radix-2 FFT over interleaved complex values.
fn fft1d(data: &mut [f64]) {
    let n = data.len() / 2;
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let even = (i + k) * 2;
                let odd = (i + k + len / 2) * 2;
                let (or_, oi) = (data[odd], data[odd + 1]);
                let (tr, ti) = (or_ * cr - oi * ci, or_ * ci + oi * cr);
                let (er, ei) = (data[even], data[even + 1]);
                data[even] = er + tr;
                data[even + 1] = ei + ti;
                data[odd] = er - tr;
                data[odd + 1] = ei - ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Cost of one 1-D FFT of `n` complex points.
fn fft_cost(n: usize) -> f64 {
    n as f64 * (n as f64).log2() * COST_FFT
}

/// Apply the two local-dimension FFTs to the planes `x_range` of `a`
/// (layout `[x][y][z]`, interleaved complex).  Returns the modeled cost.
fn local_ffts(a: &mut [f64], p: &FftParams, x_range: std::ops::Range<usize>) -> f64 {
    let (n2, n3) = (p.n2, p.n3);
    let mut cost = 0.0;
    for x in x_range {
        // FFT along z for each y.
        for y in 0..n2 {
            let base = ((x * n2 + y) * n3) * 2;
            fft1d(&mut a[base..base + n3 * 2]);
            cost += fft_cost(n3);
        }
        // FFT along y for each z (gather a strided pencil).
        for z in 0..n3 {
            let mut pencil = vec![0.0f64; n2 * 2];
            for y in 0..n2 {
                let idx = ((x * n2 + y) * n3 + z) * 2;
                pencil[y * 2] = a[idx];
                pencil[y * 2 + 1] = a[idx + 1];
            }
            fft1d(&mut pencil);
            for y in 0..n2 {
                let idx = ((x * n2 + y) * n3 + z) * 2;
                a[idx] = pencil[y * 2];
                a[idx + 1] = pencil[y * 2 + 1];
            }
            cost += fft_cost(n2);
        }
    }
    cost
}

/// FFT along the (now local) first dimension of the transposed array `b`
/// (layout `[z][y][x]`), for `z_range`, followed by the evolution factor.
fn transposed_ffts(b: &mut [f64], p: &FftParams, z_range: std::ops::Range<usize>) -> f64 {
    let (n1, n2) = (p.n1, p.n2);
    let mut cost = 0.0;
    for z in z_range.clone() {
        for y in 0..n2 {
            let base = ((z * n2 + y) * n1) * 2;
            fft1d(&mut b[base..base + n1 * 2]);
            cost += fft_cost(n1);
        }
    }
    // Point-wise evolution keeps values bounded across iterations.
    for z in z_range {
        for i in 0..n2 * n1 {
            let idx = (z * n2 * n1 + i) * 2;
            b[idx] *= 0.5;
            b[idx + 1] *= 0.5;
        }
    }
    cost
}

fn slab_checksum(data: &[f64]) -> f64 {
    data.iter().map(|v| v.abs()).sum()
}

/// Sequential reference implementation.  After every iteration the array is
/// left in transposed layout and the dimension roles swap, exactly as in the
/// parallel versions (which avoid transposing back).
pub fn sequential(p: &FftParams) -> SeqRun {
    let mut a = p.initial();
    let mut time = 0.0;
    let mut dims = (p.n1, p.n2, p.n3);
    for _ in 0..p.iters {
        let cur = FftParams {
            n1: dims.0,
            n2: dims.1,
            n3: dims.2,
            iters: 1,
        };
        let mut b = vec![0.0f64; cur.elems() * 2];
        time += local_ffts(&mut a, &cur, 0..cur.n1);
        for x in 0..cur.n1 {
            for y in 0..cur.n2 {
                for z in 0..cur.n3 {
                    let src = ((x * cur.n2 + y) * cur.n3 + z) * 2;
                    let dst = ((z * cur.n2 + y) * cur.n1 + x) * 2;
                    b[dst] = a[src];
                    b[dst + 1] = a[src + 1];
                }
            }
        }
        time += transposed_ffts(&mut b, &cur, 0..cur.n3);
        a = b;
        dims = (dims.2, dims.1, dims.0);
    }
    SeqRun {
        checksum: slab_checksum(&a),
        time,
    }
}

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &FftParams) -> f64 {
    let nprocs = tmk.nprocs();
    let me = tmk.id();
    let elems = p.elems();
    let a_addr = tmk.malloc(elems * 16);
    let b_addr = tmk.malloc(elems * 16);
    if me == 0 {
        tmk.write_f64_slice(a_addr, &p.initial());
    }
    tmk.barrier(0);

    let mut dims = (p.n1, p.n2, p.n3);
    let (mut src_addr, mut dst_addr) = (a_addr, b_addr);
    let mut barrier = 1u32;
    let mut final_slab = Vec::new();
    for _ in 0..p.iters {
        let cur = FftParams {
            n1: dims.0,
            n2: dims.1,
            n3: dims.2,
            iters: 1,
        };
        let my_x = block_range(cur.n1, nprocs, me);
        // Local FFTs on my planes of the source array.
        let plane = cur.n2 * cur.n3 * 2;
        let mut slab = vec![0.0f64; my_x.len() * plane];
        tmk.read_f64_slice(src_addr + my_x.start * plane * 8, &mut slab);
        let local = FftParams {
            n1: my_x.len(),
            ..cur.clone()
        };
        let cost = local_ffts(&mut slab, &local, 0..my_x.len());
        tmk.proc().compute(cost);
        tmk.write_f64_slice(src_addr + my_x.start * plane * 8, &slab);
        tmk.barrier(barrier);
        barrier += 1;

        // Transpose: build my z-slab of the destination by reading the
        // needed pencils of the (shared) source array.
        let my_z = block_range(cur.n3, nprocs, me);
        let dplane = cur.n2 * cur.n1 * 2;
        let mut dst_slab = vec![0.0f64; my_z.len() * dplane];
        for x in 0..cur.n1 {
            for y in 0..cur.n2 {
                let base = ((x * cur.n2 + y) * cur.n3 + my_z.start) * 2;
                let mut seg = vec![0.0f64; my_z.len() * 2];
                tmk.read_f64_slice(src_addr + base * 8, &mut seg);
                for (k, z) in my_z.clone().enumerate() {
                    let dst = (((z - my_z.start) * cur.n2 + y) * cur.n1 + x) * 2;
                    dst_slab[dst] = seg[k * 2];
                    dst_slab[dst + 1] = seg[k * 2 + 1];
                }
            }
        }
        let cost = transposed_ffts(&mut dst_slab, &cur, 0..my_z.len());
        tmk.proc().compute(cost);
        tmk.write_f64_slice(dst_addr + my_z.start * dplane * 8, &dst_slab);
        tmk.barrier(barrier);
        barrier += 1;

        final_slab = dst_slab;
        std::mem::swap(&mut src_addr, &mut dst_addr);
        dims = (dims.2, dims.1, dims.0);
    }
    slab_checksum(&final_slab)
}

/// PVM version.
pub fn pvm_body(pvm: &Pvm, p: &FftParams) -> f64 {
    let nprocs = pvm.nprocs();
    let me = pvm.id();
    let mut dims = (p.n1, p.n2, p.n3);

    // Initial distribution: every process generates the whole array and keeps
    // its own planes (excluded from the paper's measurements; generating it
    // locally avoids charging PVM an artificial scatter).
    let init = p.initial();
    let my_x0 = block_range(p.n1, nprocs, me);
    let plane0 = p.n2 * p.n3 * 2;
    let mut slab: Vec<f64> = init[my_x0.start * plane0..my_x0.end * plane0].to_vec();

    let mut checksum = 0.0;
    for iter in 0..p.iters {
        let cur = FftParams {
            n1: dims.0,
            n2: dims.1,
            n3: dims.2,
            iters: 1,
        };
        let my_x = block_range(cur.n1, nprocs, me);
        let local = FftParams {
            n1: my_x.len(),
            ..cur.clone()
        };
        let cost = local_ffts(&mut slab, &local, 0..my_x.len());
        pvm.proc().compute(cost);

        // Hand-coded transpose: send to every other process the (x, y, z)
        // block it needs for its z-slab; receive the blocks for mine.
        let my_z = block_range(cur.n3, nprocs, me);
        let dplane = cur.n2 * cur.n1 * 2;
        let mut dst_slab = vec![0.0f64; my_z.len() * dplane];
        let tag = 400 + iter as u32;
        for dst in 0..nprocs {
            let dst_z = block_range(cur.n3, nprocs, dst);
            if dst == me {
                // Local part of the transpose.
                for (lx, _x) in my_x.clone().enumerate() {
                    for y in 0..cur.n2 {
                        for z in dst_z.clone() {
                            let src = ((lx * cur.n2 + y) * cur.n3 + z) * 2;
                            let d =
                                (((z - my_z.start) * cur.n2 + y) * cur.n1 + my_x.start + lx) * 2;
                            dst_slab[d] = slab[src];
                            dst_slab[d + 1] = slab[src + 1];
                        }
                    }
                }
                continue;
            }
            let mut buf = pvm.new_buffer();
            let mut block = Vec::with_capacity(my_x.len() * cur.n2 * dst_z.len() * 2);
            for lx in 0..my_x.len() {
                for y in 0..cur.n2 {
                    for z in dst_z.clone() {
                        let src = ((lx * cur.n2 + y) * cur.n3 + z) * 2;
                        block.push(slab[src]);
                        block.push(slab[src + 1]);
                    }
                }
            }
            buf.pack_f64(&block);
            pvm.send(dst, tag, buf);
        }
        for _ in 0..nprocs.saturating_sub(1) {
            let mut m = pvm.recv(None, tag);
            let src = m.src();
            let src_x = block_range(cur.n1, nprocs, src);
            let block = m.unpack_f64(src_x.len() * cur.n2 * my_z.len() * 2);
            let mut it = 0usize;
            for x in src_x.clone() {
                for y in 0..cur.n2 {
                    for z in my_z.clone() {
                        let d = (((z - my_z.start) * cur.n2 + y) * cur.n1 + x) * 2;
                        dst_slab[d] = block[it];
                        dst_slab[d + 1] = block[it + 1];
                        it += 2;
                    }
                }
            }
        }
        let cost = transposed_ffts(&mut dst_slab, &cur, 0..my_z.len());
        pvm.proc().compute(cost);
        checksum = slab_checksum(&dst_slab);
        slab = dst_slab;
        dims = (dims.2, dims.1, dims.0);
    }
    checksum
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &FftParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &FftParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &FftParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &FftParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.elems() * 32 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &FftParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &FftParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &FftParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft1d_of_constant_signal_concentrates_in_bin_zero() {
        let mut data = vec![0.0; 16];
        for i in 0..8 {
            data[i * 2] = 1.0;
        }
        fft1d(&mut data);
        assert!((data[0] - 8.0).abs() < 1e-9);
        for i in 1..8 {
            assert!(data[i * 2].abs() < 1e-9 && data[i * 2 + 1].abs() < 1e-9);
        }
    }

    #[test]
    fn versions_agree_on_the_transform() {
        let p = FftParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            let tol = seq.checksum.abs() * 1e-9;
            assert!(
                (t.checksum - seq.checksum).abs() < tol,
                "TMK n={n}: {} vs {}",
                t.checksum,
                seq.checksum
            );
            assert!(
                (m.checksum - seq.checksum).abs() < tol,
                "PVM n={n}: {} vs {}",
                m.checksum,
                seq.checksum
            );
        }
    }

    #[test]
    fn transpose_dominates_message_counts() {
        let p = FftParams::tiny();
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        // PVM: n*(n-1) messages per transpose (plus nothing else).
        assert!(m.messages as usize >= p.iters * 4 * 3);
        // TreadMarks needs many more messages (one diff request per page).
        assert!(t.messages > m.messages);
    }
}

//! Red-Black Successive Over-Relaxation.
//!
//! The grid is stored as two separate arrays (red and black), each divided
//! into roughly equal bands of rows assigned to the processors.  In each
//! iteration the red elements are updated from the black ones and vice
//! versa; communication happens only across the boundary rows between bands.
//!
//! * **TreadMarks**: both arrays live in shared memory and processes
//!   synchronize with barriers; boundary-row diffs are fetched on demand.
//! * **PVM**: each process owns its band privately and explicitly sends its
//!   boundary rows to its neighbours before each half-iteration.
//!
//! The paper runs two variants: **SOR-Zero**, where the interior starts at
//! zero (floating-point operations on zeros are slower on the PA-RISC,
//! causing load imbalance, and the mostly-zero pages make TreadMarks' diffs
//! tiny), and **SOR-Nonzero**, where every element starts non-zero.
//! The row width is chosen so that one shared row occupies one and a half
//! pages, as in the paper.

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost of updating one element whose stencil inputs are non-zero.
pub const COST_NONZERO: f64 = 0.30e-6;
/// Cost of updating one element whose stencil inputs are all zero (the
/// paper attributes the SOR-Zero load imbalance to this being slower).
pub const COST_ZERO: f64 = 0.75e-6;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct SorParams {
    /// Number of rows of each colour array.
    pub rows: usize,
    /// Number of columns of each colour array (f32 elements per row).
    pub cols: usize,
    /// Number of full (red + black) iterations.
    pub iters: usize,
    /// Whether the interior starts at zero (SOR-Zero) or at 1.0.
    pub zero_interior: bool,
}

impl SorParams {
    /// Paper-scale SOR-Zero: rows of 1536 f32 (6 KB = 1.5 pages).
    pub fn paper_zero() -> Self {
        SorParams {
            rows: 1024,
            cols: 1536,
            iters: 20,
            zero_interior: true,
        }
    }

    /// Paper-scale SOR-Nonzero.
    pub fn paper_nonzero() -> Self {
        SorParams {
            zero_interior: false,
            ..Self::paper_zero()
        }
    }

    /// Scaled-down SOR-Zero for the default harness preset.
    pub fn scaled_zero() -> Self {
        SorParams {
            rows: 256,
            cols: 1536,
            iters: 10,
            zero_interior: true,
        }
    }

    /// Scaled-down SOR-Nonzero.
    pub fn scaled_nonzero() -> Self {
        SorParams {
            zero_interior: false,
            ..Self::scaled_zero()
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny(zero_interior: bool) -> Self {
        SorParams {
            rows: 16,
            cols: 64,
            iters: 3,
            zero_interior,
        }
    }

    fn initial(&self, row: usize, col: usize) -> f32 {
        let edge = row == 0 || row == self.rows - 1 || col == 0 || col == self.cols - 1;
        if edge {
            1.0
        } else if self.zero_interior {
            0.0
        } else {
            0.5 + ((row * 31 + col * 7) % 13) as f32 / 26.0
        }
    }
}

/// Update one band of the `dst` colour from the `src` colour.  Returns the
/// modeled cost of the updates (zero-input updates are more expensive).
fn relax_band(
    dst: &mut [f32],
    src: &[f32],
    cols: usize,
    rows_total: usize,
    row_range: std::ops::Range<usize>,
) -> f64 {
    let mut cost = 0.0;
    for r in row_range {
        if r == 0 || r == rows_total - 1 {
            continue; // fixed boundary rows
        }
        for c in 1..cols - 1 {
            let up = src[(r - 1) * cols + c];
            let down = src[(r + 1) * cols + c];
            let left = src[r * cols + c - 1];
            let right = src[r * cols + c + 1];
            let v = 0.25 * (up + down + left + right);
            dst[r * cols + c] = v;
            cost += if up == 0.0 && down == 0.0 && left == 0.0 && right == 0.0 {
                COST_ZERO
            } else {
                COST_NONZERO
            };
        }
    }
    cost
}

fn grid_checksum(red: &[f32], black: &[f32]) -> f64 {
    red.iter().chain(black.iter()).map(|&v| v as f64).sum()
}

/// Sequential reference implementation.
pub fn sequential(p: &SorParams) -> SeqRun {
    let mut red: Vec<f32> = (0..p.rows * p.cols)
        .map(|i| p.initial(i / p.cols, i % p.cols))
        .collect();
    let mut black = red.clone();
    let mut time = 0.0;
    for _ in 0..p.iters {
        time += relax_band(&mut red, &black, p.cols, p.rows, 0..p.rows);
        time += relax_band(&mut black, &red, p.cols, p.rows, 0..p.rows);
    }
    SeqRun {
        checksum: grid_checksum(&red, &black),
        time,
    }
}

/// TreadMarks version: shared red/black arrays, barrier-separated phases.
pub fn treadmarks_body(tmk: &Tmk, p: &SorParams) -> f64 {
    let elems = p.rows * p.cols;
    let red_addr = tmk.malloc(elems * 4);
    let black_addr = tmk.malloc(elems * 4);
    let my_rows = block_range(p.rows, tmk.nprocs(), tmk.id());
    // Initialisation is distributed, as in the paper's experiments: the
    // initial values are a deterministic function of the coordinates, so
    // each process fills its own band and no initial page distribution
    // crosses the network (the paper's PVM version does the same and the
    // measurements exclude first-iteration distribution effects).
    let init: Vec<f32> = (my_rows.start * p.cols..my_rows.end * p.cols)
        .map(|i| p.initial(i / p.cols, i % p.cols))
        .collect();
    tmk.write_f32_slice(red_addr + my_rows.start * p.cols * 4, &init);
    tmk.write_f32_slice(black_addr + my_rows.start * p.cols * 4, &init);
    tmk.barrier(0);

    // Rows needed for the stencil: my band plus one halo row on each side.
    let lo = my_rows.start.saturating_sub(1);
    let hi = (my_rows.end + 1).min(p.rows);
    let span_rows = hi - lo;
    let mut red = vec![0.0f32; span_rows * p.cols];
    let mut black = vec![0.0f32; span_rows * p.cols];

    let mut barrier = 1u32;
    for _ in 0..p.iters {
        // Red phase: read black (with halo), update my red rows, write back.
        tmk.read_f32_slice(black_addr + lo * p.cols * 4, &mut black);
        tmk.read_f32_slice(
            red_addr + my_rows.start * p.cols * 4,
            &mut red[..my_rows.len() * p.cols],
        );
        let mut local_red = vec![0.0f32; span_rows * p.cols];
        local_red
            [(my_rows.start - lo) * p.cols..(my_rows.start - lo) * p.cols + my_rows.len() * p.cols]
            .copy_from_slice(&red[..my_rows.len() * p.cols]);
        let cost = relax_band(
            &mut local_red,
            &black,
            p.cols,
            span_rows,
            (my_rows.start - lo)..(my_rows.end - lo),
        );
        tmk.proc().compute(cost);
        tmk.write_f32_slice(
            red_addr + my_rows.start * p.cols * 4,
            &local_red[(my_rows.start - lo) * p.cols
                ..(my_rows.start - lo) * p.cols + my_rows.len() * p.cols],
        );
        tmk.barrier(barrier);
        barrier += 1;

        // Black phase.
        tmk.read_f32_slice(red_addr + lo * p.cols * 4, &mut red);
        tmk.read_f32_slice(
            black_addr + my_rows.start * p.cols * 4,
            &mut black[..my_rows.len() * p.cols],
        );
        let mut local_black = vec![0.0f32; span_rows * p.cols];
        local_black
            [(my_rows.start - lo) * p.cols..(my_rows.start - lo) * p.cols + my_rows.len() * p.cols]
            .copy_from_slice(&black[..my_rows.len() * p.cols]);
        let cost = relax_band(
            &mut local_black,
            &red,
            p.cols,
            span_rows,
            (my_rows.start - lo)..(my_rows.end - lo),
        );
        tmk.proc().compute(cost);
        tmk.write_f32_slice(
            black_addr + my_rows.start * p.cols * 4,
            &local_black[(my_rows.start - lo) * p.cols
                ..(my_rows.start - lo) * p.cols + my_rows.len() * p.cols],
        );
        tmk.barrier(barrier);
        barrier += 1;
    }

    // Each process contributes the checksum of its own band; the runner sums
    // the contributions, so no extra communication is needed for validation.
    let len = my_rows.len() * p.cols;
    let mut red_own = vec![0.0f32; len];
    let mut black_own = vec![0.0f32; len];
    tmk.read_f32_slice(red_addr + my_rows.start * p.cols * 4, &mut red_own);
    tmk.read_f32_slice(black_addr + my_rows.start * p.cols * 4, &mut black_own);
    grid_checksum(&red_own, &black_own)
}

/// A privately-held band of rows (with halo rows) used by the PVM version;
/// the stencil code is shared with the sequential and DSM versions.
struct Band {
    red: Vec<f32>,
    black: Vec<f32>,
}

/// PVM version: private bands, explicit boundary-row exchange each phase.
pub fn pvm_body(pvm: &Pvm, p: &SorParams) -> f64 {
    let n = pvm.nprocs();
    let me = pvm.id();
    let my_rows = block_range(p.rows, n, me);
    // With more processes than rows the tail ranks own nothing: they
    // contribute no work, no checksum, and — crucially — take no part in
    // the boundary exchange.  `block_range` packs the owning ranks
    // contiguously at the front, so the active topology is 0..active.
    let active = n.min(p.rows);
    if my_rows.is_empty() {
        return 0.0;
    }
    let lo = my_rows.start.saturating_sub(1);
    let hi = (my_rows.end + 1).min(p.rows);
    let span = hi - lo;
    let cols = p.cols;

    let mut band = Band {
        red: vec![0.0f32; span * cols],
        black: vec![0.0f32; span * cols],
    };
    for r in lo..hi {
        for c in 0..cols {
            band.red[(r - lo) * cols + c] = p.initial(r, c);
            band.black[(r - lo) * cols + c] = p.initial(r, c);
        }
    }

    let up_neighbour = if me > 0 { Some(me - 1) } else { None };
    let down_neighbour = if me + 1 < active { Some(me + 1) } else { None };

    for iter in 0..p.iters {
        for colour in 0..2u32 {
            // Exchange boundary rows of the colour we are about to read.
            let exchange_black = colour == 0;
            let tag = iter as u32 * 4 + colour;
            {
                let src = if exchange_black {
                    &band.black
                } else {
                    &band.red
                };
                if let Some(up) = up_neighbour {
                    let mut b = pvm.new_buffer();
                    let first_owned = (my_rows.start - lo) * cols;
                    b.pack_f32(&src[first_owned..first_owned + cols]);
                    pvm.send(up, tag, b);
                }
                if let Some(down) = down_neighbour {
                    let mut b = pvm.new_buffer();
                    let last_owned = (my_rows.end - 1 - lo) * cols;
                    b.pack_f32(&src[last_owned..last_owned + cols]);
                    pvm.send(down, tag, b);
                }
            }
            {
                let dst = if exchange_black {
                    &mut band.black
                } else {
                    &mut band.red
                };
                if let Some(up) = up_neighbour {
                    let mut m = pvm.recv(Some(up), tag);
                    let row = m.unpack_f32(cols);
                    let halo = (my_rows.start - 1 - lo) * cols;
                    dst[halo..halo + cols].copy_from_slice(&row);
                }
                if let Some(down) = down_neighbour {
                    let mut m = pvm.recv(Some(down), tag);
                    let row = m.unpack_f32(cols);
                    let halo = (my_rows.end - lo) * cols;
                    dst[halo..halo + cols].copy_from_slice(&row);
                }
            }
            let cost = if colour == 0 {
                let (red, black) = (&mut band.red, &band.black);
                relax_band(
                    red,
                    black,
                    cols,
                    span,
                    (my_rows.start - lo)..(my_rows.end - lo),
                )
            } else {
                let (black, red) = (&mut band.black, &band.red);
                relax_band(
                    black,
                    red,
                    cols,
                    span,
                    (my_rows.start - lo)..(my_rows.end - lo),
                )
            };
            pvm.proc().compute(cost);
        }
    }

    // Contribution of this process's own rows to the run checksum.
    let first = (my_rows.start - lo) * cols;
    let len = my_rows.len() * cols;
    grid_checksum(
        &band.red[first..first + len],
        &band.black[first..first + len],
    )
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &SorParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &SorParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &SorParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &SorParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.rows * p.cols * 8 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &SorParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &SorParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &SorParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_agree_on_small_grids() {
        for zero in [true, false] {
            let p = SorParams::tiny(zero);
            let seq = sequential(&p);
            for n in [1, 2, 3] {
                let t = treadmarks(n, &p);
                let m = pvm(n, &p);
                assert!(
                    (t.checksum - seq.checksum).abs() < 1e-3,
                    "TMK zero={zero} n={n}: {} vs {}",
                    t.checksum,
                    seq.checksum
                );
                assert!(
                    (m.checksum - seq.checksum).abs() < 1e-3,
                    "PVM zero={zero} n={n}: {} vs {}",
                    m.checksum,
                    seq.checksum
                );
            }
        }
    }

    #[test]
    fn zero_interior_costs_more_sequentially() {
        // The zero-initialised grid triggers the slow-zero cost model, so its
        // sequential time is longer, as in Table 1.
        let z = sequential(&SorParams::tiny(true));
        let nz = sequential(&SorParams::tiny(false));
        assert!(z.time > nz.time);
    }

    #[test]
    fn treadmarks_sends_less_data_in_sor_zero_than_pvm() {
        // Mostly-zero pages produce tiny diffs, while PVM ships whole rows.
        let p = SorParams {
            rows: 64,
            cols: 1536,
            iters: 3,
            zero_interior: true,
        };
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(
            t.kilobytes < m.kilobytes,
            "TMK {} KB vs PVM {} KB",
            t.kilobytes,
            m.kilobytes
        );
        // ... while still sending more messages (sync + diff requests).
        assert!(t.messages > m.messages);
    }

    #[test]
    fn both_variants_scale_on_four_processes() {
        let pz = SorParams {
            rows: 256,
            cols: 512,
            iters: 6,
            zero_interior: true,
        };
        let pn = SorParams {
            zero_interior: false,
            ..pz.clone()
        };
        let sz = sequential(&pz);
        let sn = sequential(&pn);
        let tz = treadmarks(4, &pz);
        let tn = treadmarks(4, &pn);
        for (name, speedup) in [
            ("zero", tz.speedup(sz.time)),
            ("nonzero", tn.speedup(sn.time)),
        ] {
            assert!(
                speedup > 1.0 && speedup <= 4.05,
                "SOR-{name} speedup {speedup} out of range"
            );
        }
    }
}

//! IS — Integer Sort (bucket ranking) from the NAS benchmarks.
//!
//! IS ranks an unsorted sequence of keys with a bucket sort.  Each process
//! counts its block of keys into a private bucket array, the private arrays
//! are summed into a global one, and every process then reads the global
//! array to rank its keys.
//!
//! * **TreadMarks**: a shared bucket array; each process acquires a lock,
//!   adds its private counts, releases, and waits at a barrier; then all
//!   processes read the shared array.  Because every process overwrites every
//!   bucket, the diffs of successive writers overlap completely, which is the
//!   paper's canonical example of *diff accumulation* (the amount of data
//!   grows as `n*(n-1)*b` instead of PVM's `2*(n-1)*b`).
//! * **PVM**: the processes form a chain — process 0 sends its buckets to
//!   process 1, which adds its own and forwards, and so on; the last process
//!   broadcasts the final sums.
//!
//! The paper runs a small key range (IS-Small, buckets fit in one page) and a
//! large key range (IS-Large, buckets spread over many pages); the large
//! range is where PVM wins by roughly a factor of two.

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost of counting one key into a bucket.
pub const COST_COUNT: f64 = 0.045e-6;
/// Cost of ranking one key against the summed buckets.
pub const COST_RANK: f64 = 0.075e-6;
/// Cost of adding one bucket entry during the sum phase.
pub const COST_ADD: f64 = 0.03e-6;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct IsParams {
    /// Number of keys.
    pub keys: usize,
    /// Number of buckets (the key range).
    pub buckets: usize,
    /// Number of ranking iterations.
    pub iters: usize,
    /// RNG seed for key generation.
    pub seed: u64,
}

impl IsParams {
    /// Paper-scale IS-Small: 2^20 keys in the range 0..2^12.
    pub fn paper_small() -> Self {
        IsParams {
            keys: 1 << 20,
            buckets: 1 << 12,
            iters: 9,
            seed: 314159,
        }
    }

    /// Paper-scale IS-Large: 2^20 keys in the range 0..2^17.
    pub fn paper_large() -> Self {
        IsParams {
            buckets: 1 << 17,
            ..Self::paper_small()
        }
    }

    /// Scaled-down IS-Small.
    pub fn scaled_small() -> Self {
        IsParams {
            keys: 1 << 17,
            buckets: 1 << 12,
            iters: 5,
            seed: 314159,
        }
    }

    /// Scaled-down IS-Large.
    pub fn scaled_large() -> Self {
        IsParams {
            buckets: 1 << 16,
            ..Self::scaled_small()
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        IsParams {
            keys: 1 << 10,
            buckets: 1 << 8,
            iters: 2,
            seed: 314159,
        }
    }
}

/// Deterministic key for position `i` (same stream for every version).
fn key_at(p: &IsParams, i: usize) -> usize {
    let mut x = (i as u64)
        .wrapping_add(p.seed)
        .wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 32;
    (x as usize) % p.buckets
}

/// Count the keys of one block into a bucket array.
fn count_block(p: &IsParams, range: std::ops::Range<usize>, buckets: &mut [i32]) {
    for i in range {
        buckets[key_at(p, i)] += 1;
    }
}

/// Rank the keys of one block against the global bucket prefix sums and
/// return this block's checksum contribution.
fn rank_block(p: &IsParams, range: std::ops::Range<usize>, global: &[i32]) -> f64 {
    // Exclusive prefix sums give each key its rank base.
    let mut prefix = vec![0i64; p.buckets];
    let mut acc = 0i64;
    for b in 0..p.buckets {
        prefix[b] = acc;
        acc += global[b] as i64;
    }
    let mut sum = 0.0;
    for i in range {
        let k = key_at(p, i);
        sum += (prefix[k] % 1000) as f64;
    }
    sum
}

/// Sequential reference implementation.
pub fn sequential(p: &IsParams) -> SeqRun {
    let mut time = 0.0;
    let mut checksum = 0.0;
    for _ in 0..p.iters {
        let mut buckets = vec![0i32; p.buckets];
        count_block(p, 0..p.keys, &mut buckets);
        checksum = rank_block(p, 0..p.keys, &buckets);
        time += p.keys as f64 * (COST_COUNT + COST_RANK) + p.buckets as f64 * COST_ADD;
    }
    SeqRun { checksum, time }
}

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &IsParams) -> f64 {
    let n = tmk.nprocs();
    let me = tmk.id();
    let my_keys = block_range(p.keys, n, me);
    let shared = tmk.malloc(p.buckets * 4);
    // A monotonically increasing writer counter shared with the buckets; the
    // first writer of an iteration overwrites the previous iteration's values
    // (no separate clearing phase), exactly the access pattern the paper
    // describes as the source of diff accumulation in IS.
    let counter = tmk.malloc(8);
    tmk.barrier(0);

    let mut checksum = 0.0;
    let mut barrier = 1u32;
    for _ in 0..p.iters {
        // Count into a private array.
        let mut private = vec![0i32; p.buckets];
        count_block(p, my_keys.clone(), &mut private);
        tmk.proc().compute(my_keys.len() as f64 * COST_COUNT);

        // Add the private counts to the shared array under the lock; the
        // first writer of the iteration overwrites instead of adding.
        tmk.lock_acquire(0);
        let done = tmk.read_i64(counter);
        if done % n as i64 == 0 {
            tmk.write_i32_slice(shared, &private);
        } else {
            let mut global = vec![0i32; p.buckets];
            tmk.read_i32_slice(shared, &mut global);
            for b in 0..p.buckets {
                global[b] += private[b];
            }
            tmk.write_i32_slice(shared, &global);
        }
        tmk.write_i64(counter, done + 1);
        tmk.proc().compute(p.buckets as f64 * COST_ADD);
        tmk.lock_release(0);
        tmk.barrier(barrier);
        barrier += 1;

        // Read the final sums and rank this block's keys.
        let mut global = vec![0i32; p.buckets];
        tmk.read_i32_slice(shared, &mut global);
        checksum = rank_block(p, my_keys.clone(), &global);
        tmk.proc().compute(my_keys.len() as f64 * COST_RANK);
        tmk.barrier(barrier);
        barrier += 1;
    }
    checksum
}

/// PVM version.
pub fn pvm_body(pvm: &Pvm, p: &IsParams) -> f64 {
    let n = pvm.nprocs();
    let me = pvm.id();
    let my_keys = block_range(p.keys, n, me);

    let mut checksum = 0.0;
    for iter in 0..p.iters {
        let tag_chain = 100 + iter as u32;
        let tag_final = 200 + iter as u32;

        let mut private = vec![0i32; p.buckets];
        count_block(p, my_keys.clone(), &mut private);
        pvm.proc().compute(my_keys.len() as f64 * COST_COUNT);

        // Chain sum: 0 -> 1 -> ... -> n-1, then the last broadcasts.
        let global = if n == 1 {
            private
        } else if me == 0 {
            let mut b = pvm.new_buffer();
            b.pack_i32(&private);
            pvm.send(1, tag_chain, b);
            let mut m = pvm.recv(Some(n - 1), tag_final);
            m.unpack_i32(p.buckets)
        } else {
            let mut m = pvm.recv(Some(me - 1), tag_chain);
            let mut sums = m.unpack_i32(p.buckets);
            for b in 0..p.buckets {
                sums[b] += private[b];
            }
            pvm.proc().compute(p.buckets as f64 * COST_ADD);
            if me == n - 1 {
                let mut b = pvm.new_buffer();
                b.pack_i32(&sums);
                pvm.bcast(tag_final, b);
                sums
            } else {
                let mut b = pvm.new_buffer();
                b.pack_i32(&sums);
                pvm.send(me + 1, tag_chain, b);
                let mut m = pvm.recv(Some(n - 1), tag_final);
                m.unpack_i32(p.buckets)
            }
        };

        checksum = rank_block(p, my_keys.clone(), &global);
        pvm.proc().compute(my_keys.len() as f64 * COST_RANK);
    }
    checksum
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &IsParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &IsParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &IsParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &IsParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.buckets * 4 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &IsParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &IsParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &IsParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_agree_on_ranks() {
        let p = IsParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            assert_eq!(t.checksum, seq.checksum, "TMK n={n}");
            assert_eq!(m.checksum, seq.checksum, "PVM n={n}");
        }
    }

    #[test]
    fn treadmarks_sends_far_more_messages_than_pvm() {
        let p = IsParams::tiny();
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(
            t.messages > 3 * m.messages,
            "TMK {} msgs vs PVM {} msgs",
            t.messages,
            m.messages
        );
    }

    #[test]
    fn large_key_range_costs_treadmarks_more_messages() {
        // The bucket array of IS-Large spans many pages, so every lock-
        // protected update and every read triggers one diff request per
        // page — IS-Large costs TreadMarks many more messages than
        // IS-Small (the paper's claim, carried by the message-count
        // assertion below).  At this tiny, latency-dominated input the
        // *time* ratios do not yet diverge; the bracket documents that.
        let small = IsParams {
            keys: 1 << 15,
            buckets: 1 << 8,
            iters: 2,
            seed: 1,
        };
        let large = IsParams {
            buckets: 1 << 13,
            ..small.clone()
        };
        let ts = treadmarks(4, &small);
        let ps = pvm(4, &small);
        let tl = treadmarks(4, &large);
        let pl = pvm(4, &large);
        let ratio_small = ts.time / ps.time;
        let ratio_large = tl.time / pl.time;
        // Virtual times are bit-deterministic, so the bracket is tight:
        // ratio_large/ratio_small ~ 0.9 here (the paper's time divergence
        // emerges at scaled inputs).
        let rel = ratio_large / ratio_small;
        assert!(
            (0.85..1.0).contains(&rel),
            "small ratio {ratio_small}, large ratio {ratio_large} (rel {rel})"
        );
        // The large key range must at least cost TreadMarks many more
        // messages per iteration (one diff request per bucket page).
        assert!(tl.messages > ts.messages);
    }

    #[test]
    fn diff_accumulation_grows_treadmarks_data_with_nprocs() {
        // In PVM the data per iteration is ~2*(n-1)*b; in TreadMarks it is
        // ~n*(n-1)*b because of diff accumulation, so the TMK/PVM data ratio
        // must grow with the number of processes.
        let p = IsParams {
            keys: 1 << 12,
            buckets: 1 << 12,
            iters: 2,
            seed: 7,
        };
        let t2 = treadmarks(2, &p);
        let p2 = pvm(2, &p);
        let t6 = treadmarks(6, &p);
        let p6 = pvm(6, &p);
        let r2 = t2.kilobytes / p2.kilobytes;
        let r6 = t6.kilobytes / p6.kilobytes;
        assert!(r6 > r2, "data ratio at 2 procs {r2}, at 6 procs {r6}");
    }
}

//! Uniform driver used by all nine applications.
//!
//! The paper reports, for every application and input set, (a) the speedup
//! relative to the sequential program for 1–8 processors, and (b) the number
//! of messages and the amount of data sent during the 8-processor execution.
//! The helpers here run an application body under either runtime system and
//! collect exactly those quantities:
//!
//! * for the **TreadMarks** versions, messages are the transport datagrams
//!   (the UDP messages of the real system) and data is the total payload
//!   bytes, as counted by the `cluster` transport;
//! * for the **PVM** versions, messages are the user-level sends and data is
//!   the user data packed into them, as PVM itself counts.

use cluster::{Cluster, ClusterConfig, ClusterObs, Proc, ProcStats, RunFailure};
use msgpass::Pvm;
use serde::Serialize;
use std::sync::Arc;
use treadmarks::race::{self, RaceReport, SyncClocks};
use treadmarks::{ProtocolKind, Tmk, TmkStats};

/// Which runtime system an application run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum System {
    /// TreadMarks-style distributed shared memory, under the given
    /// coherence-protocol backend.
    TreadMarks(ProtocolKind),
    /// PVM-style message passing.
    Pvm,
}

impl System {
    /// Every system configuration the harness can compare: one per DSM
    /// protocol backend, plus message passing.
    pub fn all() -> [System; 4] {
        [
            System::TreadMarks(ProtocolKind::Lrc),
            System::TreadMarks(ProtocolKind::Hlrc),
            System::TreadMarks(ProtocolKind::Sc),
            System::Pvm,
        ]
    }
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The protocol layer names its own backends ("TreadMarks" for
            // the paper's LRC; the others are this reproduction's
            // additions), so a new backend never edits this file.
            System::TreadMarks(protocol) => f.write_str(protocol.system_label()),
            System::Pvm => f.write_str("PVM"),
        }
    }
}

/// Result of a sequential (uninstrumented) run: the baseline of the speedup
/// curves and of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct SeqRun {
    /// Application checksum, used to validate the parallel versions.
    pub checksum: f64,
    /// Modeled sequential execution time, seconds.
    pub time: f64,
}

/// Result of one parallel run of one application under one system.
#[derive(Debug, Clone, Serialize)]
pub struct AppRun {
    /// Which system executed the run.
    pub system: System,
    /// Number of processes.
    pub nprocs: usize,
    /// Application checksum (must match the sequential run).
    pub checksum: f64,
    /// Parallel execution time: the latest virtual finish time.
    pub time: f64,
    /// Messages, counted per the paper's convention for this system.
    pub messages: u64,
    /// Kilobytes of data, counted per the paper's convention for this system.
    pub kilobytes: f64,
    /// Schedule seed the run's arbiter broke virtual-time ties with; 0 is
    /// the engine's historical rank-order discipline.
    pub sched_seed: u64,
    /// Hash of the run's fault plan ([`cluster::FaultPlan::hash`]); 0 for
    /// the empty (fault-free) plan.
    pub fault_hash: u64,
    /// Counters of the faults the plan actually injected (all zero for the
    /// empty plan under schedule seed 0).
    #[serde(skip)]
    pub faults: cluster::FaultStats,
    /// Aggregated DSM runtime statistics (TreadMarks runs only).
    #[serde(skip)]
    pub tmk_stats: Option<TmkStats>,
    /// Per-process transport statistics of the run (the full
    /// [`cluster::ClusterReport`] view), for determinism checks and
    /// per-process analyses.
    #[serde(skip)]
    pub proc_stats: Vec<ProcStats>,
    /// Observability output of the run (histograms, time-breakdown profile,
    /// and — at trace level — the structured event stream); `None` unless
    /// the cluster config's `obs` level asked for recording.
    #[serde(skip)]
    pub obs: Option<ClusterObs>,
    /// Happens-before race report of the run; `None` unless the cluster
    /// config's `analysis` level asked for race detection (message-passing
    /// runs have no shared memory to check, so PVM runs never carry one).
    #[serde(skip)]
    pub race: Option<RaceReport>,
}

impl AppRun {
    /// Speedup relative to a sequential time.
    pub fn speedup(&self, seq_time: f64) -> f64 {
        seq_time / self.time
    }
}

/// Run `body` on `nprocs` TreadMarks processes over the calibrated FDDI
/// cluster under the default (LRC) protocol.  See
/// [`run_treadmarks_with`].
pub fn run_treadmarks<F>(nprocs: usize, heap_bytes: usize, body: F) -> AppRun
where
    F: Fn(&Tmk) -> f64 + Send + Sync,
{
    run_treadmarks_with(nprocs, heap_bytes, ProtocolKind::Lrc, body)
}

/// Run `body` on `nprocs` TreadMarks processes over the calibrated FDDI
/// cluster under the given coherence protocol.  Convenience wrapper over
/// [`run_treadmarks_on`] for the paper's own testbed.
pub fn run_treadmarks_with<F>(
    nprocs: usize,
    heap_bytes: usize,
    protocol: ProtocolKind,
    body: F,
) -> AppRun
where
    F: Fn(&Tmk) -> f64 + Send + Sync,
{
    run_treadmarks_on(
        &ClusterConfig::calibrated_fddi(nprocs),
        heap_bytes,
        protocol,
        body,
    )
}

/// Run `body` on TreadMarks processes over an arbitrary cluster model —
/// the scenario subsystem's entry point — under the given coherence
/// protocol, and gather the paper's metrics.  The body returns the
/// process's local checksum *contribution*; the contributions are summed
/// into the run's checksum (so a gather that the paper's programs do not
/// perform is not needed just for validation).
pub fn run_treadmarks_on<F>(
    cfg: &ClusterConfig,
    heap_bytes: usize,
    protocol: ProtocolKind,
    body: F,
) -> AppRun
where
    F: Fn(&Tmk) -> f64 + Send + Sync,
{
    try_run_treadmarks_on(cfg, heap_bytes, protocol, body).unwrap_or_else(|f| panic!("{f}"))
}

/// As [`run_treadmarks_on`], but a structured [`RunFailure`] — a deadlock,
/// livelock, or fault-plan crash — comes back as an `Err` instead of a
/// panic, so the fuzzing harness can classify it as a finding and continue.
pub fn try_run_treadmarks_on<F>(
    cfg: &ClusterConfig,
    heap_bytes: usize,
    protocol: ProtocolKind,
    body: F,
) -> Result<AppRun, RunFailure>
where
    F: Fn(&Tmk) -> f64 + Send + Sync,
{
    let nprocs = cfg.nprocs;
    // The analysis layer lives outside the simulated machine: the recorder
    // rides the runtime and the clock table is plain shared process memory,
    // so enabling it cannot change any virtual time or counter.
    let table = cfg.analysis.enabled().then(|| Arc::new(SyncClocks::new()));
    let mut rep = Cluster::try_run(cfg.clone(), {
        let table = table.clone();
        move |p| {
            let tmk = Tmk::with_heap_and_protocol(p, heap_bytes, protocol);
            if let Some(table) = &table {
                tmk.enable_racecheck(Arc::clone(table));
            }
            let checksum = body(&tmk);
            tmk.exit();
            (checksum, tmk.stats(), tmk.take_race_log())
        }
    })?;
    let race = table.map(|_| {
        let logs: Vec<race::RaceLog> = rep
            .results
            .iter_mut()
            .map(|(_, _, log)| log.take().expect("racecheck was enabled on every rank"))
            .collect();
        race::analyze(nprocs, logs)
    });
    let obs = rep.obs.take();
    #[cfg(feature = "oracle-checks")]
    if let Some(obs) = &obs {
        let per_proc: Vec<&TmkStats> = rep.results.iter().map(|(_, s, _)| s).collect();
        cross_check_obs(cfg.obs, obs, &rep.stats, Some(&per_proc));
    }
    let mut agg = TmkStats::default();
    for (_, st, _) in &rep.results {
        agg.merge(st);
    }
    Ok(AppRun {
        system: System::TreadMarks(protocol),
        nprocs,
        checksum: rep.results.iter().map(|(c, _, _)| *c).sum(),
        time: rep.parallel_time(),
        messages: rep.total_datagrams(),
        kilobytes: rep.total_kilobytes(),
        sched_seed: cfg.sched_seed,
        fault_hash: cfg.fault.hash(),
        faults: rep.faults,
        tmk_stats: Some(agg),
        proc_stats: rep.stats,
        obs,
        race,
    })
}

/// Run `body` on `nprocs` PVM processes over the calibrated FDDI cluster.
/// Convenience wrapper over [`run_pvm_on`] for the paper's own testbed.
pub fn run_pvm<F>(nprocs: usize, body: F) -> AppRun
where
    F: Fn(&Pvm) -> f64 + Send + Sync,
{
    run_pvm_on(&ClusterConfig::calibrated_fddi(nprocs), body)
}

/// Run `body` on PVM processes over an arbitrary cluster model — the
/// scenario subsystem's entry point — and gather the paper's metrics.
pub fn run_pvm_on<F>(cfg: &ClusterConfig, body: F) -> AppRun
where
    F: Fn(&Pvm) -> f64 + Send + Sync,
{
    try_run_pvm_on(cfg, body).unwrap_or_else(|f| panic!("{f}"))
}

/// As [`run_pvm_on`], but a structured [`RunFailure`] comes back as an
/// `Err` instead of a panic.  See [`try_run_treadmarks_on`].
pub fn try_run_pvm_on<F>(cfg: &ClusterConfig, body: F) -> Result<AppRun, RunFailure>
where
    F: Fn(&Pvm) -> f64 + Send + Sync,
{
    let nprocs = cfg.nprocs;
    let mut rep = Cluster::try_run(cfg.clone(), move |p| {
        let pvm = Pvm::new(p);
        let checksum = body(&pvm);
        (checksum, pvm.user_stats())
    })?;
    let obs = rep.obs.take();
    #[cfg(feature = "oracle-checks")]
    if let Some(obs) = &obs {
        cross_check_obs(cfg.obs, obs, &rep.stats, None);
    }
    let user_messages: u64 = rep.results.iter().map(|(_, s)| s.messages).sum();
    let user_bytes: u64 = rep.results.iter().map(|(_, s)| s.bytes).sum();
    Ok(AppRun {
        system: System::Pvm,
        nprocs,
        checksum: rep.results.iter().map(|(c, _)| *c).sum(),
        time: rep.parallel_time(),
        messages: user_messages,
        kilobytes: user_bytes as f64 / 1024.0,
        sched_seed: cfg.sched_seed,
        fault_hash: cfg.fault.hash(),
        faults: rep.faults,
        tmk_stats: None,
        proc_stats: rep.stats,
        obs,
        race: None,
    })
}

/// Cross-check the observability output against the independently maintained
/// Table-2 counters: the span counts of the metrics layer must equal the
/// protocol's own accounting (one fault span per counted fault, one
/// barrier-wait span per barrier episode, one lock-wait span per remote
/// acquire), and at trace level the central event stream must agree with the
/// transport's per-process message counters.  Any drift between the
/// instrumentation and the accounting is a bug in one of them.
#[cfg(feature = "oracle-checks")]
fn cross_check_obs(
    level: cluster::ObsLevel,
    obs: &ClusterObs,
    proc_stats: &[ProcStats],
    tmk_stats: Option<&[&TmkStats]>,
) {
    use cluster::obs::EventKind;
    use cluster::SpanCat;
    if let Some(tmk) = tmk_stats {
        for (rank, (po, st)) in obs.procs.iter().zip(tmk).enumerate() {
            assert_eq!(
                po.span_count(SpanCat::Fault),
                st.page_faults,
                "process {rank}: fault spans vs page_faults"
            );
            assert_eq!(
                po.span_count(SpanCat::BarrierWait),
                st.barriers,
                "process {rank}: barrier-wait spans vs barriers"
            );
            assert_eq!(
                po.span_count(SpanCat::LockWait),
                st.remote_lock_acquires,
                "process {rank}: lock-wait spans vs remote_lock_acquires"
            );
            assert_eq!(
                po.span_count(SpanCat::Gc),
                st.gc_collections,
                "process {rank}: gc spans vs gc_collections"
            );
        }
    }
    if level == cluster::ObsLevel::Trace {
        let mut sends = vec![0u64; proc_stats.len()];
        let mut consumes = vec![0u64; proc_stats.len()];
        for ev in &obs.central {
            match ev.kind {
                EventKind::Send { .. } => sends[ev.rank as usize] += 1,
                EventKind::Consume { .. } => consumes[ev.rank as usize] += 1,
                _ => {}
            }
        }
        for (rank, st) in proc_stats.iter().enumerate() {
            assert_eq!(
                sends[rank], st.messages_sent,
                "process {rank}: trace sends vs messages_sent"
            );
            assert_eq!(
                consumes[rank], st.messages_received,
                "process {rank}: trace consumes vs messages_received"
            );
        }
    }
}

/// Partition `count` items into `nprocs` contiguous chunks and return the
/// half-open range owned by `rank` — the block distribution every
/// application in the study uses.
pub fn block_range(count: usize, nprocs: usize, rank: usize) -> std::ops::Range<usize> {
    let base = count / nprocs;
    let extra = count % nprocs;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..start + len
}

/// Convenience used by several compute models: charge `units * unit_cost`
/// seconds of virtual computation to the process.
pub fn charge(proc: &Proc, units: f64, unit_cost: f64) {
    if units > 0.0 {
        proc.compute(units * unit_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_everything_without_overlap() {
        for &(count, nprocs) in &[(10usize, 3usize), (8, 8), (7, 8), (100, 6), (1, 1)] {
            let mut covered = vec![false; count];
            for r in 0..nprocs {
                for i in block_range(count, nprocs, r) {
                    assert!(!covered[i], "index {i} covered twice");
                    covered[i] = true;
                }
            }
            assert!(
                covered.into_iter().all(|c| c),
                "{count}/{nprocs} not covered"
            );
        }
    }

    #[test]
    fn block_range_is_balanced() {
        let sizes: Vec<usize> = (0..8).map(|r| block_range(100, 8, r).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn treadmarks_runner_reports_messages() {
        let run = run_treadmarks(2, 1 << 20, |tmk| {
            let a = tmk.malloc(8);
            if tmk.id() == 0 {
                tmk.write_f64(a, 7.0);
            }
            tmk.barrier(0);
            if tmk.id() == 0 {
                tmk.read_f64(a)
            } else {
                0.0
            }
        });
        assert_eq!(run.checksum, 7.0);
        assert!(run.messages > 0);
        assert!(run.time > 0.0);
        assert!(run.tmk_stats.is_some());
    }

    #[test]
    fn runners_honour_an_arbitrary_cluster_model() {
        // The same two-process exchange on Ethernet and on the ideal net:
        // identical answers, very different virtual times — proof that the
        // full ClusterConfig (not just nprocs) reaches the simulation.
        let body = |tmk: &Tmk| {
            let a = tmk.malloc(8);
            if tmk.id() == 0 {
                tmk.write_f64(a, 7.0);
            }
            tmk.barrier(0);
            let v = tmk.read_f64(a);
            tmk.barrier(1);
            if tmk.id() == 0 {
                v
            } else {
                0.0
            }
        };
        let slow = run_treadmarks_on(
            &ClusterConfig::ethernet_10mbit(2),
            1 << 20,
            ProtocolKind::Lrc,
            body,
        );
        let fast = run_treadmarks_on(&ClusterConfig::ideal(2), 1 << 20, ProtocolKind::Lrc, body);
        assert_eq!(slow.checksum, 7.0);
        assert_eq!(fast.checksum, 7.0);
        assert!(
            slow.time > 10.0 * fast.time,
            "Ethernet {} vs ideal {}",
            slow.time,
            fast.time
        );
        let pvm_run = run_pvm_on(&ClusterConfig::atm_155mbit(2), |pvm| {
            if pvm.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_f64(&[2.5]);
                pvm.send(1, 1, b);
                0.0
            } else {
                pvm.recv(Some(0), 1).unpack_f64(1)[0]
            }
        });
        assert_eq!(pvm_run.checksum, 2.5);
        assert_eq!(pvm_run.nprocs, 2);
    }

    #[test]
    fn pvm_runner_reports_user_messages() {
        let run = run_pvm(2, |pvm| {
            if pvm.id() == 0 {
                let mut b = pvm.new_buffer();
                b.pack_f64(&[3.5]);
                pvm.send(1, 1, b);
                0.0
            } else {
                pvm.recv(Some(0), 1).unpack_f64(1)[0]
            }
        });
        assert_eq!(run.checksum, 3.5);
        assert_eq!(run.messages, 1);
        assert!((run.kilobytes - 8.0 / 1024.0).abs() < 1e-9);
    }
}

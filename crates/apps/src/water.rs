//! Water — molecular dynamics from the SPLASH benchmark suite.
//!
//! The main data structure is a one-dimensional array of molecule records.
//! Each time step computes intermolecular forces between each molecule and
//! the `n/2` molecules following it (wraparound), then integrates positions.
//! The array is statically divided into equal contiguous chunks per process.
//!
//! * **TreadMarks** (the tuned SPLASH version the paper uses): only the
//!   positions and forces are shared; each process accumulates force
//!   contributions in a *private* copy during the force phase and then adds
//!   them into the shared per-owner force arrays under per-owner locks;
//!   barriers separate the phases.  False sharing on the molecule array and
//!   diff accumulation on the force updates are the costs the paper measures.
//! * **PVM**: processes exchange positions before the force phase and send
//!   their accumulated force contributions to the owners afterwards — two
//!   user-level messages per pair of interacting processes.

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost per molecule pair examined in the force phase.
pub const COST_PAIR: f64 = 1.6e-6;
/// Cost per molecule integrated in the update phase.
pub const COST_UPDATE: f64 = 2.0e-6;
/// Interaction cutoff distance.
const CUTOFF2: f64 = 12.0 * 12.0;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct WaterParams {
    /// Number of molecules.
    pub molecules: usize,
    /// Number of time steps.
    pub steps: usize,
}

impl WaterParams {
    /// Paper-scale small input: 288 molecules, 5 steps.
    pub fn paper_288() -> Self {
        WaterParams {
            molecules: 288,
            steps: 5,
        }
    }

    /// Paper-scale large input: 1728 molecules, 5 steps.
    pub fn paper_1728() -> Self {
        WaterParams {
            molecules: 1728,
            steps: 5,
        }
    }

    /// Scaled-down 288-molecule run.
    pub fn scaled_288() -> Self {
        WaterParams {
            molecules: 288,
            steps: 2,
        }
    }

    /// Scaled-down 1728-molecule run.
    pub fn scaled_1728() -> Self {
        WaterParams {
            molecules: 864,
            steps: 2,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        WaterParams {
            molecules: 48,
            steps: 2,
        }
    }

    /// Initial positions laid out on a jittered cubic lattice.
    pub fn initial_positions(&self) -> Vec<[f64; 3]> {
        let side = (self.molecules as f64).cbrt().ceil() as usize;
        (0..self.molecules)
            .map(|i| {
                let x = (i % side) as f64;
                let y = ((i / side) % side) as f64;
                let z = (i / (side * side)) as f64;
                let j = ((i * 2654435761) % 97) as f64 / 97.0;
                [x * 3.1 + j, y * 3.1 - j, z * 3.1 + 0.5 * j]
            })
            .collect()
    }
}

/// Pairwise force contribution: a smooth attraction that goes to zero
/// continuously at the cutoff, so that summation-order differences between
/// the sequential and parallel versions cannot flip a pair across the cutoff.
fn pair_force(a: &[f64; 3], b: &[f64; 3]) -> Option<[f64; 3]> {
    let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 > CUTOFF2 || r2 == 0.0 {
        return None;
    }
    let g = 1.0 / (r2 + 1.0) - 1.0 / (CUTOFF2 + 1.0);
    Some([d[0] * g, d[1] * g, d[2] * g])
}

/// One force phase over the half-shell of pairs.  `owned` limits which
/// molecules this caller computes for; contributions for *all* molecules are
/// accumulated into `forces`.  Returns the number of pairs examined.
fn compute_forces(pos: &[[f64; 3]], owned: std::ops::Range<usize>, forces: &mut [[f64; 3]]) -> u64 {
    let n = pos.len();
    let half = n / 2;
    let mut pairs = 0u64;
    for i in owned {
        for k in 1..=half {
            let j = (i + k) % n;
            pairs += 1;
            if let Some(f) = pair_force(&pos[i], &pos[j]) {
                for c in 0..3 {
                    forces[i][c] += f[c];
                    forces[j][c] -= f[c];
                }
            }
        }
    }
    pairs
}

fn integrate(pos: &mut [f64; 3], force: &[f64; 3]) {
    const DT: f64 = 0.05;
    for c in 0..3 {
        pos[c] += DT * force[c];
    }
}

fn positions_checksum(pos: &[[f64; 3]]) -> f64 {
    pos.iter().map(|p| p[0] + 2.0 * p[1] + 3.0 * p[2]).sum()
}

/// Sequential reference implementation.
pub fn sequential(p: &WaterParams) -> SeqRun {
    let mut pos = p.initial_positions();
    let n = p.molecules;
    let mut time = 0.0;
    for _ in 0..p.steps {
        let mut forces = vec![[0.0; 3]; n];
        let pairs = compute_forces(&pos, 0..n, &mut forces);
        time += pairs as f64 * COST_PAIR + n as f64 * COST_UPDATE;
        for i in 0..n {
            integrate(&mut pos[i], &forces[i]);
        }
    }
    SeqRun {
        checksum: positions_checksum(&pos),
        time,
    }
}

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &WaterParams) -> f64 {
    let n = p.molecules;
    let nprocs = tmk.nprocs();
    // Shared arrays: positions (3 f64 per molecule) and forces (3 f64).
    let pos_addr = tmk.malloc(n * 24);
    let force_addr = tmk.malloc(n * 24);
    if tmk.id() == 0 {
        let init = p.initial_positions();
        let flat: Vec<f64> = init.iter().flat_map(|m| m.iter().copied()).collect();
        tmk.write_f64_slice(pos_addr, &flat);
    }
    tmk.barrier(0);

    let mine = block_range(n, nprocs, tmk.id());
    let mut barrier = 1u32;
    for _ in 0..p.steps {
        // Read the positions this process needs (its own plus the half-shell
        // following it, wraparound); simply read the whole array as the
        // SPLASH code effectively touches nearly all of it at 8 processes.
        let mut flat = vec![0.0f64; n * 3];
        tmk.read_f64_slice(pos_addr, &mut flat);
        let pos: Vec<[f64; 3]> = flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();

        // Private force accumulation.
        let mut forces = vec![[0.0; 3]; n];
        let pairs = compute_forces(&pos, mine.clone(), &mut forces);
        tmk.proc().compute(pairs as f64 * COST_PAIR);

        // Add contributions to each owner's shared forces under its lock.
        for owner in 0..nprocs {
            let owned = block_range(n, nprocs, owner);
            let any = owned.clone().any(|i| forces[i] != [0.0; 3]);
            if !any {
                continue;
            }
            tmk.lock_acquire(owner as u32);
            let mut shared = vec![0.0f64; owned.len() * 3];
            tmk.read_f64_slice(force_addr + owned.start * 24, &mut shared);
            for (k, i) in owned.clone().enumerate() {
                for c in 0..3 {
                    shared[k * 3 + c] += forces[i][c];
                }
            }
            tmk.write_f64_slice(force_addr + owned.start * 24, &shared);
            tmk.lock_release(owner as u32);
        }
        tmk.barrier(barrier);
        barrier += 1;

        // Update phase: integrate own molecules and clear their forces.
        let mut own_pos = vec![0.0f64; mine.len() * 3];
        let mut own_force = vec![0.0f64; mine.len() * 3];
        tmk.read_f64_slice(pos_addr + mine.start * 24, &mut own_pos);
        tmk.read_f64_slice(force_addr + mine.start * 24, &mut own_force);
        for k in 0..mine.len() {
            let mut pmol = [own_pos[k * 3], own_pos[k * 3 + 1], own_pos[k * 3 + 2]];
            let f = [own_force[k * 3], own_force[k * 3 + 1], own_force[k * 3 + 2]];
            integrate(&mut pmol, &f);
            own_pos[k * 3..k * 3 + 3].copy_from_slice(&pmol);
        }
        tmk.proc().compute(mine.len() as f64 * COST_UPDATE);
        tmk.write_f64_slice(pos_addr + mine.start * 24, &own_pos);
        tmk.write_f64_slice(force_addr + mine.start * 24, &vec![0.0f64; mine.len() * 3]);
        tmk.barrier(barrier);
        barrier += 1;
    }

    // Contribution of this process's own molecules to the run checksum.
    let mut own_pos = vec![0.0f64; mine.len() * 3];
    tmk.read_f64_slice(pos_addr + mine.start * 24, &mut own_pos);
    let own: Vec<[f64; 3]> = own_pos
        .chunks_exact(3)
        .map(|c| [c[0], c[1], c[2]])
        .collect();
    positions_checksum(&own)
}

/// PVM version.
pub fn pvm_body(pvm: &Pvm, p: &WaterParams) -> f64 {
    let n = p.molecules;
    let nprocs = pvm.nprocs();
    let me = pvm.id();
    let mine = block_range(n, nprocs, me);
    let mut pos = p.initial_positions();

    for step in 0..p.steps {
        let tag_pos = 100 + step as u32;
        let tag_force = 200 + step as u32;

        // Exchange positions: send mine to everyone who interacts with them,
        // receive everyone else's (at 8 processes the half-shell spans all
        // other processes, matching the paper's all-pairs-of-processors
        // message count).
        if nprocs > 1 {
            let mut b = pvm.new_buffer();
            let flat: Vec<f64> = pos[mine.clone()]
                .iter()
                .flat_map(|m| m.iter().copied())
                .collect();
            b.pack_f64(&flat);
            let others: Vec<usize> = (0..nprocs).filter(|&q| q != me).collect();
            pvm.mcast(&others, tag_pos, b);
            for _ in 0..nprocs - 1 {
                let mut m = pvm.recv(None, tag_pos);
                let src = m.src();
                let owned = block_range(n, nprocs, src);
                let flat = m.unpack_f64(owned.len() * 3);
                for (k, i) in owned.enumerate() {
                    pos[i] = [flat[k * 3], flat[k * 3 + 1], flat[k * 3 + 2]];
                }
            }
        }

        // Private force accumulation over my half-shell.
        let mut forces = vec![[0.0; 3]; n];
        let pairs = compute_forces(&pos, mine.clone(), &mut forces);
        pvm.proc().compute(pairs as f64 * COST_PAIR);

        // Send accumulated contributions to each owner; receive mine.
        let mut my_forces: Vec<[f64; 3]> = mine.clone().map(|i| forces[i]).collect();
        if nprocs > 1 {
            for owner in 0..nprocs {
                if owner == me {
                    continue;
                }
                let owned = block_range(n, nprocs, owner);
                let flat: Vec<f64> = owned.clone().flat_map(|i| forces[i].to_vec()).collect();
                let mut b = pvm.new_buffer();
                b.pack_f64(&flat);
                pvm.send(owner, tag_force, b);
            }
            for _ in 0..nprocs - 1 {
                let mut m = pvm.recv(None, tag_force);
                let flat = m.unpack_f64(mine.len() * 3);
                for k in 0..mine.len() {
                    for c in 0..3 {
                        my_forces[k][c] += flat[k * 3 + c];
                    }
                }
            }
        }

        // Integrate own molecules.
        for (k, i) in mine.clone().enumerate() {
            integrate(&mut pos[i], &my_forces[k]);
        }
        pvm.proc().compute(mine.len() as f64 * COST_UPDATE);
    }

    let own: Vec<[f64; 3]> = pos[mine].to_vec();
    positions_checksum(&own)
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &WaterParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &WaterParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &WaterParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &WaterParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.molecules * 48 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &WaterParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &WaterParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &WaterParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_agree_on_final_positions() {
        let p = WaterParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            // Force contributions are summed in a different order in the
            // parallel versions, so allow normal floating-point drift.
            let tol = seq.checksum.abs() * 1e-6 + 1e-6;
            assert!(
                (t.checksum - seq.checksum).abs() < tol,
                "TMK n={n}: {} vs {}",
                t.checksum,
                seq.checksum
            );
            assert!(
                (m.checksum - seq.checksum).abs() < tol,
                "PVM n={n}: {} vs {}",
                m.checksum,
                seq.checksum
            );
        }
    }

    #[test]
    fn larger_input_closes_the_gap_between_systems() {
        // The paper's Water-1728 runs much closer to PVM than Water-288
        // because the computation/communication ratio rises.
        let small = WaterParams {
            molecules: 96,
            steps: 2,
        };
        let large = WaterParams {
            molecules: 384,
            steps: 2,
        };
        let rs = treadmarks(4, &small).time / pvm(4, &small).time;
        let rl = treadmarks(4, &large).time / pvm(4, &large).time;
        assert!(rl < rs, "ratio small {rs}, large {rl}");
    }
}

//! ILINK — parallel genetic linkage analysis.
//!
//! ILINK traverses family trees and, for each nuclear family, updates one
//! person's *genarray* (the probability of each genotype) conditioned on the
//! rest of the family.  The genarray is sparse, so an index of non-zero
//! entries accompanies it.  A bank of genarrays is allocated once and
//! re-initialised for every nuclear family.  The master assigns the non-zero
//! elements of the parent's genarray to the processes round-robin; each
//! process updates its share, and the master then sums the contributions.
//!
//! * **TreadMarks**: the bank of genarrays is shared and barriers separate
//!   the phases.  The diffing mechanism automatically transmits only the
//!   non-zero (modified) elements, but the round-robin assignment causes
//!   false sharing, one diff request is needed per page of the genarray, and
//!   the re-initialisation of the bank at every family produces diff
//!   accumulation.
//! * **PVM**: the master sends each slave exactly its share of non-zero
//!   elements in one message and receives one message of results back.
//!
//! The paper uses the proprietary CLP pedigree data set; this reproduction
//! generates a synthetic pedigree with the same structural properties
//! (sparse genarrays spanning several pages, per-family re-initialisation) —
//! see README.md §Design notes.

use crate::runner::{try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost of updating one non-zero genarray element (conditioning on the rest
/// of the nuclear family), the dominant computation.
pub const COST_ELEMENT: f64 = 140e-6;
/// Cost of summing one element's contribution at the master.
pub const COST_SUM: f64 = 0.4e-6;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct IlinkParams {
    /// Number of nuclear families in the synthetic pedigree.
    pub families: usize,
    /// Genarray length (number of genotypes per person).
    pub genarray: usize,
    /// Fraction of genarray entries that are non-zero.
    pub density: f64,
    /// RNG seed for the synthetic pedigree.
    pub seed: u64,
}

impl IlinkParams {
    /// Paper-scale synthetic stand-in for the CLP data set: genarrays of
    /// several pages and enough families for a multi-minute sequential run.
    pub fn paper() -> Self {
        IlinkParams {
            families: 24,
            genarray: 4096,
            density: 0.30,
            seed: 77,
        }
    }

    /// Scaled-down problem for the default harness preset.
    pub fn scaled() -> Self {
        IlinkParams {
            families: 10,
            genarray: 2048,
            density: 0.30,
            seed: 77,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        IlinkParams {
            families: 3,
            genarray: 256,
            density: 0.40,
            seed: 77,
        }
    }

    /// The non-zero pattern and initial values of family `f`'s parent
    /// genarray (deterministic, same for every version).
    fn family_genarray(&self, f: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut state = self
            .seed
            .wrapping_add((f as u64).wrapping_mul(0x9E3779B97F4A7C15))
            | 1;
        for i in 0..self.genarray {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.density {
                out.push((i, 0.1 + u));
            }
        }
        out
    }
}

/// The per-element update: condition the genotype probability on the family
/// (a smooth non-linear function standing in for the pedigree likelihood).
fn update_element(value: f64, family: usize) -> f64 {
    let scale = 1.0 / (1.0 + family as f64 * 0.25);
    (value * scale + 0.01).sqrt() * 0.5
}

/// Sequential reference implementation.
pub fn sequential(p: &IlinkParams) -> SeqRun {
    let mut time = 0.0;
    let mut likelihood = 0.0;
    for f in 0..p.families {
        let gen = p.family_genarray(f);
        let mut sum = 0.0;
        for &(_, v) in &gen {
            sum += update_element(v, f);
        }
        time += gen.len() as f64 * (COST_ELEMENT + COST_SUM);
        likelihood += sum.ln();
    }
    SeqRun {
        checksum: likelihood,
        time,
    }
}

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &IlinkParams) -> f64 {
    let n = tmk.nprocs();
    let me = tmk.id();
    let bank = tmk.malloc(p.genarray * 8);
    tmk.barrier(0);

    let mut likelihood = 0.0;
    let mut barrier = 1u32;
    for f in 0..p.families {
        let gen = p.family_genarray(f);
        // The master re-initialises the bank for this nuclear family.
        if me == 0 {
            let mut full = vec![0.0f64; p.genarray];
            for &(i, v) in &gen {
                full[i] = v;
            }
            tmk.write_f64_slice(bank, &full);
        }
        tmk.barrier(barrier);
        barrier += 1;

        // Round-robin update of the non-zero elements.
        let mut mine = 0u64;
        for (k, &(i, _)) in gen.iter().enumerate() {
            if k % n == me {
                let v = tmk.read_f64(bank + i * 8);
                tmk.write_f64(bank + i * 8, update_element(v, f));
                mine += 1;
            }
        }
        tmk.proc().compute(mine as f64 * COST_ELEMENT);
        tmk.barrier(barrier);
        barrier += 1;

        // The master sums the contributions.
        if me == 0 {
            let mut full = vec![0.0f64; p.genarray];
            tmk.read_f64_slice(bank, &mut full);
            let sum: f64 = gen.iter().map(|&(i, _)| full[i]).sum();
            tmk.proc().compute(gen.len() as f64 * COST_SUM);
            likelihood += sum.ln();
        }
        tmk.barrier(barrier);
        barrier += 1;
    }
    if me == 0 {
        likelihood
    } else {
        0.0
    }
}

const TAG_ASSIGN: u32 = 30;
const TAG_RESULT: u32 = 31;

/// PVM version.
pub fn pvm_body(pvm: &Pvm, p: &IlinkParams) -> f64 {
    let n = pvm.nprocs();
    let me = pvm.id();

    let mut likelihood = 0.0;
    for f in 0..p.families {
        let gen = p.family_genarray(f);
        if me == 0 {
            // Assign non-zero elements round-robin and ship each slave its
            // share (indices and values) in a single message.
            for slave in 1..n {
                let share: Vec<(usize, f64)> = gen
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| k % n == slave)
                    .map(|(_, &e)| e)
                    .collect();
                let mut b = pvm.new_buffer();
                b.pack_u64(&[f as u64, share.len() as u64]);
                b.pack_u64(&share.iter().map(|&(i, _)| i as u64).collect::<Vec<_>>());
                b.pack_f64(&share.iter().map(|&(_, v)| v).collect::<Vec<_>>());
                pvm.send(slave, TAG_ASSIGN, b);
            }
            // Master's own share.
            let mut results: Vec<(usize, f64)> = gen
                .iter()
                .enumerate()
                .filter(|(k, _)| k % n == 0)
                .map(|(_, &(i, v))| (i, update_element(v, f)))
                .collect();
            pvm.proc().compute(results.len() as f64 * COST_ELEMENT);
            // Collect the slaves' results (only the non-zero elements travel).
            for _ in 1..n {
                let mut m = pvm.recv(None, TAG_RESULT);
                let count = m.unpack_u64(1)[0] as usize;
                let idx = m.unpack_u64(count);
                let vals = m.unpack_f64(count);
                for k in 0..count {
                    results.push((idx[k] as usize, vals[k]));
                }
            }
            let sum: f64 = results.iter().map(|&(_, v)| v).sum();
            pvm.proc().compute(gen.len() as f64 * COST_SUM);
            likelihood += sum.ln();
        } else {
            let mut m = pvm.recv(Some(0), TAG_ASSIGN);
            let hdr = m.unpack_u64(2);
            let (family, count) = (hdr[0] as usize, hdr[1] as usize);
            let idx = m.unpack_u64(count);
            let vals = m.unpack_f64(count);
            let updated: Vec<f64> = vals.iter().map(|&v| update_element(v, family)).collect();
            pvm.proc().compute(count as f64 * COST_ELEMENT);
            let mut b = pvm.new_buffer();
            b.pack_u64(&[count as u64]);
            b.pack_u64(&idx);
            b.pack_f64(&updated);
            pvm.send(0, TAG_RESULT, b);
        }
    }
    if me == 0 {
        likelihood
    } else {
        0.0
    }
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &IlinkParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &IlinkParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &IlinkParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &IlinkParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.genarray * 8 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &IlinkParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &IlinkParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &IlinkParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_agree_on_the_likelihood() {
        let p = IlinkParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            // Contributions are summed in a different order in the parallel
            // versions, so allow normal floating-point drift.
            let tol = seq.checksum.abs() * 1e-6 + 1e-6;
            assert!(
                (t.checksum - seq.checksum).abs() < tol,
                "TMK n={n}: {} vs {}",
                t.checksum,
                seq.checksum
            );
            assert!(
                (m.checksum - seq.checksum).abs() < tol,
                "PVM n={n}: {} vs {}",
                m.checksum,
                seq.checksum
            );
        }
    }

    #[test]
    fn high_computation_ratio_keeps_the_systems_close() {
        // ILINK's per-element work is large, so TreadMarks stays within a
        // modest factor of PVM despite sending more messages — unlike the
        // task-queue applications, where the factor reaches 10-50x.  Virtual
        // times are bit-deterministic (the conservative arbiter orders the
        // shared medium by virtual timestamps), so the bracket is tight: the
        // TMK/PVM ratio at this input is ~2.53.
        let p = IlinkParams::tiny();
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(t.messages > m.messages);
        let ratio = t.time / m.time;
        assert!(
            (2.3..2.8).contains(&ratio),
            "TMK {} vs PVM {} (ratio {ratio})",
            t.time,
            m.time
        );
    }

    #[test]
    fn synthetic_genarray_is_sparse_and_deterministic() {
        let p = IlinkParams::tiny();
        let a = p.family_genarray(1);
        let b = p.family_genarray(1);
        assert_eq!(a, b);
        assert!(a.len() < p.genarray);
        assert!(!a.is_empty());
    }
}

//! QSORT — parallel quicksort driven by a work queue.
//!
//! The unsorted list is partitioned into sublists; sublists below a threshold
//! are sorted with bubblesort, larger ones are partitioned again and the two
//! halves are put back on the work queue.
//!
//! * **TreadMarks**: the list and the work queue are shared; workers pop
//!   tasks under a lock, release the queue while they partition or sort, and
//!   re-acquire it to push newly generated sublists.  Intermediate sublists
//!   are larger than a page, so each task migration needs several diff
//!   requests, and the queue itself is migratory data (diff accumulation).
//! * **PVM**: a master/slave arrangement — the master owns the array and the
//!   work queue; subarray contents travel to a slave and back with every
//!   task.

use crate::runner::{try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Cost per element moved during a partition step.
pub const COST_PART: f64 = 0.12e-6;
/// Cost per comparison in the bubblesort leaf phase.
pub const COST_CMP: f64 = 0.035e-6;
/// Idle back-off charged when a worker polls an empty queue.
pub const POLL_BACKOFF: f64 = 300e-6;

const QUEUE_CAP: usize = 4096;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct QsortParams {
    /// Number of integers to sort.
    pub elems: usize,
    /// Sublists at or below this size are bubble-sorted.
    pub threshold: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QsortParams {
    /// Paper-scale problem: 256 K integers, bubblesort threshold 1024.
    pub fn paper() -> Self {
        QsortParams {
            elems: 256 * 1024,
            threshold: 1024,
            seed: 424242,
        }
    }

    /// Scaled-down problem for the default harness preset.
    pub fn scaled() -> Self {
        QsortParams {
            elems: 64 * 1024,
            threshold: 512,
            seed: 424242,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        QsortParams {
            elems: 2048,
            threshold: 64,
            seed: 424242,
        }
    }

    /// The deterministic unsorted input.
    pub fn input(&self) -> Vec<i32> {
        let mut v = Vec::with_capacity(self.elems);
        let mut state = self.seed | 1;
        for _ in 0..self.elems {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push((state >> 33) as i32);
        }
        v
    }
}

fn checksum(sorted: &[i32]) -> f64 {
    let mut ok = 1.0;
    let mut sum = 0.0;
    for (i, w) in sorted.windows(2).enumerate() {
        if w[0] > w[1] {
            ok = 0.0;
        }
        if i % 97 == 0 {
            sum += w[0] as f64 * (i as f64 + 1.0);
        }
    }
    ok * (sum % 1e12)
}

/// Bubblesort a slice, returning the number of comparisons.
fn bubblesort(v: &mut [i32]) -> u64 {
    let mut cmps = 0u64;
    let n = v.len();
    for i in 0..n {
        for j in 0..n - 1 - i {
            cmps += 1;
            if v[j] > v[j + 1] {
                v.swap(j, j + 1);
            }
        }
    }
    cmps
}

/// Partition a slice around its last element; returns the pivot index.
fn partition(v: &mut [i32]) -> usize {
    let pivot = v[v.len() - 1];
    let mut store = 0usize;
    for i in 0..v.len() - 1 {
        if v[i] < pivot {
            v.swap(i, store);
            store += 1;
        }
    }
    let last = v.len() - 1;
    v.swap(store, last);
    store
}

/// Sequential reference implementation.
pub fn sequential(p: &QsortParams) -> SeqRun {
    let mut data = p.input();
    let mut time = 0.0;
    let mut stack = vec![(0usize, p.elems)];
    while let Some((start, len)) = stack.pop() {
        if len == 0 {
            continue;
        }
        if len <= p.threshold {
            let cmps = bubblesort(&mut data[start..start + len]);
            time += cmps as f64 * COST_CMP;
        } else {
            let pivot = partition(&mut data[start..start + len]);
            time += len as f64 * COST_PART;
            stack.push((start, pivot));
            stack.push((start + pivot + 1, len - pivot - 1));
        }
    }
    SeqRun {
        checksum: checksum(&data),
        time,
    }
}

// -------------------------------------------------------------- TreadMarks

const LOCK_QUEUE: u32 = 0;

/// TreadMarks version.
pub fn treadmarks_body(tmk: &Tmk, p: &QsortParams) -> f64 {
    let data_addr = tmk.malloc(p.elems * 4);
    let qlen_addr = tmk.malloc(4);
    let outstanding_addr = tmk.malloc(4);
    let queue_addr = tmk.malloc(QUEUE_CAP * 8); // (start, len) pairs of i32

    if tmk.id() == 0 {
        tmk.write_i32_slice(data_addr, &p.input());
        tmk.write_i32(qlen_addr, 1);
        tmk.write_i32(outstanding_addr, 1);
        tmk.write_i32(queue_addr, 0);
        tmk.write_i32(queue_addr + 4, p.elems as i32);
    }
    tmk.barrier(0);

    loop {
        // Pop a task (or detect global completion) under the queue lock.
        tmk.lock_acquire(LOCK_QUEUE);
        let qlen = tmk.read_i32(qlen_addr);
        let task = if qlen > 0 {
            let start = tmk.read_i32(queue_addr + (qlen as usize - 1) * 8) as usize;
            let len = tmk.read_i32(queue_addr + (qlen as usize - 1) * 8 + 4) as usize;
            tmk.write_i32(qlen_addr, qlen - 1);
            Some((start, len))
        } else {
            None
        };
        let outstanding = tmk.read_i32(outstanding_addr);
        tmk.lock_release(LOCK_QUEUE);

        let Some((start, len)) = task else {
            if outstanding == 0 {
                break;
            }
            tmk.proc().compute(POLL_BACKOFF);
            continue;
        };

        // Fetch the sublist, process it privately, write it back.
        let mut sub = vec![0i32; len];
        tmk.read_i32_slice(data_addr + start * 4, &mut sub);
        if len <= p.threshold {
            let cmps = bubblesort(&mut sub);
            tmk.proc().compute(cmps as f64 * COST_CMP);
            tmk.write_i32_slice(data_addr + start * 4, &sub);
            tmk.lock_acquire(LOCK_QUEUE);
            let o = tmk.read_i32(outstanding_addr);
            tmk.write_i32(outstanding_addr, o - 1);
            tmk.lock_release(LOCK_QUEUE);
        } else {
            let pivot = partition(&mut sub);
            tmk.proc().compute(len as f64 * COST_PART);
            tmk.write_i32_slice(data_addr + start * 4, &sub);
            tmk.lock_acquire(LOCK_QUEUE);
            let qlen = tmk.read_i32(qlen_addr) as usize;
            assert!(qlen + 2 <= QUEUE_CAP, "work queue overflow");
            tmk.write_i32(queue_addr + qlen * 8, start as i32);
            tmk.write_i32(queue_addr + qlen * 8 + 4, pivot as i32);
            tmk.write_i32(queue_addr + (qlen + 1) * 8, (start + pivot + 1) as i32);
            tmk.write_i32(queue_addr + (qlen + 1) * 8 + 4, (len - pivot - 1) as i32);
            tmk.write_i32(qlen_addr, qlen as i32 + 2);
            let o = tmk.read_i32(outstanding_addr);
            tmk.write_i32(outstanding_addr, o + 1);
            tmk.lock_release(LOCK_QUEUE);
        }
    }

    tmk.barrier(1);
    if tmk.id() == 0 {
        let mut data = vec![0i32; p.elems];
        tmk.read_i32_slice(data_addr, &mut data);
        checksum(&data)
    } else {
        0.0
    }
}

// --------------------------------------------------------------------- PVM

const TAG_REQ: u32 = 20;
const TAG_TASK: u32 = 21;
const TAG_DONE: u32 = 22;
const TAG_RESULT: u32 = 23;

/// PVM version: the master owns the array and queue; subarrays travel to the
/// slaves and back.
pub fn pvm_body(pvm: &Pvm, p: &QsortParams) -> f64 {
    let n = pvm.nprocs();
    if pvm.id() == 0 {
        let mut data = p.input();
        let mut queue = vec![(0usize, p.elems)];
        let mut outstanding_remote = 0usize;
        let mut slaves_done = 0usize;
        // Slaves whose work request arrived while the queue was empty; they
        // are answered as soon as a result generates new tasks (or with DONE
        // once everything has drained), so idle slaves never busy-poll.
        let mut waiting: Vec<usize> = Vec::new();

        let process_result =
            |m: &mut msgpass::RecvBuffer, data: &mut Vec<i32>, queue: &mut Vec<(usize, usize)>| {
                let hdr = m.unpack_u64(3);
                let (start, len, kind) = (hdr[0] as usize, hdr[1] as usize, hdr[2]);
                let content = m.unpack_i32(len);
                data[start..start + len].copy_from_slice(&content);
                if kind == 1 {
                    // Partitioned: the pivot position follows.
                    let pivot = m.unpack_u64(1)[0] as usize;
                    queue.push((start, pivot));
                    queue.push((start + pivot + 1, len - pivot - 1));
                }
            };

        let send_task = |pvm: &Pvm,
                         data: &Vec<i32>,
                         slave: usize,
                         start: usize,
                         len: usize,
                         threshold: usize| {
            let mut b = pvm.new_buffer();
            b.pack_u64(&[start as u64, len as u64, u64::from(len <= threshold)]);
            b.pack_i32(&data[start..start + len]);
            pvm.send(slave, TAG_TASK, b);
        };

        loop {
            if let Some(mut m) = pvm.nrecv(None, TAG_RESULT) {
                process_result(&mut m, &mut data, &mut queue);
                outstanding_remote -= 1;
                // Serve slaves that were waiting for new tasks.
                while !waiting.is_empty() {
                    match queue.pop() {
                        Some((start, len)) if len > 0 => {
                            let slave = waiting.pop().unwrap();
                            send_task(pvm, &data, slave, start, len, p.threshold);
                            outstanding_remote += 1;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                continue;
            }
            if let Some(m) = pvm.nrecv(None, TAG_REQ) {
                let slave = m.src();
                match queue.pop() {
                    Some((start, len)) if len > 0 => {
                        send_task(pvm, &data, slave, start, len, p.threshold);
                        outstanding_remote += 1;
                    }
                    Some(_) => waiting.push(slave),
                    None => {
                        if outstanding_remote == 0 {
                            pvm.send(slave, TAG_DONE, pvm.new_buffer());
                            slaves_done += 1;
                        } else {
                            waiting.push(slave);
                        }
                    }
                }
                continue;
            }
            // Master works on a task itself when no requests are pending.
            match queue.pop() {
                Some((start, len)) if len > 0 => {
                    if len <= p.threshold {
                        let cmps = bubblesort(&mut data[start..start + len]);
                        pvm.proc().compute(cmps as f64 * COST_CMP);
                    } else {
                        let pivot = partition(&mut data[start..start + len]);
                        pvm.proc().compute(len as f64 * COST_PART);
                        queue.push((start, pivot));
                        queue.push((start + pivot + 1, len - pivot - 1));
                    }
                }
                Some(_) => {}
                None => {
                    if outstanding_remote == 0 {
                        // Everything has drained: release the waiting and
                        // any remaining slaves, then stop.
                        for slave in waiting.drain(..) {
                            pvm.send(slave, TAG_DONE, pvm.new_buffer());
                            slaves_done += 1;
                        }
                        if slaves_done == n - 1 {
                            break;
                        }
                        let m = pvm.recv(None, TAG_REQ);
                        pvm.send(m.src(), TAG_DONE, pvm.new_buffer());
                        slaves_done += 1;
                    } else {
                        let mut m = pvm.recv(None, TAG_RESULT);
                        process_result(&mut m, &mut data, &mut queue);
                        outstanding_remote -= 1;
                    }
                }
            }
        }
        checksum(&data)
    } else {
        loop {
            pvm.send(0, TAG_REQ, pvm.new_buffer());
            // Block for the master's answer — a task or DONE — instead of
            // busy-polling the two tags: the reply is in this process's
            // virtual future, so a poll loop would never see it (and never
            // advances the clock to it).
            let m = pvm.recv_any(Some(0));
            let reply = match m.tag() {
                TAG_TASK => Some(m),
                TAG_DONE => None,
                other => unreachable!("slave got unexpected tag {other}"),
            };
            let Some(mut m) = reply else { break };
            let hdr = m.unpack_u64(3);
            let (start, len, kind) = (hdr[0] as usize, hdr[1] as usize, hdr[2]);
            let mut sub = m.unpack_i32(len);
            let mut b = pvm.new_buffer();
            if kind == 1 {
                let cmps = bubblesort(&mut sub);
                pvm.proc().compute(cmps as f64 * COST_CMP);
                b.pack_u64(&[start as u64, len as u64, 0]);
                b.pack_i32(&sub);
            } else {
                let pivot = partition(&mut sub);
                pvm.proc().compute(len as f64 * COST_PART);
                b.pack_u64(&[start as u64, len as u64, 1]);
                b.pack_i32(&sub);
                b.pack_u64(&[pivot as u64]);
            }
            pvm.send(0, TAG_RESULT, b);
        }
        0.0
    }
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &QsortParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &QsortParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &QsortParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &QsortParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    let heap = (p.elems * 4 + QUEUE_CAP * 8 + (1 << 20)).next_power_of_two();
    try_run_treadmarks_on(cfg, heap, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &QsortParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &QsortParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &QsortParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_sorts_correctly() {
        let p = QsortParams::tiny();
        let seq = sequential(&p);
        let mut sorted = p.input();
        sorted.sort_unstable();
        assert_eq!(seq.checksum, checksum(&sorted));
        assert!(seq.checksum > 0.0, "sortedness flag must be set");
    }

    #[test]
    fn parallel_versions_sort_correctly() {
        let p = QsortParams::tiny();
        let seq = sequential(&p);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            assert_eq!(t.checksum, seq.checksum, "TMK n={n}");
            assert_eq!(m.checksum, seq.checksum, "PVM n={n}");
        }
    }

    #[test]
    fn treadmarks_needs_more_messages_for_task_migration() {
        let p = QsortParams {
            elems: 8192,
            threshold: 256,
            seed: 7,
        };
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        assert!(
            t.messages > m.messages,
            "TMK {} msgs vs PVM {}",
            t.messages,
            m.messages
        );
    }
}

//! EP — the Embarrassingly Parallel benchmark from the NAS suite.
//!
//! EP generates pairs of Gaussian random deviates with the Marsaglia polar
//! method and tabulates the number of pairs falling in successive square
//! annuli.  The only communication in the parallel version is summing a
//! ten-integer list at the end:
//!
//! * **TreadMarks**: updates to the shared list are protected by a lock.
//! * **PVM**: process 0 receives the list from every other process and sums.
//!
//! Because the communication is negligible relative to the computation, both
//! systems achieve near-linear speedup (Figure 1 of the paper).

use crate::runner::{block_range, try_run_pvm_on, try_run_treadmarks_on, AppRun, SeqRun};
use cluster::{ClusterConfig, RunFailure};
use msgpass::Pvm;
use treadmarks::{ProtocolKind, Tmk};

/// Number of annuli tabulated (as in NAS EP).
pub const BINS: usize = 10;

/// Cost charged per generated pair, calibrated so that the paper-scale run
/// (2^28 pairs) lands near Table 1's sequential time on the simulated
/// workstation.
pub const COST_PER_PAIR: f64 = 0.47e-6;

/// Problem parameters.
#[derive(Debug, Clone)]
pub struct EpParams {
    /// Number of random pairs to generate (a power of two).
    pub pairs: u64,
    /// Seed of the linear congruential generator.
    pub seed: u64,
}

impl EpParams {
    /// Paper-scale problem: the NAS class A size, 2^28 pairs.
    pub fn paper() -> Self {
        EpParams {
            pairs: 1 << 28,
            seed: 271_828_183,
        }
    }

    /// Scaled-down problem used by the default harness preset.
    pub fn scaled() -> Self {
        EpParams {
            pairs: 1 << 22,
            seed: 271_828_183,
        }
    }

    /// Tiny problem for functional tests.
    pub fn tiny() -> Self {
        EpParams {
            pairs: 1 << 12,
            seed: 271_828_183,
        }
    }
}

/// A simple 64-bit linear congruential generator; splittable by jumping to a
/// per-process offset, which is how every process generates its own
/// independent chunk of the pair stream deterministically.
#[derive(Debug, Clone)]
struct Lcg {
    state: u64,
}

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    fn next_unit(&mut self) -> f64 {
        // Uniform in (-1, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// Generate `count` pairs starting from a per-chunk seed and tabulate them.
fn tabulate(seed: u64, chunk: u64, count: u64) -> [i64; BINS] {
    let mut rng = Lcg::new(seed ^ (chunk.wrapping_mul(0x9E3779B97F4A7C15)));
    let mut bins = [0i64; BINS];
    for _ in 0..count {
        let x = rng.next_unit();
        let y = rng.next_unit();
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = (x * f).abs();
            let gy = (y * f).abs();
            let m = gx.max(gy) as usize;
            if m < BINS {
                bins[m] += 1;
            }
        }
    }
    bins
}

fn checksum(bins: &[i64; BINS]) -> f64 {
    bins.iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
        .sum()
}

/// Sequential reference implementation.
pub fn sequential(p: &EpParams) -> SeqRun {
    // The pair stream is split into per-chunk sub-streams exactly as the
    // parallel versions split it, so all versions tabulate identical pairs.
    let chunks = 64u64;
    let per = p.pairs / chunks;
    let mut bins = [0i64; BINS];
    for c in 0..chunks {
        let b = tabulate(p.seed, c, per);
        for i in 0..BINS {
            bins[i] += b[i];
        }
    }
    SeqRun {
        checksum: checksum(&bins),
        time: p.pairs as f64 * COST_PER_PAIR,
    }
}

fn local_bins(p: &EpParams, rank: usize, nprocs: usize) -> ([i64; BINS], f64) {
    let chunks = 64usize;
    let per = p.pairs / chunks as u64;
    let mine = block_range(chunks, nprocs, rank);
    let mut bins = [0i64; BINS];
    let mut work = 0u64;
    for c in mine {
        let b = tabulate(p.seed, c as u64, per);
        for i in 0..BINS {
            bins[i] += b[i];
        }
        work += per;
    }
    (bins, work as f64 * COST_PER_PAIR)
}

/// TreadMarks version: private tabulation, then a lock-protected update of
/// the shared ten-integer list, then a barrier.
pub fn treadmarks_body(tmk: &Tmk, p: &EpParams) -> f64 {
    let shared = tmk.malloc(BINS * 8);
    tmk.barrier(0);
    let (bins, cost) = local_bins(p, tmk.id(), tmk.nprocs());
    tmk.proc().compute(cost);
    tmk.lock_acquire(0);
    #[allow(clippy::needless_range_loop)] // indexing is clearer for the coordinate/matrix access
    for i in 0..BINS {
        let v = tmk.read_i64(shared + i * 8);
        tmk.write_i64(shared + i * 8, v + bins[i]);
    }
    tmk.lock_release(0);
    tmk.barrier(1);
    let mut total = [0i64; BINS];
    for (i, t) in total.iter_mut().enumerate() {
        *t = tmk.read_i64(shared + i * 8);
    }
    tmk.barrier(2);
    // Every process read the final tabulation (as the NAS rules require);
    // only process 0 contributes it to the run checksum.
    if tmk.id() == 0 {
        checksum(&total)
    } else {
        0.0
    }
}

/// Run the TreadMarks version under the default (LRC) protocol.
pub fn treadmarks(nprocs: usize, p: &EpParams) -> AppRun {
    treadmarks_with(nprocs, p, ProtocolKind::Lrc)
}

/// Run the TreadMarks version under the given coherence protocol on the
/// paper's calibrated FDDI testbed.
pub fn treadmarks_with(nprocs: usize, p: &EpParams, protocol: ProtocolKind) -> AppRun {
    treadmarks_on(&ClusterConfig::calibrated_fddi(nprocs), p, protocol)
}

/// Run the TreadMarks version under the given coherence protocol on an
/// arbitrary cluster model (see `cluster::NetPreset` and the scenario
/// subsystem).
pub fn treadmarks_on(cfg: &ClusterConfig, p: &EpParams, protocol: ProtocolKind) -> AppRun {
    try_treadmarks_on(cfg, p, protocol).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`treadmarks_on`]: a structured [`RunFailure`]
/// (deadlock, livelock, or fault-plan crash) comes back as `Err` instead
/// of a panic, so the fuzzing harness can record it and keep going.
pub fn try_treadmarks_on(
    cfg: &ClusterConfig,
    p: &EpParams,
    protocol: ProtocolKind,
) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_treadmarks_on(cfg, 1 << 20, protocol, move |tmk| treadmarks_body(tmk, &p))
}

/// PVM version: private tabulation; process 0 receives every other process's
/// list, sums them, and broadcasts the result.
pub fn pvm_body(pvm: &Pvm, p: &EpParams) -> f64 {
    let (bins, cost) = local_bins(p, pvm.id(), pvm.nprocs());
    pvm.proc().compute(cost);
    let n = pvm.nprocs();
    if pvm.id() == 0 {
        let mut total = bins;
        for _ in 1..n {
            let mut m = pvm.recv(None, 1);
            let other = m.unpack_i64(BINS);
            for i in 0..BINS {
                total[i] += other[i];
            }
        }
        if n > 1 {
            let mut b = pvm.new_buffer();
            b.pack_i64(&total);
            pvm.bcast(2, b);
        }
        checksum(&total)
    } else {
        let mut b = pvm.new_buffer();
        b.pack_i64(&bins);
        pvm.send(0, 1, b);
        let mut m = pvm.recv(Some(0), 2);
        let total = m.unpack_i64(BINS);
        let mut arr = [0i64; BINS];
        arr.copy_from_slice(&total);
        // Slaves verify the broadcast result but contribute zero so the
        // summed run checksum equals the sequential one.
        assert!(checksum(&arr) > 0.0);
        0.0
    }
}

/// Run the PVM version on the paper's calibrated FDDI testbed.
pub fn pvm(nprocs: usize, p: &EpParams) -> AppRun {
    pvm_on(&ClusterConfig::calibrated_fddi(nprocs), p)
}

/// Run the PVM version on an arbitrary cluster model.
pub fn pvm_on(cfg: &ClusterConfig, p: &EpParams) -> AppRun {
    try_pvm_on(cfg, p).unwrap_or_else(|f| panic!("{f}"))
}

/// Fallible variant of [`pvm_on`]; see [`try_treadmarks_on`].
pub fn try_pvm_on(cfg: &ClusterConfig, p: &EpParams) -> Result<AppRun, RunFailure> {
    let p = p.clone();
    try_run_pvm_on(cfg, move |pvm| pvm_body(pvm, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_tabulation() {
        let p = EpParams::tiny();
        let seq = sequential(&p);
        assert!(seq.checksum > 0.0);
        for n in [1, 2, 4] {
            let t = treadmarks(n, &p);
            let m = pvm(n, &p);
            assert_eq!(t.checksum, seq.checksum, "TreadMarks at {n} procs");
            assert_eq!(m.checksum, seq.checksum, "PVM at {n} procs");
        }
    }

    #[test]
    fn speedup_is_near_linear_for_both_systems() {
        let p = EpParams::scaled();
        let seq = sequential(&p);
        let t = treadmarks(8, &p);
        let m = pvm(8, &p);
        assert!(
            t.speedup(seq.time) > 5.5,
            "TMK speedup {}",
            t.speedup(seq.time)
        );
        assert!(
            m.speedup(seq.time) > 6.5,
            "PVM speedup {}",
            m.speedup(seq.time)
        );
    }

    #[test]
    fn communication_is_negligible() {
        let p = EpParams::tiny();
        let t = treadmarks(4, &p);
        let m = pvm(4, &p);
        // A handful of messages, well under a hundred for either system.
        assert!(t.messages < 100);
        assert!(m.messages < 100);
        assert!(t.kilobytes < 50.0);
        assert!(m.kilobytes < 5.0);
    }

    #[test]
    fn sequential_time_scales_with_pairs() {
        let small = sequential(&EpParams::tiny());
        let big = sequential(&EpParams::scaled());
        assert!(big.time > small.time * 100.0);
    }
}

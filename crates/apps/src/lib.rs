//! The nine applications of the SC'95 comparison study, each implemented
//! three times: sequentially, for the TreadMarks-style DSM ([`treadmarks`]),
//! and for PVM-style message passing ([`msgpass`]).
//!
//! | Module | Application | Origin |
//! |--------|-------------|--------|
//! | [`ep`] | Embarrassingly Parallel | NAS |
//! | [`sor`] | Red-Black Successive Over-Relaxation | kernel |
//! | [`is`] | Integer Sort (bucket ranking) | NAS |
//! | [`tsp`] | Traveling Salesman (branch & bound) | kernel |
//! | [`qsort`] | Quicksort with a shared work queue | kernel |
//! | [`water`] | Water molecular dynamics | SPLASH |
//! | [`barnes`] | Barnes-Hut N-body | SPLASH |
//! | [`fft3d`] | 3-D FFT | NAS |
//! | [`ilink`] | Genetic linkage analysis (synthetic pedigree) | ILINK |
//!
//! Every module follows the same shape: a `*Params` struct with `paper()`,
//! `scaled()` and `tiny()` presets, a `sequential` reference returning a
//! [`runner::SeqRun`], and `treadmarks` / `pvm` drivers returning a
//! [`runner::AppRun`] with the time, message and data metrics the paper's
//! tables and figures report.  Computation is charged through a calibrated
//! work model (see README.md §Design notes) so that speedups are deterministic
//! and independent of the host machine.

#![deny(missing_docs)]

pub mod barnes;
pub mod ep;
pub mod fft3d;
pub mod ilink;
pub mod is;
pub mod qsort;
pub mod runner;
pub mod sor;
pub mod tsp;
pub mod water;

pub use runner::{AppRun, SeqRun, System};

/// The applications and input sets of the study, in the order the paper
/// lists them (Figures 1–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// NAS Embarrassingly Parallel (Figure 1).
    Ep,
    /// Red-Black SOR, zero-initialised interior (Figure 2).
    SorZero,
    /// Red-Black SOR, non-zero interior (Figure 3).
    SorNonzero,
    /// Integer Sort, small key range (Figure 4).
    IsSmall,
    /// Integer Sort, large key range (Figure 5).
    IsLarge,
    /// Traveling Salesman Problem (Figure 6).
    Tsp,
    /// Quicksort (Figure 7).
    Qsort,
    /// Water, 288 molecules (Figure 8).
    Water288,
    /// Water, 1728 molecules (Figure 9).
    Water1728,
    /// Barnes-Hut (Figure 10).
    BarnesHut,
    /// 3-D FFT (Figure 11).
    Fft3d,
    /// ILINK genetic linkage analysis (Figure 12).
    Ilink,
}

impl Workload {
    /// All twelve workloads, in figure order.
    pub fn all() -> [Workload; 12] {
        [
            Workload::Ep,
            Workload::SorZero,
            Workload::SorNonzero,
            Workload::IsSmall,
            Workload::IsLarge,
            Workload::Tsp,
            Workload::Qsort,
            Workload::Water288,
            Workload::Water1728,
            Workload::BarnesHut,
            Workload::Fft3d,
            Workload::Ilink,
        ]
    }

    /// Human-readable name used in the harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Ep => "EP",
            Workload::SorZero => "SOR-Zero",
            Workload::SorNonzero => "SOR-Nonzero",
            Workload::IsSmall => "IS-Small",
            Workload::IsLarge => "IS-Large",
            Workload::Tsp => "TSP",
            Workload::Qsort => "QSORT",
            Workload::Water288 => "Water-288",
            Workload::Water1728 => "Water-1728",
            Workload::BarnesHut => "Barnes-Hut",
            Workload::Fft3d => "3D-FFT",
            Workload::Ilink => "ILINK",
        }
    }

    /// Figure number in the paper whose speedup curve this workload
    /// reproduces.
    pub fn figure(&self) -> u32 {
        match self {
            Workload::Ep => 1,
            Workload::SorZero => 2,
            Workload::SorNonzero => 3,
            Workload::IsSmall => 4,
            Workload::IsLarge => 5,
            Workload::Tsp => 6,
            Workload::Qsort => 7,
            Workload::Water288 => 8,
            Workload::Water1728 => 9,
            Workload::BarnesHut => 10,
            Workload::Fft3d => 11,
            Workload::Ilink => 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_list_matches_figures() {
        let all = Workload::all();
        assert_eq!(all.len(), 12);
        for (i, w) in all.iter().enumerate() {
            assert_eq!(w.figure(), i as u32 + 1);
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let mut names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}

//! Cluster configuration and communication cost model.
//!
//! The constants in [`ClusterConfig::calibrated_fddi`] approximate the
//! testbed of the paper: 8 HP-735 workstations on a 100 Mbit/s FDDI ring,
//! user-level UDP (TreadMarks) or direct TCP (PVM), 4 KB virtual memory
//! pages.  README.md §Design notes documents the calibration.

use serde::{Deserialize, Serialize};

/// Virtual-memory page size of the simulated workstations (HP-735: 4 KB).
pub const PAGE_SIZE: usize = 4096;

/// Communication and timing model for a simulated cluster.
///
/// A logical message of `b` payload bytes sent from one process to another is
/// charged as follows:
///
/// * the sender pays [`send_overhead`](Self::send_overhead) on its own clock;
/// * the message is split into `ceil(b / mtu)` datagrams (at least one);
/// * the wire occupancy is `datagrams * fragment_overhead + b / bandwidth`;
///   when [`shared_medium`](Self::shared_medium) is enabled the occupancy is
///   serialised over a single shared medium, modelling FDDI ring saturation;
/// * the message arrives at the receiver `latency + occupancy` after it was
///   put on the wire, and the receiver pays
///   [`recv_overhead`](Self::recv_overhead) when it consumes it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of simulated processes (workstations).
    pub nprocs: usize,
    /// Fixed one-way software + wire latency per logical message, seconds.
    pub latency: f64,
    /// Additional fixed cost per datagram (fragment), seconds.
    pub fragment_overhead: f64,
    /// Effective bandwidth of the interconnect, bytes per second.
    pub bandwidth: f64,
    /// Maximum transfer unit: payload bytes per datagram.
    pub mtu: usize,
    /// CPU cost charged to the sender per logical send, seconds.
    pub send_overhead: f64,
    /// CPU cost charged to the receiver per consumed message, seconds.
    pub recv_overhead: f64,
    /// Whether wire occupancy is serialised over one shared medium
    /// (models the FDDI ring; disable for an idealised full-bisection net).
    pub shared_medium: bool,
}

impl ClusterConfig {
    /// The calibrated model of the paper's testbed (see README.md §Design notes):
    /// 100 Mbit/s FDDI, ~400 µs small-message latency, 8 KB MTU,
    /// ~10.5 MB/s effective bandwidth.
    pub fn calibrated_fddi(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 400e-6,
            fragment_overhead: 150e-6,
            bandwidth: 10.5e6,
            mtu: 8 * 1024,
            send_overhead: 80e-6,
            recv_overhead: 80e-6,
            shared_medium: true,
        }
    }

    /// An idealised network with negligible cost.  Used by functional tests
    /// that only care about answers, not about performance modelling.
    pub fn ideal(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 1e-9,
            fragment_overhead: 0.0,
            bandwidth: 1e12,
            mtu: usize::MAX / 2,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            shared_medium: false,
        }
    }

    /// Number of datagrams needed for a payload of `bytes` bytes.
    pub fn datagrams_for(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu) as u64
        }
    }

    /// Wire occupancy (seconds) of a payload of `bytes` bytes: per-fragment
    /// overhead plus serialisation time at the configured bandwidth.
    pub fn occupancy(&self, bytes: usize) -> f64 {
        self.datagrams_for(bytes) as f64 * self.fragment_overhead + bytes as f64 / self.bandwidth
    }

    /// End-to-end one-way cost of a message that finds the medium idle.
    pub fn one_way(&self, bytes: usize) -> f64 {
        self.latency + self.occupancy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counting() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        assert_eq!(cfg.datagrams_for(0), 1);
        assert_eq!(cfg.datagrams_for(1), 1);
        assert_eq!(cfg.datagrams_for(8 * 1024), 1);
        assert_eq!(cfg.datagrams_for(8 * 1024 + 1), 2);
        assert_eq!(cfg.datagrams_for(64 * 1024), 8);
    }

    #[test]
    fn occupancy_monotone_in_size() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        let mut last = 0.0;
        for b in [0usize, 64, 4096, 8192, 100_000, 1 << 20] {
            let o = cfg.occupancy(b);
            assert!(o >= last);
            last = o;
        }
    }

    #[test]
    fn one_way_includes_latency() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        assert!(cfg.one_way(0) >= cfg.latency);
        // A 1 MB transfer is dominated by bandwidth, not latency.
        let big = cfg.one_way(1 << 20);
        assert!(big > (1 << 20) as f64 / cfg.bandwidth);
        assert!(big < 2.0 * ((1 << 20) as f64 / cfg.bandwidth) + 1.0);
    }

    #[test]
    fn ideal_network_is_cheap() {
        let cfg = ClusterConfig::ideal(4);
        assert!(cfg.one_way(1 << 20) < 1e-3);
    }
}

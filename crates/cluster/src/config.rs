//! Cluster configuration and communication cost model.
//!
//! The constants in [`ClusterConfig::calibrated_fddi`] approximate the
//! testbed of the paper: 8 HP-735 workstations on a 100 Mbit/s FDDI ring,
//! user-level UDP (TreadMarks) or direct TCP (PVM), 4 KB virtual memory
//! pages.  docs/ARCHITECTURE.md documents the calibration.
//!
//! The paper measured exactly one interconnect; this module also models the
//! *what-if* networks the study's conclusions are most often asked about:
//! a named preset per interconnect ([`NetPreset`]), per-field overrides on
//! top of a preset ([`Overrides`]), and the combination of the two as a
//! comparable identity ([`NetModel`]) that the reproduction harness keys
//! its run matrices and sweeps on.

use crate::analysis::AnalysisLevel;
use crate::fault::FaultPlan;
use crate::obs::ObsLevel;
use serde::{Deserialize, Serialize};

/// Virtual-memory page size of the simulated workstations (HP-735: 4 KB).
pub const PAGE_SIZE: usize = 4096;

/// Communication and timing model for a simulated cluster.
///
/// A logical message of `b` payload bytes sent from one process to another is
/// charged as follows:
///
/// * the sender pays [`send_overhead`](Self::send_overhead) on its own clock;
/// * the message is split into `ceil(b / mtu)` datagrams (at least one);
/// * the wire occupancy is `datagrams * fragment_overhead + b / bandwidth`;
///   when [`shared_medium`](Self::shared_medium) is enabled the occupancy is
///   serialised over a single shared medium, modelling FDDI ring saturation;
/// * the message arrives at the receiver `latency + occupancy` after it was
///   put on the wire, and the receiver pays
///   [`recv_overhead`](Self::recv_overhead) when it consumes it.
///
/// # Example
///
/// Pick an interconnect preset, tweak one knob, and cost a message:
///
/// ```
/// use cluster::{ClusterConfig, NetPreset};
///
/// // The paper's testbed: 8 workstations on the 100 Mbit/s FDDI ring.
/// let fddi = ClusterConfig::calibrated_fddi(8);
/// // The same cluster on switched 155 Mbit/s ATM, via the preset registry.
/// let atm = NetPreset::Atm.config(8);
/// // ATM moves a 64 KB page set faster than the ring...
/// assert!(atm.one_way(64 * 1024) < fddi.one_way(64 * 1024));
/// // ...and, being switched, does not serialise senders over one medium.
/// assert!(fddi.shared_medium && !atm.shared_medium);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of simulated processes (workstations).
    pub nprocs: usize,
    /// Fixed one-way software + wire latency per logical message, seconds.
    pub latency: f64,
    /// Additional fixed cost per datagram (fragment), seconds.
    pub fragment_overhead: f64,
    /// Effective bandwidth of the interconnect, bytes per second.
    pub bandwidth: f64,
    /// Maximum transfer unit: payload bytes per datagram.
    pub mtu: usize,
    /// CPU cost charged to the sender per logical send, seconds.
    pub send_overhead: f64,
    /// CPU cost charged to the receiver per consumed message, seconds.
    pub recv_overhead: f64,
    /// Whether wire occupancy is serialised over one shared medium
    /// (models the FDDI ring; disable for an idealised full-bisection net).
    pub shared_medium: bool,
    /// Observability level of the run (defaults to [`ObsLevel::Off`] in
    /// every preset).  Not part of the network cost model: recording only
    /// reads the virtual clock, so no level can change reported times or
    /// counters.
    #[serde(default)]
    pub obs: ObsLevel,
    /// Run-time analysis level (defaults to [`AnalysisLevel::Off`] in every
    /// preset).  Like [`obs`](Self::obs) it is not part of the cost model:
    /// an analysis only observes the run, so no level can change reported
    /// times, counters or checksums.
    #[serde(default)]
    pub analysis: AnalysisLevel,
    /// Deterministic fault-injection plan (defaults to the inert empty plan
    /// in every preset).  A non-empty plan *is* part of the cost model: its
    /// injected delays and retransmitted datagrams change reported times
    /// and counters — bit-reproducibly, as a pure function of
    /// `(plan, seed)`.  See [`crate::fault`].
    #[serde(default)]
    pub fault: FaultPlan,
    /// Seed of the arbiter's tie-break stream.  `0` (the default in every
    /// preset) breaks virtual-time ties by rank, bit-identical to the
    /// pre-fault engine; any other value breaks ties by a seeded draw, so
    /// one scenario explores many legal schedules.
    #[serde(default)]
    pub sched_seed: u64,
    /// Optional cap on the number of seeded tie-break decisions: after this
    /// many draws the arbiter falls back to rank order.  `None` means
    /// unlimited.  The shrinker bisects this to find the minimal seeded
    /// prefix a finding needs.
    #[serde(default)]
    pub tie_limit: Option<u64>,
    /// Number of scheduler islands the conservative PDES scheduler
    /// partitions the processes into (contiguous rank blocks, each with its
    /// own event heap; see `cluster::sched::IslandSched`).  An execution
    /// strategy, **not** part of the cost model: every width produces
    /// bit-identical output, asserted against the flat reference arbiter
    /// under the `oracle-checks` feature.  `0` is normalised to `1`; widths
    /// above `nprocs` clamp to `nprocs`.
    #[serde(default)]
    pub islands: usize,
    /// Number of OS threads allowed to advance ranks concurrently inside a
    /// horizon window (see `cluster::window`).  Like
    /// [`islands`](Self::islands) this is an execution strategy, **not**
    /// part of the cost model: every width produces bit-identical output,
    /// asserted against the serial reference executor under the
    /// `oracle-checks` feature.  `0` and `1` both select the serial engine;
    /// values `>= 2` enable the windowed engine when the configuration is
    /// eligible (no seeded tie-breaking, no reordering/crash faults, no
    /// run-time analysis).
    #[serde(default)]
    pub island_threads: usize,
}

impl ClusterConfig {
    /// The calibrated model of the paper's testbed (see README.md §Design notes):
    /// 100 Mbit/s FDDI, ~400 µs small-message latency, 8 KB MTU,
    /// ~10.5 MB/s effective bandwidth.
    pub fn calibrated_fddi(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 400e-6,
            fragment_overhead: 150e-6,
            bandwidth: 10.5e6,
            mtu: 8 * 1024,
            send_overhead: 80e-6,
            recv_overhead: 80e-6,
            shared_medium: true,
            obs: ObsLevel::Off,
            analysis: AnalysisLevel::Off,
            fault: FaultPlan::default(),
            sched_seed: 0,
            tie_limit: None,
            islands: 1,
            island_threads: 1,
        }
    }

    /// A 10 Mbit/s shared-bus Ethernet (10BASE-T era, CSMA/CD): the
    /// commodity alternative to the paper's FDDI ring.  Same workstation
    /// software stack (per-message and per-fragment CPU costs match the
    /// FDDI calibration), but ~1.1 MB/s effective bandwidth, the classic
    /// 1500-byte MTU, and a slightly longer small-message latency; the bus
    /// is a shared medium, so concurrent senders serialise just as on the
    /// ring — only nine times slower per byte.
    pub fn ethernet_10mbit(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 500e-6,
            fragment_overhead: 150e-6,
            bandwidth: 1.1e6,
            mtu: 1500,
            send_overhead: 80e-6,
            recv_overhead: 80e-6,
            shared_medium: true,
            obs: ObsLevel::Off,
            analysis: AnalysisLevel::Off,
            fault: FaultPlan::default(),
            sched_seed: 0,
            tie_limit: None,
            islands: 1,
            island_threads: 1,
        }
    }

    /// A 155 Mbit/s switched ATM fabric (OC-3): the upgrade path the
    /// mid-90s NOW projects actually took.  ~16 MB/s effective bandwidth
    /// after SONET framing and the AAL5 cell tax, the RFC 1626 default
    /// 9180-byte IP MTU, a shorter small-message latency (no token
    /// rotation), hardware segmentation (cheaper per-fragment cost) — and
    /// crucially **no shared medium**: the switch gives every
    /// source-destination pair its own path, so senders no longer
    /// serialise.
    pub fn atm_155mbit(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 250e-6,
            fragment_overhead: 100e-6,
            bandwidth: 16.0e6,
            mtu: 9180,
            send_overhead: 80e-6,
            recv_overhead: 80e-6,
            shared_medium: false,
            obs: ObsLevel::Off,
            analysis: AnalysisLevel::Off,
            fault: FaultPlan::default(),
            sched_seed: 0,
            tie_limit: None,
            islands: 1,
            island_threads: 1,
        }
    }

    /// An idealised network with negligible cost.  Used by functional tests
    /// that only care about answers, not about performance modelling.
    pub fn ideal(nprocs: usize) -> Self {
        ClusterConfig {
            nprocs,
            latency: 1e-9,
            fragment_overhead: 0.0,
            bandwidth: 1e12,
            mtu: usize::MAX / 2,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            shared_medium: false,
            obs: ObsLevel::Off,
            analysis: AnalysisLevel::Off,
            fault: FaultPlan::default(),
            sched_seed: 0,
            tie_limit: None,
            islands: 1,
            island_threads: 1,
        }
    }

    /// Number of datagrams needed for a payload of `bytes` bytes.
    pub fn datagrams_for(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu) as u64
        }
    }

    /// Wire occupancy (seconds) of a payload of `bytes` bytes: per-fragment
    /// overhead plus serialisation time at the configured bandwidth.
    pub fn occupancy(&self, bytes: usize) -> f64 {
        self.datagrams_for(bytes) as f64 * self.fragment_overhead + bytes as f64 / self.bandwidth
    }

    /// End-to-end one-way cost of a message that finds the medium idle.
    pub fn one_way(&self, bytes: usize) -> f64 {
        self.latency + self.occupancy(bytes)
    }
}

/// The named interconnect presets the scenario subsystem can select.
///
/// Each preset is a calibrated [`ClusterConfig`] constructor; the names are
/// what `reproduce --net <name>` and the `net = "<name>"` key of a scenario
/// file accept (see [`crate::scenario`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetPreset {
    /// The paper's testbed: 100 Mbit/s FDDI ring
    /// ([`ClusterConfig::calibrated_fddi`]).
    Fddi,
    /// 10 Mbit/s shared-bus Ethernet
    /// ([`ClusterConfig::ethernet_10mbit`]).
    Ethernet,
    /// 155 Mbit/s switched ATM ([`ClusterConfig::atm_155mbit`]).
    Atm,
    /// Idealised full-bisection network with negligible cost
    /// ([`ClusterConfig::ideal`]).
    Ideal,
}

impl NetPreset {
    /// Every preset, in documentation order.
    pub fn all() -> [NetPreset; 4] {
        [
            NetPreset::Fddi,
            NetPreset::Ethernet,
            NetPreset::Atm,
            NetPreset::Ideal,
        ]
    }

    /// The canonical name: what the CLI and scenario files print and parse.
    pub fn name(&self) -> &'static str {
        match self {
            NetPreset::Fddi => "fddi",
            NetPreset::Ethernet => "ethernet",
            NetPreset::Atm => "atm",
            NetPreset::Ideal => "ideal",
        }
    }

    /// Build the preset's calibrated configuration for `nprocs` processes.
    pub fn config(&self, nprocs: usize) -> ClusterConfig {
        match self {
            NetPreset::Fddi => ClusterConfig::calibrated_fddi(nprocs),
            NetPreset::Ethernet => ClusterConfig::ethernet_10mbit(nprocs),
            NetPreset::Atm => ClusterConfig::atm_155mbit(nprocs),
            NetPreset::Ideal => ClusterConfig::ideal(nprocs),
        }
    }
}

impl std::fmt::Display for NetPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for NetPreset {
    type Err = String;

    /// Parse a preset name; long aliases (`ethernet_10mbit`, `atm_155mbit`,
    /// `fddi_100mbit`) are accepted alongside the canonical short names.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fddi" | "fddi_100mbit" => Ok(NetPreset::Fddi),
            "ethernet" | "ether" | "ethernet_10mbit" => Ok(NetPreset::Ethernet),
            "atm" | "atm_155mbit" => Ok(NetPreset::Atm),
            "ideal" | "full-bisection" => Ok(NetPreset::Ideal),
            other => Err(format!(
                "unknown net preset '{other}'; known presets: fddi, ethernet, atm, ideal"
            )),
        }
    }
}

/// Per-field overrides applied on top of a [`NetPreset`]: every `Some`
/// replaces the preset's value, every `None` keeps it.  This is the
/// `[overrides]` table of a scenario file and the lever the sensitivity
/// sweeps turn (`sweep --vary bandwidth|latency` scales exactly one field).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Overrides {
    /// Replace [`ClusterConfig::latency`].
    pub latency: Option<f64>,
    /// Replace [`ClusterConfig::fragment_overhead`].
    pub fragment_overhead: Option<f64>,
    /// Replace [`ClusterConfig::bandwidth`].
    pub bandwidth: Option<f64>,
    /// Replace [`ClusterConfig::mtu`].
    pub mtu: Option<usize>,
    /// Replace [`ClusterConfig::send_overhead`].
    pub send_overhead: Option<f64>,
    /// Replace [`ClusterConfig::recv_overhead`].
    pub recv_overhead: Option<f64>,
    /// Replace [`ClusterConfig::shared_medium`].
    pub shared_medium: Option<bool>,
}

impl Overrides {
    /// True if no field is overridden.
    ///
    /// (This and the other `Overrides` walkers destructure the struct
    /// exhaustively, so adding a field is a compile error here rather than
    /// a silently-ignored override.)
    pub fn is_empty(&self) -> bool {
        let Overrides {
            latency,
            fragment_overhead,
            bandwidth,
            mtu,
            send_overhead,
            recv_overhead,
            shared_medium,
        } = self;
        latency.is_none()
            && fragment_overhead.is_none()
            && bandwidth.is_none()
            && mtu.is_none()
            && send_overhead.is_none()
            && recv_overhead.is_none()
            && shared_medium.is_none()
    }

    /// Apply every `Some` field to `cfg`.
    pub fn apply(&self, cfg: &mut ClusterConfig) {
        let Overrides {
            latency,
            fragment_overhead,
            bandwidth,
            mtu,
            send_overhead,
            recv_overhead,
            shared_medium,
        } = *self;
        if let Some(v) = latency {
            cfg.latency = v;
        }
        if let Some(v) = fragment_overhead {
            cfg.fragment_overhead = v;
        }
        if let Some(v) = bandwidth {
            cfg.bandwidth = v;
        }
        if let Some(v) = mtu {
            cfg.mtu = v;
        }
        if let Some(v) = send_overhead {
            cfg.send_overhead = v;
        }
        if let Some(v) = recv_overhead {
            cfg.recv_overhead = v;
        }
        if let Some(v) = shared_medium {
            cfg.shared_medium = v;
        }
    }
}

impl PartialEq for Overrides {
    fn eq(&self, other: &Self) -> bool {
        // Floats are compared by bit pattern: an override identity must be
        // usable as a run-matrix key, where NaN != NaN and -0.0 != 0.0
        // semantics would silently merge or split entries.
        let bits = |v: Option<f64>| v.map(f64::to_bits);
        let Overrides {
            latency,
            fragment_overhead,
            bandwidth,
            mtu,
            send_overhead,
            recv_overhead,
            shared_medium,
        } = *other;
        bits(self.latency) == bits(latency)
            && bits(self.fragment_overhead) == bits(fragment_overhead)
            && bits(self.bandwidth) == bits(bandwidth)
            && self.mtu == mtu
            && bits(self.send_overhead) == bits(send_overhead)
            && bits(self.recv_overhead) == bits(recv_overhead)
            && self.shared_medium == shared_medium
    }
}

impl Eq for Overrides {}

/// The comparable identity of an interconnect model: a preset plus the
/// overrides applied to it.  [`NetModel`]s key run matrices and sweep
/// points, so equality is exact (floats by bit pattern, via [`Overrides`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetModel {
    /// The base preset.
    pub preset: NetPreset,
    /// Field overrides applied on top of it.
    pub overrides: Overrides,
}

impl NetModel {
    /// A bare preset with no overrides.
    pub fn preset(preset: NetPreset) -> Self {
        NetModel {
            preset,
            overrides: Overrides::default(),
        }
    }

    /// Materialise the configuration for `nprocs` processes.
    pub fn config(&self, nprocs: usize) -> ClusterConfig {
        let mut cfg = self.preset.config(nprocs);
        self.overrides.apply(&mut cfg);
        cfg
    }

    /// Compact human-readable label: the preset name, plus any overridden
    /// fields as `key=value` pairs (`fddi`, `atm{bandwidth=8e6}`).  Values
    /// print in Rust's shortest-round-trip float form, so equal models
    /// always label identically.
    pub fn label(&self) -> String {
        let Overrides {
            latency,
            fragment_overhead,
            bandwidth,
            mtu,
            send_overhead,
            recv_overhead,
            shared_medium,
        } = self.overrides;
        let mut parts: Vec<String> = Vec::new();
        if let Some(v) = latency {
            parts.push(format!("latency={v}"));
        }
        if let Some(v) = fragment_overhead {
            parts.push(format!("fragment_overhead={v}"));
        }
        if let Some(v) = bandwidth {
            parts.push(format!("bandwidth={v}"));
        }
        if let Some(v) = mtu {
            parts.push(format!("mtu={v}"));
        }
        if let Some(v) = send_overhead {
            parts.push(format!("send_overhead={v}"));
        }
        if let Some(v) = recv_overhead {
            parts.push(format!("recv_overhead={v}"));
        }
        if let Some(v) = shared_medium {
            parts.push(format!("shared_medium={v}"));
        }
        if parts.is_empty() {
            self.preset.name().to_string()
        } else {
            format!("{}{{{}}}", self.preset.name(), parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counting() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        assert_eq!(cfg.datagrams_for(0), 1);
        assert_eq!(cfg.datagrams_for(1), 1);
        assert_eq!(cfg.datagrams_for(8 * 1024), 1);
        assert_eq!(cfg.datagrams_for(8 * 1024 + 1), 2);
        assert_eq!(cfg.datagrams_for(64 * 1024), 8);
    }

    #[test]
    fn occupancy_monotone_in_size() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        let mut last = 0.0;
        for b in [0usize, 64, 4096, 8192, 100_000, 1 << 20] {
            let o = cfg.occupancy(b);
            assert!(o >= last);
            last = o;
        }
    }

    #[test]
    fn one_way_includes_latency() {
        let cfg = ClusterConfig::calibrated_fddi(8);
        assert!(cfg.one_way(0) >= cfg.latency);
        // A 1 MB transfer is dominated by bandwidth, not latency.
        let big = cfg.one_way(1 << 20);
        assert!(big > (1 << 20) as f64 / cfg.bandwidth);
        assert!(big < 2.0 * ((1 << 20) as f64 / cfg.bandwidth) + 1.0);
    }

    #[test]
    fn ideal_network_is_cheap() {
        let cfg = ClusterConfig::ideal(4);
        assert!(cfg.one_way(1 << 20) < 1e-3);
    }

    #[test]
    fn preset_ordering_matches_link_speeds() {
        // A bulk transfer orders the interconnects exactly by link speed:
        // Ethernet slower than FDDI, FDDI slower than ATM, ATM slower than
        // the ideal net.
        let bytes = 1 << 20;
        let ethernet = ClusterConfig::ethernet_10mbit(8).one_way(bytes);
        let fddi = ClusterConfig::calibrated_fddi(8).one_way(bytes);
        let atm = ClusterConfig::atm_155mbit(8).one_way(bytes);
        let ideal = ClusterConfig::ideal(8).one_way(bytes);
        assert!(ethernet > fddi && fddi > atm && atm > ideal);
    }

    #[test]
    fn preset_names_round_trip_through_parsing() {
        for preset in NetPreset::all() {
            assert_eq!(preset.name().parse::<NetPreset>(), Ok(preset));
            assert_eq!(preset.to_string(), preset.name());
            assert_eq!(preset.config(4).nprocs, 4);
        }
        assert_eq!("ethernet_10mbit".parse(), Ok(NetPreset::Ethernet));
        assert_eq!("ATM_155MBIT".parse(), Ok(NetPreset::Atm));
        assert!("token-ring".parse::<NetPreset>().is_err());
    }

    #[test]
    fn overrides_apply_only_set_fields() {
        let overrides = Overrides {
            bandwidth: Some(8e6),
            shared_medium: Some(false),
            ..Overrides::default()
        };
        let model = NetModel {
            preset: NetPreset::Fddi,
            overrides,
        };
        let base = NetPreset::Fddi.config(8);
        let cfg = model.config(8);
        assert_eq!(cfg.bandwidth, 8e6);
        assert!(!cfg.shared_medium);
        assert_eq!(cfg.latency, base.latency);
        assert_eq!(cfg.mtu, base.mtu);
        assert!(!overrides.is_empty() && Overrides::default().is_empty());
    }

    #[test]
    fn net_model_labels_and_equality() {
        let plain = NetModel::preset(NetPreset::Atm);
        assert_eq!(plain.label(), "atm");
        let tweaked = NetModel {
            preset: NetPreset::Atm,
            overrides: Overrides {
                bandwidth: Some(8e6),
                ..Overrides::default()
            },
        };
        assert_eq!(tweaked.label(), "atm{bandwidth=8000000}");
        assert_ne!(plain, tweaked);
        assert_eq!(tweaked, tweaked);
    }
}

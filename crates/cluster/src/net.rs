//! The transport layer: tagged messages, per-process mailboxes, the
//! shared-medium cost model, and the deterministic virtual-time arbiter.
//!
//! Every logical message is fragmented into MTU-sized datagrams for cost and
//! statistics purposes (the paper's TreadMarks numbers count UDP datagrams),
//! but is delivered to the destination mailbox as a single unit — exactly the
//! behaviour of a user-level reliable protocol on top of UDP, or of a TCP
//! stream carrying one PVM message.
//!
//! All shared state — mailboxes, the shared-medium reservation, and the
//! per-process scheduler states — lives behind one lock, and every
//! interaction goes through the conservative arbiter in `crate::sched`:
//! a process may transmit, consume, or observe messages only while it holds
//! the minimum virtual time among runnable processes.  Medium-acquisition
//! order is therefore a pure function of virtual timestamps (ties broken by
//! rank), never of OS scheduling, and two runs of the same program produce
//! byte-identical times and counters.

use crate::config::ClusterConfig;
use crate::fault::{FaultKind, FaultState, FaultStats};
use crate::obs::{self, Event, EventKind, ObsLevel};
use crate::sched::{wait_graph, Decision, IslandSched, PState};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

/// Message tags distinguish independent conversations between two processes.
pub type Tag = u32;

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending process rank.
    pub src: usize,
    /// Destination process rank.
    pub dst: usize,
    /// Application-chosen tag.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Bytes,
    /// Virtual time at which the message arrived at the destination.
    pub arrival: f64,
    /// Number of transport datagrams this message occupied on the wire.
    pub datagrams: u64,
}

/// Panic payload thrown in *peer* processes when the cluster aborts because
/// another process panicked.  `Cluster::run` downcasts on this to tell such
/// secondary panics apart from the originating one, so the root cause is
/// what propagates — a typed marker, not a fragile message-prefix match.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PeerAbort(pub(crate) usize);

/// Panic payload of the virtual-time deadlock detector: the full report
/// (wait graph plus fault context).  `Cluster::try_run` downcasts on this to
/// return a structured [`RunFailure::Deadlock`] instead of crashing the
/// harness.
#[derive(Debug, Clone)]
pub(crate) struct DeadlockAbort(pub(crate) String);

/// Panic payload of the livelock detector; see [`DeadlockAbort`].
#[derive(Debug, Clone)]
pub(crate) struct LivelockAbort(pub(crate) String);

/// Panic payload a process thread unwinds with when its fault-plan crash
/// point fires: not an error in the program under test, but the injected
/// fault itself.  The fields are never read by the engine (the crash is
/// recorded in `SimState` before the unwind) — they exist so a panic hook
/// that `Debug`-prints an escaped payload names the crash.
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)]
pub(crate) struct CrashPayload {
    /// Rank of the crashed process.
    pub(crate) rank: usize,
    /// Virtual time at which the crash fired, seconds.
    pub(crate) at: f64,
}

/// Structured failure of a cluster run, returned by `Cluster::try_run`
/// instead of panicking the harness, so the fuzzer can classify failures as
/// findings rather than aborting the matrix.
///
/// `Display` renders the full human report; for deadlock and livelock it
/// begins with the same `virtual-time deadlock`/`virtual-time livelock`
/// line the panicking `Cluster::run` path has always produced.
#[derive(Debug, Clone)]
pub enum RunFailure {
    /// Every live process was blocked in a receive with no deliverable
    /// message.  The report carries the full wait graph plus the fault
    /// context (crashed peers, fault-plan partitions), so a deadlock caused
    /// by an injected crash or partition names its cause.
    Deadlock(String),
    /// The futile-grant livelock detector fired; the report carries the
    /// wait graph.
    Livelock(String),
    /// Fault-plan crashes killed these `(rank, virtual_time)` processes and
    /// the survivors ran to completion: there is no full result set to
    /// report, but nothing deadlocked either.
    Crashed(Vec<(usize, f64)>),
}

impl RunFailure {
    /// Stable one-word classification (`deadlock` / `livelock` / `crash`)
    /// used in fuzz reports.
    pub fn kind(&self) -> &'static str {
        match self {
            RunFailure::Deadlock(_) => "deadlock",
            RunFailure::Livelock(_) => "livelock",
            RunFailure::Crashed(_) => "crash",
        }
    }
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Deadlock(report) | RunFailure::Livelock(report) => f.write_str(report),
            RunFailure::Crashed(ranks) => {
                write!(f, "process crash:")?;
                for (rank, at) in ranks {
                    write!(f, " rank {rank} died at t={at:.6} by fault plan;")?;
                }
                write!(f, " survivors completed")
            }
        }
    }
}

/// Why the simulation was torn down early.  Shared with the windowed
/// engine (`crate::window`), which raises the identical payloads.
#[derive(Debug, Clone)]
pub(crate) enum Abort {
    /// A process thread panicked; peers must fail fast instead of waiting
    /// for messages the dead process will never send.
    Panic(usize),
    /// Every live process was blocked in a receive with no deliverable
    /// message; the string is the rendered wait graph.
    Deadlock(String),
    /// The token was granted this many consecutive times without a single
    /// message being transmitted or consumed anywhere in the cluster: some
    /// poll loop is spinning without ever making progress.  The string is
    /// the rendered wait graph.
    Livelock(String),
}

/// Consecutive zero-progress grants after which the arbiter declares a
/// livelock.  A runnable poller is granted on every futile observation, so
/// a poll loop that can never succeed (e.g. one that never advances its
/// clock past the reply it is waiting for) reaches this in well under a
/// second of wall time, while any legitimate program transmits or consumes
/// a message within a bounded — and vastly smaller — number of scheduling
/// points.  The count is deterministic, so the resulting panic is too.
/// (Unit tests use a small limit so the detector's regression test is
/// instant.)
#[cfg(not(test))]
pub(crate) const LIVELOCK_GRANT_LIMIT: u64 = 10_000_000;
#[cfg(test)]
pub(crate) const LIVELOCK_GRANT_LIMIT: u64 = 100_000;

/// Unwind the calling process thread with the typed payload matching the
/// abort cause.  Shared by both engines.
pub(crate) fn panic_aborted(abort: &Abort) -> ! {
    match abort {
        Abort::Panic(who) => std::panic::panic_any(PeerAbort(*who)),
        Abort::Deadlock(graph) => std::panic::panic_any(DeadlockAbort(graph.clone())),
        Abort::Livelock(graph) => std::panic::panic_any(LivelockAbort(graph.clone())),
    }
}

/// Everything the simulation shares between process threads, guarded by a
/// single lock: exactly one process interacts with it at a time anyway (the
/// token discipline), so finer-grained locking would buy nothing.
struct SimState {
    /// Per-process incoming-message queues.
    mailboxes: Vec<VecDeque<Message>>,
    /// Scheduler state of every process, with the minimum-key parked
    /// process maintained incrementally per island (no per-interaction O(n)
    /// scan); see [`IslandSched`].
    arb: IslandSched,
    /// Virtual time until which the shared medium is busy (FDDI ring model).
    medium_free_at: f64,
    /// Consecutive grants since the last message transmission or
    /// consumption; reset to zero on every mailbox push or removal.  When
    /// it reaches [`LIVELOCK_GRANT_LIMIT`] the cluster is spinning without
    /// progress and is torn down with a diagnostic.
    futile_grants: u64,
    /// Set when the cluster is torn down early.
    aborted: Option<Abort>,
    /// Runtime fault-injection state; `None` when the plan is empty, so the
    /// pre-fault transmit path is preserved byte for byte.
    faults: Option<FaultState>,
    /// `(rank, virtual_time)` of every fault-plan crash that fired.
    crashed: Vec<(usize, f64)>,
    /// Central observability event stream (message sends, consumes, arbiter
    /// grants), recorded under this lock — so in deterministic token order —
    /// when the config asks for [`ObsLevel::Trace`]; `None` otherwise.
    trace: Option<Vec<Event>>,
}

/// The shared state of the simulated network.
///
/// Facade over two engines: the serial reference engine (this module — one
/// lock, one grant at a time) and the threaded windowed engine
/// (`crate::window`), selected at construction when the configuration is
/// [eligible](crate::window::eligible) and `cfg.island_threads >= 2`.  Both
/// produce bit-identical output; the serial engine remains the semantics of
/// record and the `oracle-checks` reference executor.
pub struct NetworkCore {
    cfg: ClusterConfig,
    state: Mutex<SimState>,
    /// One wake-up channel per process; a process sleeps on its own condvar
    /// while parked or blocked and is woken when granted (or on abort).
    wake: Vec<Condvar>,
    /// The threaded engine, when eligible; every primitive delegates to it.
    windowed: Option<crate::window::WindowedCore>,
}

impl NetworkCore {
    /// Create the network for `cfg.nprocs` processes.  Every process starts
    /// in the `Running` state: the first interaction of each parks it, and
    /// the arbiter issues the first grant once all have arrived.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.nprocs;
        let tracing = cfg.obs == ObsLevel::Trace;
        let faults = FaultState::new(&cfg.fault, n);
        let arb = IslandSched::new(n, cfg.islands, cfg.sched_seed, cfg.tie_limit, cfg.latency);
        let windowed =
            crate::window::eligible(&cfg).then(|| crate::window::WindowedCore::new(cfg.clone()));
        NetworkCore {
            windowed,
            cfg,
            state: Mutex::new(SimState {
                mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
                arb,
                medium_free_at: 0.0,
                futile_grants: 0,
                aborted: None,
                faults,
                crashed: Vec::new(),
                trace: if tracing { Some(Vec::new()) } else { None },
            }),
            wake: (0..n).map(|_| Condvar::new()).collect(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Mark the cluster as aborted because process `who` panicked, and wake
    /// every parked or blocked process so it can fail fast.
    pub fn abort(&self, who: usize) {
        if let Some(w) = &self.windowed {
            return w.abort(who);
        }
        let mut st = self.state.lock();
        if st.aborted.is_none() {
            st.aborted = Some(Abort::Panic(who));
        }
        st.arb.set(who, PState::Finished);
        for cv in &self.wake {
            cv.notify_all();
        }
    }

    /// Mark process `id` as finished and hand the token to the next
    /// runnable process.  Called when the process closure returns.
    pub fn finish(&self, id: usize) {
        if let Some(w) = &self.windowed {
            return w.finish(id);
        }
        let mut st = self.state.lock();
        st.arb.set(id, PState::Finished);
        if st.aborted.is_none() {
            self.dispatch(&mut st);
        }
    }

    /// Tear down process `id` because its fault-plan crash point fired at
    /// virtual time `at`: record the crash, stamp it into the trace, mark
    /// the process finished and hand the token on.  The process layer then
    /// unwinds its thread with a [`CrashPayload`] — the crash kills only the
    /// one process; peers run on (and may then deadlock, which the detector
    /// reports naming this crash as context).
    pub(crate) fn crash(&self, id: usize, at: f64) {
        if let Some(w) = &self.windowed {
            return w.crash(id, at);
        }
        let mut st = self.state.lock();
        st.crashed.push((id, at));
        if let Some(f) = st.faults.as_mut() {
            f.stats.crashes += 1;
        }
        if let Some(tr) = st.trace.as_mut() {
            tr.push(Event {
                t_ns: obs::ns(at),
                rank: id as u32,
                kind: EventKind::Fault {
                    kind: FaultKind::Crash,
                    dst: id as u32,
                    delay_ns: 0,
                },
            });
        }
        st.arb.set(id, PState::Finished);
        if st.aborted.is_none() {
            self.dispatch(&mut st);
        }
    }

    /// `(rank, virtual_time)` of every fault-plan crash that has fired.
    pub(crate) fn crashed(&self) -> Vec<(usize, f64)> {
        if let Some(w) = &self.windowed {
            return w.crashed();
        }
        self.state.lock().crashed.clone()
    }

    /// Counters of the faults injected so far, with the arbiter's seeded
    /// tie-break draws folded in.  All zero for an empty plan under seed 0.
    pub fn fault_stats(&self) -> FaultStats {
        if let Some(w) = &self.windowed {
            return w.fault_stats();
        }
        let st = self.state.lock();
        let mut stats = st.faults.as_ref().map(|f| f.stats).unwrap_or_default();
        stats.tie_breaks = st.arb.tie_draws();
        stats
    }

    /// Lines appended to a deadlock/livelock report naming the fault context:
    /// which peers were crashed by the plan, and which plan partitions could
    /// have blocked delivery — so an injected-fault deadlock names its cause
    /// instead of presenting as a protocol bug.
    fn fault_context(st: &SimState) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(rank, at) in &st.crashed {
            let _ = writeln!(
                out,
                "  fault context: process {rank} crashed by fault plan at t={at:.6}"
            );
        }
        if let Some(f) = &st.faults {
            for p in &f.plan().partitions {
                let _ = writeln!(out, "  fault context: fault-plan partition {p}");
            }
        }
        out
    }

    /// True when the wait-graph diagnostic should also go to stderr: under an
    /// active fault plan or a nonzero schedule seed, failures are *expected*
    /// findings consumed structurally by the fuzzer, and printing each one
    /// would drown the fuzz report.
    fn report_to_stderr(&self) -> bool {
        self.cfg.fault.is_empty() && self.cfg.sched_seed == 0
    }

    /// Run one scheduling decision and wake the granted process, or tear the
    /// cluster down if the decision is a deadlock.  Must be called whenever
    /// a process leaves the `Running` state.
    fn dispatch(&self, st: &mut SimState) {
        match st.arb.decide() {
            Decision::Grant(rank) => {
                if let PState::Parked { key } = st.arb.state(rank) {
                    if let Some(trace) = &mut st.trace {
                        trace.push(Event {
                            t_ns: obs::ns(key),
                            rank: rank as u32,
                            kind: EventKind::Grant,
                        });
                    }
                }
                st.futile_grants += 1;
                if st.futile_grants >= LIVELOCK_GRANT_LIMIT {
                    let graph = wait_graph(st.arb.states(), &st.mailboxes);
                    let context = Self::fault_context(st);
                    let report = format!(
                        "virtual-time livelock: {LIVELOCK_GRANT_LIMIT} consecutive turns granted \
                         (next: process {rank}) without any message transmitted or consumed; \
                         a poll loop is spinning without making progress\n{graph}{context}"
                    );
                    if self.report_to_stderr() {
                        eprintln!("{report}");
                    }
                    st.aborted = Some(Abort::Livelock(report));
                    for cv in &self.wake {
                        cv.notify_all();
                    }
                    return;
                }
                st.arb.set(rank, PState::Running);
                self.wake[rank].notify_one();
            }
            Decision::Wait | Decision::AllDone => {}
            Decision::Deadlock => {
                let mut graph = wait_graph(st.arb.states(), &st.mailboxes);
                graph.push_str(&Self::fault_context(st));
                if self.report_to_stderr() {
                    eprintln!("{graph}");
                }
                st.aborted = Some(Abort::Deadlock(graph));
                for cv in &self.wake {
                    cv.notify_all();
                }
            }
        }
    }

    /// Park process `me` in `state`, let the arbiter schedule, and sleep
    /// until `me` is granted the token again.  On return the caller is the
    /// sole running process and still holds the lock.
    ///
    /// # Panics
    ///
    /// Panics if the cluster aborted (peer panic or deadlock) — including
    /// when the park itself completes the deadlock.
    fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        me: usize,
        state: PState,
    ) -> MutexGuard<'a, SimState> {
        if let Some(abort) = &st.aborted {
            panic_aborted(abort);
        }
        st.arb.set(me, state);
        self.dispatch(&mut st);
        loop {
            if let Some(abort) = &st.aborted {
                panic_aborted(abort);
            }
            if matches!(st.arb.state(me), PState::Running) {
                return st;
            }
            self.wake[me].wait(&mut st);
        }
    }

    /// Put a message on the wire at virtual time `depart` from `src` to
    /// `dst`.  `clock` is the sender's current virtual time (`<= depart`
    /// for scheduled sends); the windowed engine folds it into the horizon
    /// floor.  Returns the number of wire datagrams charged.
    ///
    /// When the shared-medium model is enabled, transmission is serialised:
    /// the message cannot start transmitting before the medium is free, which
    /// is how broadcast storms (Barnes-Hut under PVM) saturate the network.
    /// The sender seizes the medium only once it holds the minimum virtual
    /// time among runnable processes, so the serialisation order — and with
    /// it every arrival time — is deterministic.
    pub fn transmit(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        depart: f64,
        clock: f64,
    ) -> u64 {
        if let Some(w) = &self.windowed {
            return w.transmit(src, dst, tag, payload, depart, clock);
        }
        assert!(dst < self.cfg.nprocs, "send to nonexistent process {dst}");
        let mut st = self.park(self.state.lock(), src, PState::Parked { key: depart });
        let bytes = payload.len();
        let mut datagrams = self.cfg.datagrams_for(bytes);
        let occupancy = self.cfg.occupancy(bytes);
        // Fault injection: the reliability layer's retransmissions and
        // duplicates cost extra wire time and datagrams; drops, delays and
        // partitions defer the arrival.  All decisions are seeded per link,
        // so they are a pure function of the link's message count.
        let (mut extra_delay, mut extra_occupancy, mut want_reorder) = (0.0, 0.0, false);
        let mut fired: [Option<FaultKind>; 5] = [None; 5];
        if let Some(f) = st.faults.as_mut() {
            let inj = f.on_transmit(src, dst, depart, datagrams, occupancy, self.cfg.latency);
            datagrams += inj.extra_datagrams;
            extra_delay = inj.extra_delay;
            extra_occupancy = inj.extra_occupancy;
            want_reorder = inj.reorder;
            fired = inj.kinds;
        }
        let start = if self.cfg.shared_medium {
            let start = depart.max(st.medium_free_at);
            st.medium_free_at = start + occupancy + extra_occupancy;
            start
        } else {
            depart
        };
        let arrival = start + occupancy + self.cfg.latency + extra_delay;
        st.futile_grants = 0;
        // A reorder slip applies only when the queue tail is from another
        // source: per-link FIFO (the reliability layer's resequencing
        // guarantee) is never broken, so the slip is counted here, not in
        // the draw.
        let slip = want_reorder && st.mailboxes[dst].back().is_some_and(|m| m.src != src);
        if slip {
            if let Some(f) = st.faults.as_mut() {
                f.stats.reorders += 1;
            }
        }
        if let Some(tr) = st.trace.as_mut() {
            for &kind in fired.iter().flatten() {
                tr.push(Event {
                    t_ns: obs::ns(depart),
                    rank: src as u32,
                    kind: EventKind::Fault {
                        kind,
                        dst: dst as u32,
                        delay_ns: obs::ns(extra_delay),
                    },
                });
            }
            if slip {
                tr.push(Event {
                    t_ns: obs::ns(depart),
                    rank: src as u32,
                    kind: EventKind::Fault {
                        kind: FaultKind::Reorder,
                        dst: dst as u32,
                        delay_ns: 0,
                    },
                });
            }
            tr.push(Event {
                t_ns: obs::ns(depart),
                rank: src as u32,
                kind: EventKind::Send {
                    dst: dst as u32,
                    tag,
                    bytes: bytes as u64,
                    datagrams,
                    arrival_ns: obs::ns(arrival),
                },
            });
        }
        let message = Message {
            src,
            dst,
            tag,
            payload,
            arrival,
            datagrams,
        };
        if slip {
            let tail = st.mailboxes[dst].len() - 1;
            st.mailboxes[dst].insert(tail, message);
        } else {
            st.mailboxes[dst].push_back(message);
        }
        // A receiver blocked on exactly this kind of message becomes
        // runnable, keyed by the virtual time at which it would consume it.
        if let PState::RecvBlocked {
            src: want_src,
            tag: want_tag,
            clock,
        } = st.arb.state(dst)
        {
            if want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag) {
                st.arb.set(
                    dst,
                    PState::Parked {
                        key: clock.max(arrival),
                    },
                );
            }
        }
        datagrams
    }

    /// Blocking receive of the first queued message for `dst` that matches
    /// `src` (if given) and `tag` (if given).  `clock` is the receiver's
    /// current virtual time.
    ///
    /// The receiver consumes the message only once it holds the minimum
    /// virtual time among runnable processes (keyed by the consume time
    /// `max(clock, arrival)`); with no match queued it blocks, unrunnable,
    /// until a matching transmission promotes it.  If no process is runnable
    /// and none can ever deliver a matching message, the deadlock is
    /// reported immediately with the full wait graph.
    pub fn recv_match(
        &self,
        dst: usize,
        src: Option<usize>,
        tag: Option<Tag>,
        clock: f64,
    ) -> Message {
        if let Some(w) = &self.windowed {
            return w.recv_match(dst, src, tag, clock);
        }
        let st = self.state.lock();
        let state = match Self::find(&st.mailboxes[dst], src, tag) {
            Some(pos) => PState::Parked {
                key: clock.max(st.mailboxes[dst][pos].arrival),
            },
            None => PState::RecvBlocked { src, tag, clock },
        };
        let mut st = self.park(st, dst, state);
        let pos = Self::find(&st.mailboxes[dst], src, tag)
            .expect("granted receiver must have a matching message");
        st.futile_grants = 0;
        let m = st.mailboxes[dst].remove(pos).expect("position just found");
        if let Some(tr) = st.trace.as_mut() {
            tr.push(Event {
                t_ns: obs::ns(clock.max(m.arrival)),
                rank: dst as u32,
                kind: EventKind::Consume {
                    src: m.src as u32,
                    tag: m.tag,
                    arrival_ns: obs::ns(m.arrival),
                },
            });
        }
        m
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match): consumes
    /// the first matching message that has *arrived* by the receiver's
    /// clock (`arrival <= now`), or returns `None`.
    ///
    /// Messages whose arrival lies in the receiver's virtual future stay
    /// invisible — a process cannot consume (and answer) a request "before"
    /// it arrived.  The observation itself is a scheduling point: it happens
    /// only once this process holds the minimum virtual time among runnable
    /// processes, so its outcome is deterministic.
    pub fn try_recv_match(
        &self,
        dst: usize,
        src: Option<usize>,
        tag: Option<Tag>,
        now: f64,
    ) -> Option<Message> {
        if let Some(w) = &self.windowed {
            return w.try_recv_match(dst, src, tag, now);
        }
        let mut st = self.park(self.state.lock(), dst, PState::Parked { key: now });
        let pos = st.mailboxes[dst].iter().position(|m| {
            m.arrival <= now && src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t)
        })?;
        st.futile_grants = 0;
        let m = st.mailboxes[dst].remove(pos)?;
        if let Some(tr) = st.trace.as_mut() {
            tr.push(Event {
                t_ns: obs::ns(now),
                rank: dst as u32,
                kind: EventKind::Consume {
                    src: m.src as u32,
                    tag: m.tag,
                    arrival_ns: obs::ns(m.arrival),
                },
            });
        }
        Some(m)
    }

    /// Number of messages queued for `dst` that have arrived by virtual
    /// time `now`.  Like every observation, clock-gated and arbitrated.
    pub fn pending(&self, dst: usize, now: f64) -> usize {
        if let Some(w) = &self.windowed {
            return w.pending(dst, now);
        }
        let st = self.park(self.state.lock(), dst, PState::Parked { key: now });
        st.mailboxes[dst]
            .iter()
            .filter(|m| m.arrival <= now)
            .count()
    }

    fn find(q: &VecDeque<Message>, src: Option<usize>, tag: Option<Tag>) -> Option<usize> {
        q.iter()
            .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
    }

    /// Drain the central observability event stream (sends, consumes,
    /// grants).  Empty below [`ObsLevel::Trace`].  Called once by the
    /// cluster front end after every process has finished.
    pub fn take_central(&self) -> Vec<Event> {
        if let Some(w) = &self.windowed {
            return w.take_central();
        }
        self.state.lock().trace.take().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};

    #[test]
    fn transmit_and_receive_in_fifo_order_per_tag() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 5, Bytes::from_static(b"a"));
                p.send(1, 5, Bytes::from_static(b"b"));
                Vec::new()
            } else {
                vec![p.recv(Some(0), 5).payload, p.recv(Some(0), 5).payload]
            }
        });
        assert_eq!(rep.results[1][0].as_ref(), b"a");
        assert_eq!(rep.results[1][1].as_ref(), b"b");
    }

    #[test]
    fn tag_filtering_skips_other_tags() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 1, Bytes::from_static(b"one"));
                p.send(1, 2, Bytes::from_static(b"two"));
                (Bytes::new(), 0)
            } else {
                let m = p.recv(None, 2);
                // The tag-1 message is still queued (and has arrived).
                (m.payload, p.pending())
            }
        });
        assert_eq!(rep.results[1].0.as_ref(), b"two");
        assert_eq!(rep.results[1].1, 1);
    }

    #[test]
    fn shared_medium_serialises_transmissions() {
        let big = vec![0u8; 1 << 20];
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(3), move |p| {
            if p.id() < 2 {
                p.send(2, 1, Bytes::from(big.clone()));
                (0.0, 0.0)
            } else {
                let a1 = p.recv(Some(0), 1).arrival;
                let a2 = p.recv(Some(1), 1).arrival;
                (a1, a2)
            }
        });
        // Both departed at t~0, but the second transfer had to wait for the
        // medium, so it arrives roughly one occupancy later.
        let cfg = ClusterConfig::calibrated_fddi(3);
        let occ = cfg.occupancy(1 << 20);
        let (a1, a2) = rep.results[2];
        assert!(a2 >= a1 + 0.9 * occ, "a1={a1} a2={a2} occ={occ}");
    }

    #[test]
    fn lower_virtual_time_wins_the_medium_regardless_of_rank() {
        // Process 1 is ready to send at t=0; process 0 only at t=1.  The
        // arbiter must give process 1 the medium first even though process 0
        // has the lower rank, so receiver sees 1's message queued first.
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(3), |p| match p.id() {
            0 => {
                p.compute(1.0);
                p.send(2, 7, Bytes::from_static(b"late"));
                Vec::new()
            }
            1 => {
                p.send(2, 7, Bytes::from_static(b"early"));
                Vec::new()
            }
            _ => {
                let first = p.recv(None, 7);
                let second = p.recv(None, 7);
                vec![first, second]
            }
        });
        assert_eq!(rep.results[2][0].src, 1);
        assert_eq!(rep.results[2][1].src, 0);
        assert!(rep.results[2][0].arrival < rep.results[2][1].arrival);
    }

    #[test]
    fn fragmentation_reported_in_message() {
        let rep = Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(1, 1, Bytes::from(vec![0u8; 20_000]));
                0
            } else {
                p.recv(Some(0), 1).datagrams
            }
        });
        assert_eq!(rep.results[1], 3); // 20000 / 8192 -> 3 datagrams
    }

    #[test]
    #[should_panic]
    fn sending_to_unknown_process_panics() {
        Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                p.send(7, 0, Bytes::new());
            }
        });
    }

    #[test]
    #[should_panic(expected = "virtual-time deadlock")]
    fn all_blocked_processes_report_a_deadlock_immediately() {
        // Process 0 waits for a message process 1 never sends, and vice
        // versa: a textbook wait cycle.  The arbiter must detect it the
        // moment the second process blocks — no wall-clock timeout.
        Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            let peer = 1 - p.id();
            p.recv(Some(peer), 42);
        });
    }

    #[test]
    #[should_panic(expected = "virtual-time livelock")]
    fn non_advancing_poll_loop_is_detected_as_livelock() {
        // Process 0 polls at a frozen virtual time for a message process 1
        // will only send after receiving one from process 0 — which never
        // comes.  Neither process is deadlocked in the arbiter's sense
        // (process 0 stays runnable), so this is the silent-spin case the
        // futile-grant counter exists for.
        Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 0 {
                loop {
                    if p.try_recv(Some(1), 1).is_some() {
                        break;
                    }
                }
            } else {
                p.recv(Some(0), 9);
            }
        });
    }

    #[test]
    #[should_panic(expected = "virtual-time deadlock")]
    fn waiting_for_a_finished_process_is_a_deadlock() {
        Cluster::run(ClusterConfig::calibrated_fddi(2), |p| {
            if p.id() == 1 {
                p.recv(Some(0), 3);
            }
        });
    }
}

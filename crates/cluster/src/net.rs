//! The transport layer: tagged messages, per-process mailboxes, and the
//! shared-medium cost model.
//!
//! Every logical message is fragmented into MTU-sized datagrams for cost and
//! statistics purposes (the paper's TreadMarks numbers count UDP datagrams),
//! but is delivered to the destination mailbox as a single unit — exactly the
//! behaviour of a user-level reliable protocol on top of UDP, or of a TCP
//! stream carrying one PVM message.

use crate::config::ClusterConfig;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Message tags distinguish independent conversations between two processes.
pub type Tag = u32;

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending process rank.
    pub src: usize,
    /// Destination process rank.
    pub dst: usize,
    /// Application-chosen tag.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Bytes,
    /// Virtual time at which the message arrived at the destination.
    pub arrival: f64,
    /// Number of transport datagrams this message occupied on the wire.
    pub datagrams: u64,
}

/// One process's incoming-message queue.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    avail: Condvar,
}

/// The shared state of the simulated network.
pub struct NetworkCore {
    cfg: ClusterConfig,
    mailboxes: Vec<Mailbox>,
    /// Virtual time until which the shared medium is busy (FDDI ring model).
    medium_free_at: Mutex<f64>,
    /// Rank of a process that panicked, if any.  Set by [`Self::abort`] so
    /// that blocked receivers fail fast instead of waiting forever for
    /// messages the dead process will never send.
    aborted_by: Mutex<Option<usize>>,
}

impl NetworkCore {
    /// Create the network for `cfg.nprocs` processes.
    pub fn new(cfg: ClusterConfig) -> Self {
        let mailboxes = (0..cfg.nprocs).map(|_| Mailbox::default()).collect();
        NetworkCore {
            cfg,
            mailboxes,
            medium_free_at: Mutex::new(0.0),
            aborted_by: Mutex::new(None),
        }
    }

    /// Mark the cluster as aborted because process `who` panicked, and wake
    /// every blocked receiver so it can fail fast.
    pub fn abort(&self, who: usize) {
        *self.aborted_by.lock() = Some(who);
        for mb in &self.mailboxes {
            let _q = mb.queue.lock();
            mb.avail.notify_all();
        }
    }

    fn check_aborted(&self) {
        if let Some(who) = *self.aborted_by.lock() {
            panic!("cluster aborted: process {who} panicked");
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Put a message on the wire at virtual time `depart` from `src` to
    /// `dst`.  Returns `(arrival_time, datagrams)`.
    ///
    /// When the shared-medium model is enabled, transmission is serialised:
    /// the message cannot start transmitting before the medium is free, which
    /// is how broadcast storms (Barnes-Hut under PVM) saturate the network.
    pub fn transmit(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        depart: f64,
    ) -> (f64, u64) {
        assert!(dst < self.cfg.nprocs, "send to nonexistent process {dst}");
        let bytes = payload.len();
        let datagrams = self.cfg.datagrams_for(bytes);
        let occupancy = self.cfg.occupancy(bytes);
        let start = if self.cfg.shared_medium {
            let mut free_at = self.medium_free_at.lock();
            let start = depart.max(*free_at);
            *free_at = start + occupancy;
            start
        } else {
            depart
        };
        let arrival = start + occupancy + self.cfg.latency;
        let msg = Message {
            src,
            dst,
            tag,
            payload,
            arrival,
            datagrams,
        };
        let mb = &self.mailboxes[dst];
        mb.queue.lock().push_back(msg);
        mb.avail.notify_all();
        (arrival, datagrams)
    }

    /// Blocking receive of the first queued message for `dst` that matches
    /// `src` (if given) and `tag` (if given).
    ///
    /// A receive that stays blocked for a long *real* time is almost always
    /// a protocol deadlock in the runtime built on top of this transport, so
    /// after 30 wall-clock seconds a diagnostic describing the wait and the
    /// non-matching queued messages is printed to stderr (once per call).
    pub fn recv_match(&self, dst: usize, src: Option<usize>, tag: Option<Tag>) -> Message {
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        let mut warned = false;
        loop {
            self.check_aborted();
            if let Some(pos) = Self::find(&q, src, tag) {
                return q.remove(pos).expect("position just found");
            }
            let timed_out = mb
                .avail
                .wait_for(&mut q, std::time::Duration::from_secs(30));
            if timed_out && !warned {
                warned = true;
                let queued: Vec<(usize, Tag)> = q.iter().map(|m| (m.src, m.tag)).collect();
                eprintln!(
                    "cluster: process {dst} has been blocked for 30s waiting for \
                     src={src:?} tag={tag:?}; queued (src, tag): {queued:?}"
                );
            }
        }
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match).
    pub fn try_recv_match(
        &self,
        dst: usize,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<Message> {
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        Self::find(&q, src, tag).and_then(|pos| q.remove(pos))
    }

    /// Number of messages currently queued for `dst`.
    pub fn pending(&self, dst: usize) -> usize {
        self.mailboxes[dst].queue.lock().len()
    }

    fn find(q: &VecDeque<Message>, src: Option<usize>, tag: Option<Tag>) -> Option<usize> {
        q.iter()
            .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(n: usize) -> NetworkCore {
        NetworkCore::new(ClusterConfig::calibrated_fddi(n))
    }

    #[test]
    fn transmit_and_receive_in_fifo_order_per_tag() {
        let net = core(2);
        net.transmit(0, 1, 5, Bytes::from_static(b"a"), 0.0);
        net.transmit(0, 1, 5, Bytes::from_static(b"b"), 0.0);
        let m1 = net.recv_match(1, Some(0), Some(5));
        let m2 = net.recv_match(1, Some(0), Some(5));
        assert_eq!(m1.payload.as_ref(), b"a");
        assert_eq!(m2.payload.as_ref(), b"b");
    }

    #[test]
    fn tag_filtering_skips_other_tags() {
        let net = core(2);
        net.transmit(0, 1, 1, Bytes::from_static(b"one"), 0.0);
        net.transmit(0, 1, 2, Bytes::from_static(b"two"), 0.0);
        let m = net.recv_match(1, None, Some(2));
        assert_eq!(m.payload.as_ref(), b"two");
        assert_eq!(net.pending(1), 1);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let net = core(2);
        assert!(net.try_recv_match(1, None, None).is_none());
        net.transmit(0, 1, 9, Bytes::new(), 0.0);
        assert!(net.try_recv_match(1, Some(0), Some(9)).is_some());
        assert!(net.try_recv_match(1, Some(0), Some(9)).is_none());
    }

    #[test]
    fn shared_medium_serialises_transmissions() {
        let net = core(3);
        let big = vec![0u8; 1 << 20];
        let (a1, _) = net.transmit(0, 2, 1, Bytes::from(big.clone()), 0.0);
        let (a2, _) = net.transmit(1, 2, 1, Bytes::from(big), 0.0);
        // Both departed at t=0, but the second transfer had to wait for the
        // medium, so it arrives roughly one occupancy later.
        let occ = net.config().occupancy(1 << 20);
        assert!(a2 >= a1 + 0.9 * occ, "a1={a1} a2={a2} occ={occ}");
    }

    #[test]
    fn fragmentation_reported_in_message() {
        let net = core(2);
        let (_, frags) = net.transmit(0, 1, 1, Bytes::from(vec![0u8; 20_000]), 0.0);
        assert_eq!(frags, 3); // 20000 / 8192 -> 3 datagrams
    }

    #[test]
    #[should_panic]
    fn sending_to_unknown_process_panics() {
        let net = core(2);
        net.transmit(0, 7, 0, Bytes::new(), 0.0);
    }
}

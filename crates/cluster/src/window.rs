//! The threaded windowed engine: islands advance concurrently inside a
//! conservative horizon window, and every global effect is replayed in exact
//! serial order at the window barrier.
//!
//! # Design
//!
//! The serial engine (`cluster::net`) interleaves all ranks under one lock:
//! each scheduling decision grants the globally minimum `(virtual time,
//! rank)` parked process.  PR 9's island decomposition proved the minimum can
//! be maintained per contiguous rank block; this module cashes that in for
//! real parallelism.  Execution alternates between two phases:
//!
//! * **Window phase.**  A coordinator computes a floor `L` (the minimum over
//!   every live rank's park key and clock and every unconsumed mailbox
//!   arrival) and a horizon `H = L + lookahead` (`lookahead = cfg.latency`,
//!   the same conservative-PDES bound `IslandSched` `debug_assert`s).  Up to
//!   `island_threads` islands then run concurrently, each island granting its
//!   own members in local `(key, rank)` order while their keys stay inside
//!   `[L, H)`.  Every grant opens a *slot record* capturing the grant key,
//!   trace events, and staged sends; **no** send is delivered during the
//!   window — intra- and cross-island pushes alike are staged on the record.
//!   A message departing at key `k >= L` arrives no earlier than
//!   `k + latency >= H`, so no in-window observation (all at keys `< H`) can
//!   distinguish staged from delivered messages: thread interleaving cannot
//!   reach any simulated byte.
//!
//! * **Barrier phase.**  When every island has quiesced, the last thread
//!   *walks* the per-island record queues: repeatedly take the minimum
//!   `(key, rank)` front record across islands (records within an island are
//!   already in island-serial order) and apply it — append its trace events,
//!   compute shared-medium reservation and arrival times, push its messages,
//!   and promote blocked receivers, exactly as the serial engine would have,
//!   in exactly the order the serial engine would have.  The walk stops at
//!   the first *unexecuted* park (a parked rank whose key precedes every
//!   remaining record): records beyond it are deferred to the next barrier,
//!   so the committed prefix is always a prefix of the serial execution.
//!   Under the `oracle-checks` feature the walk replays every decision
//!   through a shadow [`IslandSched`] — the PR 9 serial reference arbiter —
//!   and asserts it grants the same `(key, rank)`.
//!
//! Arrival times (and the shared-medium reservation) are computed at the
//! walk, not at the transmit: the process layer never reads them before the
//! message is consumed, and deferring the computation means the FDDI
//! shared-medium model serialises transmissions in exact virtual-time order
//! even though the transmitting threads raced.  Fault-PRNG draws *are* made
//! at transmit time, from a per-island clone of the fault state: the streams
//! are seeded per directed link (`src * nprocs + dst`) and a link is only
//! ever drawn by its source rank's island, so the draw sequence is identical
//! to the serial engine's and independent of thread interleaving.
//!
//! # Livelock, deadlock, and the below-floor backstop
//!
//! The serial engine counts consecutive futile grants and aborts at
//! [`LIVELOCK_GRANT_LIMIT`].  The walk accumulates the same counter in the
//! same order; windows cap each island at `(LIMIT/2)/islands` grants so the
//! count can never silently cross the limit mid-window, and once it reaches
//! `LIMIT/2` the engine degrades to *step mode* — one barrier-issued grant
//! of the global minimum per barrier, which is serial execution with exact
//! pre-grant livelock checks and produces the identical report at the
//! identical grant.  Deadlock is detected at the barrier from the identical
//! condition (nobody parked, someone receive-blocked) over the identical
//! state, so the wait graph matches byte for byte.
//!
//! One hazard remains: a slot granted at key `k` may park *below* the
//! window floor (`send_at` with a departure computed from data older than
//! any floor contribution).  The floor includes every unconsumed arrival
//! precisely so the common reply-to-request idiom stays at or above `L`,
//! and a below-floor park merely stalls its island (the walk defers
//! everything serially after it).  The only way such a stall could corrupt
//! output is an already-executed, still-deferred *observation*
//! (`try_recv`/`pending`, which filter on arrival) at a key the stalled
//! slot's sends could reach; the barrier checks for exactly that and panics
//! deterministically rather than commit a wrong byte.  No workload in this
//! repository can trigger it (all departures derive from clocks or consumed
//! arrivals plus non-negative costs), and the serial engine remains
//! available at `--island-threads 1`.

use crate::config::ClusterConfig;
use crate::fault::{FaultKind, FaultState, FaultStats};
use crate::net::{panic_aborted, Abort, Message, Tag, LIVELOCK_GRANT_LIMIT};
use crate::obs::{self, Event, EventKind, ObsLevel};
use crate::sched::{wait_graph, PState};
use crate::AnalysisLevel;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// True when `cfg` can run on the windowed engine with bit-identical output.
///
/// Excluded (each falls back to the serial engine, which remains the
/// reference semantics): fewer than two effective islands or threads
/// (nothing to parallelise), a seeded arbiter (tie-break draws depend on the
/// global grant sequence, which the window does not replay until the
/// barrier), fault-plan crashes (a rank unwinding mid-window would strand
/// its island), reorder faults (a slip positions the message against the
/// *instantaneous* serial mailbox tail, which staged delivery cannot
/// reconstruct — drop, duplicate, delay and partition faults resolve
/// per-link and stay eligible), run-time analysis (the race detector
/// observes under the serial lock), and a zero-latency network (the
/// lookahead window would be empty).
pub(crate) fn eligible(cfg: &ClusterConfig) -> bool {
    let n = cfg.nprocs;
    let islands = cfg.islands.clamp(1, n.max(1));
    let block = n.max(1).div_ceil(islands);
    let k = n.max(1).div_ceil(block);
    cfg.island_threads >= 2
        && k >= 2
        && n >= 2
        && cfg.sched_seed == 0
        && cfg.fault.crashes.is_empty()
        && cfg.fault.reorder == 0.0
        && cfg.analysis == AnalysisLevel::Off
        && cfg.latency > 0.0
}

/// A send staged on a slot record: everything the walk needs to reproduce
/// the serial transmit byte for byte.  The fault draws already happened (at
/// transmit time, from the island-local stream clone); the shared-medium
/// start and the arrival are resolved at the walk, where the global serial
/// order is known.  Reorder faults are ineligible, so a staged send is
/// always a tail append.
struct StagedSend {
    dst: usize,
    tag: Tag,
    payload: Bytes,
    depart: f64,
    bytes: u64,
    datagrams: u64,
    occupancy: f64,
    extra_delay: f64,
    extra_occupancy: f64,
    fired: [Option<FaultKind>; 5],
}

/// One effect of a slot, in slot-internal order.
enum Action {
    /// A trace event fully resolved at execution time (grant, consume).
    Trace(Event),
    /// A staged send; resolved (and traced) at the walk.
    Send(StagedSend),
}

/// One executed scheduling slot: the grant the island issued locally, plus
/// every effect the walk must replay globally.
struct Rec {
    /// The grant key (the park key the rank was granted at).
    key: f64,
    /// The granted rank.
    rank: usize,
    /// The slot transmitted or consumed a message: the futile-grant counter
    /// resets after this slot.
    reset: bool,
    /// The slot was an arrival-filtered observation (`try_recv`/`pending`):
    /// tracked for the below-floor taint check.
    observed: bool,
    /// The scheduler state the rank parked into when the slot ended; drives
    /// the `oracle-checks` shadow replay.
    end: PState,
    /// The message this slot consumed (filter plus the matched message), so
    /// the shadow replay can mirror the removal and assert the serial
    /// engine would have matched the same message.
    #[cfg(feature = "oracle-checks")]
    consumed: Option<ShadowConsume>,
    /// Trace events and staged sends, in slot order.
    actions: Vec<Action>,
}

/// A consumed-message record for the `oracle-checks` shadow replay.
#[cfg(feature = "oracle-checks")]
struct ShadowConsume {
    /// Source filter of the receive.
    src: Option<usize>,
    /// Tag filter of the receive.
    tag: Option<Tag>,
    /// Arrival cap (`try_recv`'s "already arrived" filter), if any.
    cap: Option<f64>,
    /// `(src, tag, arrival)` of the message the slot actually removed.
    got: (usize, Tag, f64),
}

/// The serial reference replay: the PR 9 arbiter plus its own view of every
/// rank's scheduler state and mailbox, advanced strictly in walk (serial)
/// order.  The actual shard state cannot stand in for it — islands run
/// ahead of the committed prefix, so a rank's current state may be several
/// slots past the serial point the walk is replaying.
#[cfg(feature = "oracle-checks")]
struct Shadow {
    sched: crate::sched::IslandSched,
    states: Vec<PState>,
    /// Per-rank mailboxes as `(src, tag, arrival)`, in serial push order.
    mailboxes: Vec<VecDeque<(usize, Tag, f64)>>,
}

#[cfg(feature = "oracle-checks")]
impl Shadow {
    fn set(&mut self, rank: usize, st: PState) {
        self.states[rank] = st;
        self.sched.set(rank, st);
    }
}

/// Per-island state: the only lock a rank touches between barriers.
struct Shard {
    /// First global rank of this island (contiguous block).
    base: usize,
    /// Scheduler state per member.
    procs: Vec<PState>,
    /// Last virtual clock each member reported at a scheduling point.
    clocks: Vec<f64>,
    /// Mailboxes of member ranks: committed (walked) messages only.
    mailboxes: Vec<VecDeque<Message>>,
    /// The currently open slot record per member.
    cur: Vec<Option<Rec>>,
    /// Executed slots not yet committed by a walk, in island-serial order.
    recs: VecDeque<Rec>,
    /// Island-local clone of the fault state; only this island's source
    /// links are ever drawn, so the per-link streams match the serial
    /// engine's exactly.  Counters are summed across islands for the report.
    faults: Option<FaultState>,
    /// Members currently running user code.
    running: usize,
    /// Grants issued this window (capped by the per-island budget).
    window_grants: u64,
    /// Current window horizon: island-local grants require `key < h`.
    h: f64,
    /// Current window floor: a park below it stalls the island.
    l: f64,
    /// Island holds one of the window's thread slots.
    active: bool,
}

/// Global coordinator state: touched only when an island quiesces.
struct Coord {
    /// Islands currently holding a thread slot.
    active: usize,
    /// Islands with in-window work awaiting a thread slot.
    pending: VecDeque<usize>,
    /// Consecutive futile grants, accumulated in walk (serial) order.
    futile: u64,
    /// Virtual time until which the shared medium is busy; advanced only
    /// during walks, in serial order.
    medium_free_at: f64,
    /// Central trace stream, appended in walk (serial) order.
    trace: Option<Vec<Event>>,
    /// All ranks finished; no further scheduling.
    done: bool,
    /// The serial reference replay, checking every walked decision.
    #[cfg(feature = "oracle-checks")]
    shadow: Option<Shadow>,
}

/// The windowed engine.  Constructed by `NetworkCore` when
/// [`eligible`] holds; exposes the same primitive surface.
pub(crate) struct WindowedCore {
    cfg: ClusterConfig,
    n: usize,
    /// Ranks per island; island of `rank` is `rank / block`.
    block: usize,
    /// Per-island, per-window grant budget: keeps the futile counter from
    /// crossing [`LIVELOCK_GRANT_LIMIT`] inside a window.
    budget: u64,
    lookahead: f64,
    tracing: bool,
    shards: Vec<Mutex<Shard>>,
    coord: Mutex<Coord>,
    /// One wake-up channel per rank, paired with its island's shard lock.
    wake: Vec<Condvar>,
    /// Fast-path teardown flag; the payload lives in `abort_slot`.
    aborted: AtomicBool,
    /// Why the simulation was torn down (leaf lock: never held while
    /// acquiring another).
    abort_slot: Mutex<Option<Abort>>,
}

fn min_parked(sh: &Shard) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (i, p) in sh.procs.iter().enumerate() {
        if let PState::Parked { key } = *p {
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, i));
            }
        }
    }
    best
}

fn find(q: &VecDeque<Message>, src: Option<usize>, tag: Option<Tag>) -> Option<usize> {
    q.iter()
        .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
}

impl WindowedCore {
    pub(crate) fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.nprocs;
        let islands = cfg.islands.clamp(1, n.max(1));
        let block = n.max(1).div_ceil(islands);
        let nislands = n.max(1).div_ceil(block);
        let tracing = cfg.obs == ObsLevel::Trace;
        let budget = ((LIVELOCK_GRANT_LIMIT / 2) / nislands as u64).max(1);
        let shards = (0..nislands)
            .map(|i| {
                let base = i * block;
                let members = block.min(n - base);
                Mutex::new(Shard {
                    base,
                    procs: vec![PState::Running; members],
                    clocks: vec![0.0; members],
                    mailboxes: (0..members).map(|_| VecDeque::new()).collect(),
                    cur: (0..members).map(|_| None).collect(),
                    recs: VecDeque::new(),
                    faults: FaultState::new(&cfg.fault, n),
                    running: members,
                    window_grants: 0,
                    h: f64::NEG_INFINITY,
                    l: f64::NEG_INFINITY,
                    active: true,
                })
            })
            .collect();
        let coord = Mutex::new(Coord {
            active: nislands,
            pending: VecDeque::new(),
            futile: 0,
            medium_free_at: 0.0,
            trace: if tracing { Some(Vec::new()) } else { None },
            done: false,
            #[cfg(feature = "oracle-checks")]
            shadow: None,
        });
        WindowedCore {
            lookahead: cfg.latency,
            n,
            block,
            budget,
            tracing,
            shards,
            coord,
            wake: (0..n).map(|_| Condvar::new()).collect(),
            aborted: AtomicBool::new(false),
            abort_slot: Mutex::new(None),
            cfg,
        }
    }

    fn island_of(&self, rank: usize) -> (usize, usize) {
        let island = rank / self.block;
        (island, rank - island * self.block)
    }

    fn panic_with_abort(&self) -> ! {
        let slot = self.abort_slot.lock();
        match &*slot {
            Some(abort) => panic_aborted(abort),
            // The flag is only ever raised after the payload is stored.
            None => unreachable!("abort flag raised without a payload"),
        }
    }

    /// Record the teardown cause, raise the flag, and wake every sleeper.
    fn raise_abort(&self, abort: Abort) {
        {
            let mut slot = self.abort_slot.lock();
            if slot.is_none() {
                *slot = Some(abort);
            }
        }
        self.aborted.store(true, Ordering::Release);
        for cv in &self.wake {
            cv.notify_all();
        }
    }

    /// Grant member `idx` of `sh` (parked at `key`): open its slot record
    /// and wake it.  Caller has established the grant is legal.
    fn grant_local(&self, sh: &mut Shard, idx: usize, key: f64) {
        let rank = sh.base + idx;
        sh.procs[idx] = PState::Running;
        sh.running += 1;
        sh.window_grants += 1;
        let mut actions = Vec::with_capacity(2);
        if self.tracing {
            actions.push(Action::Trace(Event {
                t_ns: obs::ns(key),
                rank: rank as u32,
                kind: EventKind::Grant,
            }));
        }
        sh.cur[idx] = Some(Rec {
            key,
            rank,
            reset: false,
            observed: false,
            end: PState::Running,
            #[cfg(feature = "oracle-checks")]
            consumed: None,
            actions,
        });
        self.wake[rank].notify_one();
    }

    /// Issue the island's next local grant, or report that it has quiesced
    /// for this window (no member running and nothing grantable inside the
    /// window, under budget, at or above the floor).
    fn island_dispatch(&self, sh: &mut Shard) -> bool {
        if sh.running > 0 {
            return false;
        }
        match min_parked(sh) {
            Some((key, idx)) if key < sh.h && key >= sh.l && sh.window_grants < self.budget => {
                self.grant_local(sh, idx, key);
                false
            }
            _ => true,
        }
    }

    /// An island released its thread slot: hand the slot to a pending
    /// island, or — when this was the last active island — run the barrier.
    fn on_quiesce(&self) {
        let mut coord = self.coord.lock();
        loop {
            if let Some(p) = coord.pending.pop_front() {
                let mut sh = self.shards[p].lock();
                sh.active = true;
                if self.island_dispatch(&mut sh) {
                    // Nothing grantable after all (cannot normally happen:
                    // pending islands are untouched between plan and
                    // activation); pass the slot on.
                    sh.active = false;
                    drop(sh);
                    continue;
                }
                return;
            }
            coord.active -= 1;
            if coord.active == 0 {
                self.barrier(&mut coord);
            }
            return;
        }
    }

    /// Park `me` in `state` at `clock`, dispatch the island, and sleep until
    /// granted again.  The windowed analogue of the serial `park`.
    fn schedule<'a>(&'a self, me: usize, state: PState, clock: f64) -> MutexGuard<'a, Shard> {
        let (island, _) = self.island_of(me);
        let sh = self.shards[island].lock();
        self.schedule_locked(sh, me, state, clock)
    }

    fn schedule_locked<'a>(
        &'a self,
        mut sh: MutexGuard<'a, Shard>,
        me: usize,
        state: PState,
        clock: f64,
    ) -> MutexGuard<'a, Shard> {
        let (island, idx) = self.island_of(me);
        if self.aborted.load(Ordering::Acquire) {
            drop(sh);
            self.panic_with_abort();
        }
        if let Some(mut rec) = sh.cur[idx].take() {
            rec.end = state;
            sh.recs.push_back(rec);
        }
        debug_assert!(matches!(sh.procs[idx], PState::Running));
        sh.procs[idx] = state;
        sh.clocks[idx] = clock;
        sh.running -= 1;
        if self.island_dispatch(&mut sh) && sh.active {
            sh.active = false;
            drop(sh);
            self.on_quiesce();
            sh = self.shards[island].lock();
        }
        loop {
            if self.aborted.load(Ordering::Acquire) {
                drop(sh);
                self.panic_with_abort();
            }
            if matches!(sh.procs[idx], PState::Running) {
                return sh;
            }
            self.wake[me].wait(&mut sh);
        }
    }

    /// The window barrier: commit the serial prefix, check invariants, and
    /// plan the next window (or finish, or abort).
    fn barrier(&self, coord: &mut Coord) {
        if coord.done {
            return;
        }
        let mut shards: Vec<MutexGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.lock()).collect();
        #[cfg(feature = "oracle-checks")]
        if coord.shadow.is_none() {
            // First barrier: every rank has reached its first scheduling
            // point (or finished), no slot has run and no message has been
            // pushed — seed the serial reference replay with the exact
            // current state (which is also the exact serial state: first
            // parks precede every grant in both engines).
            let mut shadow = Shadow {
                sched: crate::sched::IslandSched::new(
                    self.n,
                    self.cfg.islands,
                    self.cfg.sched_seed,
                    self.cfg.tie_limit,
                    self.cfg.latency,
                ),
                states: vec![PState::Running; self.n],
                mailboxes: (0..self.n).map(|_| VecDeque::new()).collect(),
            };
            for sh in &shards {
                for (i, p) in sh.procs.iter().enumerate() {
                    shadow.set(sh.base + i, *p);
                }
            }
            coord.shadow = Some(shadow);
        }
        self.walk(coord, &mut shards);
        self.taint_check(&shards);
        self.plan(coord, &mut shards);
    }

    /// Commit executed slots in global serial order: repeatedly apply the
    /// minimum `(key, rank)` front record across islands, stopping at the
    /// first unexecuted park (everything serially after it is deferred).
    fn walk(&self, coord: &mut Coord, shards: &mut [MutexGuard<'_, Shard>]) {
        loop {
            // (key, rank, is_record); on an exact (key, rank) tie the record
            // precedes the park — it is the same rank's already-executed
            // slot.
            let mut best: Option<(f64, usize, bool)> = None;
            for sh in shards.iter() {
                let cand = match sh.recs.front() {
                    Some(rec) => Some((rec.key, rec.rank, true)),
                    None => min_parked(sh).map(|(k, i)| (k, sh.base + i, false)),
                };
                if let Some((k, r, is_rec)) = cand {
                    let better = match best {
                        None => true,
                        Some((bk, br, b_rec)) => {
                            (k, r, !is_rec as u8) < (bk, br, !b_rec as u8)
                        }
                    };
                    if better {
                        best = Some((k, r, is_rec));
                    }
                }
            }
            match best {
                Some((_, rank, true)) => {
                    let (island, _) = self.island_of(rank);
                    let rec = shards[island].recs.pop_front().expect("front just seen");
                    self.apply(coord, shards, rec);
                }
                // The frontier is an unexecuted park (or nothing remains):
                // the committed prefix is maximal.
                _ => return,
            }
        }
    }

    /// Apply one committed slot: exactly the serial engine's per-grant
    /// effects, in the serial engine's order.
    fn apply(&self, coord: &mut Coord, shards: &mut [MutexGuard<'_, Shard>], rec: Rec) {
        #[cfg(feature = "oracle-checks")]
        if let Some(shadow) = coord.shadow.as_mut() {
            assert_eq!(
                shadow.sched.decide(),
                crate::sched::Decision::Grant(rec.rank),
                "windowed walk diverged from the serial reference arbiter \
                 at t={} rank {}",
                rec.key,
                rec.rank,
            );
            shadow.set(rec.rank, PState::Running);
            // Replay the slot's consume: the serial engine removes the
            // first filter match, which must be the message the windowed
            // slot actually took.
            if let Some(c) = &rec.consumed {
                let q = &mut shadow.mailboxes[rec.rank];
                let pos = q
                    .iter()
                    .position(|&(s, t, a)| {
                        c.src.is_none_or(|w| w == s)
                            && c.tag.is_none_or(|w| w == t)
                            && c.cap.is_none_or(|cap| a <= cap)
                    })
                    .unwrap_or_else(|| {
                        panic!(
                            "serial replay has no match for the message rank {} \
                             consumed at t={}",
                            rec.rank, rec.key
                        )
                    });
                let got = q.remove(pos).expect("position just found");
                assert_eq!(
                    got, c.got,
                    "windowed rank {} consumed a different message than the \
                     serial replay at t={}",
                    rec.rank, rec.key
                );
            }
        }
        coord.futile += 1;
        debug_assert!(
            coord.futile < LIVELOCK_GRANT_LIMIT,
            "futile-grant budget failed to stop a window before the livelock limit"
        );
        let src = rec.rank;
        for action in rec.actions {
            match action {
                Action::Trace(ev) => {
                    if let Some(tr) = coord.trace.as_mut() {
                        tr.push(ev);
                    }
                }
                Action::Send(s) => {
                    let start = if self.cfg.shared_medium {
                        let start = s.depart.max(coord.medium_free_at);
                        coord.medium_free_at = start + s.occupancy + s.extra_occupancy;
                        start
                    } else {
                        s.depart
                    };
                    let arrival = start + s.occupancy + self.cfg.latency + s.extra_delay;
                    let (di, didx) = self.island_of(s.dst);
                    if let Some(tr) = coord.trace.as_mut() {
                        for &kind in s.fired.iter().flatten() {
                            tr.push(Event {
                                t_ns: obs::ns(s.depart),
                                rank: src as u32,
                                kind: EventKind::Fault {
                                    kind,
                                    dst: s.dst as u32,
                                    delay_ns: obs::ns(s.extra_delay),
                                },
                            });
                        }
                        tr.push(Event {
                            t_ns: obs::ns(s.depart),
                            rank: src as u32,
                            kind: EventKind::Send {
                                dst: s.dst as u32,
                                tag: s.tag,
                                bytes: s.bytes,
                                datagrams: s.datagrams,
                                arrival_ns: obs::ns(arrival),
                            },
                        });
                    }
                    let message = Message {
                        src,
                        dst: s.dst,
                        tag: s.tag,
                        payload: s.payload,
                        arrival,
                        datagrams: s.datagrams,
                    };
                    shards[di].mailboxes[didx].push_back(message);
                    // Wake a blocked receiver the moment its message commits
                    // (the rank may have blocked several committed slots
                    // ahead of this serial point; the promotion key is still
                    // the serial one — the first matching push both engines
                    // agree on).
                    if let PState::RecvBlocked {
                        src: want_src,
                        tag: want_tag,
                        clock,
                    } = shards[di].procs[didx]
                    {
                        if want_src.is_none_or(|ws| ws == src)
                            && want_tag.is_none_or(|wt| wt == s.tag)
                        {
                            let key = clock.max(arrival);
                            shards[di].procs[didx] = PState::Parked { key };
                        }
                    }
                    // The shadow replays the push — and the serial engine's
                    // promotion rule — against its own serial-point state,
                    // never the (possibly run-ahead) actual state.
                    #[cfg(feature = "oracle-checks")]
                    if let Some(shadow) = coord.shadow.as_mut() {
                        shadow.mailboxes[s.dst].push_back((src, s.tag, arrival));
                        if let PState::RecvBlocked {
                            src: want_src,
                            tag: want_tag,
                            clock,
                        } = shadow.states[s.dst]
                        {
                            if want_src.is_none_or(|ws| ws == src)
                                && want_tag.is_none_or(|wt| wt == s.tag)
                            {
                                let key = clock.max(arrival);
                                shadow.set(s.dst, PState::Parked { key });
                            }
                        }
                    }
                }
            }
        }
        if rec.reset {
            coord.futile = 0;
        }
        // Close the slot in the shadow.  A windowed rank can block on a
        // receive whose message was still staged when it ran; serially that
        // message was already in the mailbox, so the serial engine parks the
        // rank directly — translate the end state through the shadow's own
        // mailbox.
        #[cfg(feature = "oracle-checks")]
        if let Some(shadow) = coord.shadow.as_mut() {
            let end = match rec.end {
                PState::RecvBlocked { src, tag, clock } => shadow.mailboxes[rec.rank]
                    .iter()
                    .find(|&&(s, t, _)| {
                        src.is_none_or(|w| w == s) && tag.is_none_or(|w| w == t)
                    })
                    .map_or(rec.end, |&(_, _, arrival)| PState::Parked {
                        key: clock.max(arrival),
                    }),
                other => other,
            };
            shadow.set(rec.rank, end);
        }
    }

    /// The below-floor backstop: if any island stalled below the closing
    /// window's floor, no already-executed, still-deferred observation may
    /// lie at or beyond the earliest time the stalled slot's sends could
    /// reach.  A violation means the engine already handed a wrong
    /// observation to the program — crash deterministically instead of
    /// committing wrong bytes.  See the module docs; unreachable for
    /// departure times derived from clocks or consumed arrivals.
    fn taint_check(&self, shards: &[MutexGuard<'_, Shard>]) {
        let mut stalled = f64::INFINITY;
        for sh in shards.iter() {
            if let Some((key, _)) = min_parked(sh) {
                if key < sh.l && key < stalled {
                    stalled = key;
                }
            }
        }
        if stalled == f64::INFINITY {
            return;
        }
        for sh in shards.iter() {
            for rec in &sh.recs {
                assert!(
                    !(rec.observed && rec.key >= stalled + self.lookahead),
                    "windowed-engine invariant violated: observation at t={} \
                     was executed before a slot stalled below the window \
                     floor at t={} (lookahead {}); rerun with \
                     --island-threads 1 and report this",
                    rec.key,
                    stalled,
                    self.lookahead,
                );
            }
        }
    }

    fn fault_context(&self) -> String {
        use std::fmt::Write as _;
        // The windowed engine never runs with crash faults, so the serial
        // report's crashed-peer lines are vacuous; partitions are not.
        let mut out = String::new();
        if !self.cfg.fault.is_empty() {
            for p in &self.cfg.fault.partitions {
                let _ = writeln!(out, "  fault context: fault-plan partition {p}");
            }
        }
        out
    }

    fn report_to_stderr(&self) -> bool {
        self.cfg.fault.is_empty() && self.cfg.sched_seed == 0
    }

    fn global_states(&self, shards: &[MutexGuard<'_, Shard>]) -> Vec<PState> {
        shards.iter().flat_map(|sh| sh.procs.iter().copied()).collect()
    }

    fn global_mailboxes(&self, shards: &[MutexGuard<'_, Shard>]) -> Vec<VecDeque<Message>> {
        shards
            .iter()
            .flat_map(|sh| sh.mailboxes.iter().cloned())
            .collect()
    }

    /// Decide what happens after a walk: all done, deadlock, a serial step,
    /// or the next window.
    fn plan(&self, coord: &mut Coord, shards: &mut [MutexGuard<'_, Shard>]) {
        let mut all_finished = true;
        let mut floor = f64::INFINITY;
        // Global minimum parked (key, rank) — the serial engine's next grant.
        let mut gmin: Option<(f64, usize)> = None;
        for sh in shards.iter() {
            for (i, p) in sh.procs.iter().enumerate() {
                match *p {
                    PState::Finished => {}
                    PState::Parked { key } => {
                        all_finished = false;
                        floor = floor.min(key).min(sh.clocks[i]);
                        let rank = sh.base + i;
                        if gmin.is_none_or(|(bk, br)| key < bk || (key == bk && rank < br)) {
                            gmin = Some((key, rank));
                        }
                    }
                    PState::RecvBlocked { clock, .. } => {
                        all_finished = false;
                        floor = floor.min(clock).min(sh.clocks[i]);
                    }
                    PState::Running => unreachable!("a rank is running at a barrier"),
                }
            }
            for (i, q) in sh.mailboxes.iter().enumerate() {
                if !matches!(sh.procs[i], PState::Finished) {
                    for m in q {
                        floor = floor.min(m.arrival);
                    }
                }
            }
        }
        if all_finished {
            coord.done = true;
            return;
        }
        let Some((gk, grank)) = gmin else {
            // Nobody parked, somebody blocked: the serial deadlock, with the
            // identical wait graph over the identical committed state.
            let states = self.global_states(shards);
            let mailboxes = self.global_mailboxes(shards);
            let mut graph = wait_graph(&states, &mailboxes);
            graph.push_str(&self.fault_context());
            if self.report_to_stderr() {
                eprintln!("{graph}");
            }
            self.raise_abort(Abort::Deadlock(graph));
            return;
        };
        let serial_only = coord.futile >= LIVELOCK_GRANT_LIMIT / 2;
        let h = floor + self.lookahead;
        if !serial_only && gk < h {
            // Open a window: every island with work inside [floor, h) gets a
            // thread slot, earliest minimum first (pure scheduling heuristic
            // — the walk alone fixes the committed order).
            let mut order: Vec<(f64, usize)> = Vec::new();
            for (is, sh) in shards.iter_mut().enumerate() {
                sh.h = h;
                sh.l = floor;
                sh.window_grants = 0;
                sh.active = false;
                if let Some((k, _)) = min_parked(sh) {
                    if k < h {
                        order.push((k, is));
                    }
                }
            }
            order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let t = self.cfg.island_threads.min(order.len());
            coord.active = t;
            coord.pending = order[t..].iter().map(|&(_, is)| is).collect();
            for &(_, is) in &order[..t] {
                let sh = &mut shards[is];
                sh.active = true;
                let (k, idx) = min_parked(sh).expect("island in order has a parked member");
                self.grant_local(sh, idx, k);
            }
        } else {
            // Serial step: grant exactly the serial engine's next grant and
            // re-barrier after its slot — with the serial engine's exact
            // pre-grant livelock accounting.
            if coord.futile + 1 >= LIVELOCK_GRANT_LIMIT {
                if let Some(tr) = coord.trace.as_mut() {
                    tr.push(Event {
                        t_ns: obs::ns(gk),
                        rank: grank as u32,
                        kind: EventKind::Grant,
                    });
                }
                coord.futile += 1;
                let states = self.global_states(shards);
                let mailboxes = self.global_mailboxes(shards);
                let graph = wait_graph(&states, &mailboxes);
                let context = self.fault_context();
                let report = format!(
                    "virtual-time livelock: {LIVELOCK_GRANT_LIMIT} consecutive turns granted \
                     (next: process {grank}) without any message transmitted or consumed; \
                     a poll loop is spinning without making progress\n{graph}{context}"
                );
                if self.report_to_stderr() {
                    eprintln!("{report}");
                }
                self.raise_abort(Abort::Livelock(report));
                return;
            }
            for sh in shards.iter_mut() {
                sh.h = f64::NEG_INFINITY;
                sh.l = f64::NEG_INFINITY;
                sh.window_grants = 0;
                sh.active = false;
            }
            let (is, idx) = self.island_of(grank);
            coord.active = 1;
            coord.pending.clear();
            let sh = &mut shards[is];
            sh.active = true;
            self.grant_local(sh, idx, gk);
        }
    }

    // ------------------------------------------------------------------
    // The primitive surface (mirrors `NetworkCore`).
    // ------------------------------------------------------------------

    /// Windowed transmit: draw faults island-locally, stage the send on the
    /// slot record, and return the datagram count.  Arrival and medium
    /// reservation are resolved at the walk.
    pub(crate) fn transmit(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        depart: f64,
        clock: f64,
    ) -> u64 {
        assert!(dst < self.n, "send to nonexistent process {dst}");
        let (_, idx) = self.island_of(src);
        let mut sh = self.schedule(src, PState::Parked { key: depart }, clock);
        let bytes = payload.len();
        let mut datagrams = self.cfg.datagrams_for(bytes);
        let occupancy = self.cfg.occupancy(bytes);
        let (mut extra_delay, mut extra_occupancy) = (0.0, 0.0);
        let mut fired: [Option<FaultKind>; 5] = [None; 5];
        if let Some(f) = sh.faults.as_mut() {
            let inj = f.on_transmit(src, dst, depart, datagrams, occupancy, self.cfg.latency);
            debug_assert!(!inj.reorder, "reorder plans are ineligible for this engine");
            datagrams += inj.extra_datagrams;
            extra_delay = inj.extra_delay;
            extra_occupancy = inj.extra_occupancy;
            fired = inj.kinds;
        }
        let rec = sh.cur[idx].as_mut().expect("granted rank has an open slot");
        rec.reset = true;
        rec.actions.push(Action::Send(StagedSend {
            dst,
            tag,
            payload,
            depart,
            bytes: bytes as u64,
            datagrams,
            occupancy,
            extra_delay,
            extra_occupancy,
            fired,
        }));
        datagrams
    }

    /// Windowed blocking receive; identical matching and keying to the
    /// serial engine, against the committed mailbox.
    pub(crate) fn recv_match(
        &self,
        dst: usize,
        src: Option<usize>,
        tag: Option<Tag>,
        clock: f64,
    ) -> Message {
        let (island, idx) = self.island_of(dst);
        let sh = self.shards[island].lock();
        let state = match find(&sh.mailboxes[idx], src, tag) {
            Some(pos) => PState::Parked {
                key: clock.max(sh.mailboxes[idx][pos].arrival),
            },
            None => PState::RecvBlocked { src, tag, clock },
        };
        let mut sh = self.schedule_locked(sh, dst, state, clock);
        let pos = find(&sh.mailboxes[idx], src, tag)
            .expect("granted receiver must have a matching message");
        let m = sh.mailboxes[idx].remove(pos).expect("position just found");
        let rec = sh.cur[idx].as_mut().expect("granted rank has an open slot");
        rec.reset = true;
        #[cfg(feature = "oracle-checks")]
        {
            rec.consumed = Some(ShadowConsume {
                src,
                tag,
                cap: None,
                got: (m.src, m.tag, m.arrival),
            });
        }
        if self.tracing {
            rec.actions.push(Action::Trace(Event {
                t_ns: obs::ns(clock.max(m.arrival)),
                rank: dst as u32,
                kind: EventKind::Consume {
                    src: m.src as u32,
                    tag: m.tag,
                    arrival_ns: obs::ns(m.arrival),
                },
            }));
        }
        m
    }

    /// Windowed non-blocking receive.  Arrival-filtered, so marked as an
    /// observation for the below-floor backstop.
    pub(crate) fn try_recv_match(
        &self,
        dst: usize,
        src: Option<usize>,
        tag: Option<Tag>,
        now: f64,
    ) -> Option<Message> {
        let (_, idx) = self.island_of(dst);
        let mut sh = self.schedule(dst, PState::Parked { key: now }, now);
        sh.cur[idx]
            .as_mut()
            .expect("granted rank has an open slot")
            .observed = true;
        let pos = sh.mailboxes[idx].iter().position(|m| {
            m.arrival <= now && src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t)
        })?;
        let m = sh.mailboxes[idx].remove(pos)?;
        let rec = sh.cur[idx].as_mut().expect("granted rank has an open slot");
        rec.reset = true;
        #[cfg(feature = "oracle-checks")]
        {
            rec.consumed = Some(ShadowConsume {
                src,
                tag,
                cap: Some(now),
                got: (m.src, m.tag, m.arrival),
            });
        }
        if self.tracing {
            rec.actions.push(Action::Trace(Event {
                t_ns: obs::ns(now),
                rank: dst as u32,
                kind: EventKind::Consume {
                    src: m.src as u32,
                    tag: m.tag,
                    arrival_ns: obs::ns(m.arrival),
                },
            }));
        }
        Some(m)
    }

    /// Windowed mailbox census; an observation like `try_recv_match`.
    pub(crate) fn pending(&self, dst: usize, now: f64) -> usize {
        let (_, idx) = self.island_of(dst);
        let mut sh = self.schedule(dst, PState::Parked { key: now }, now);
        sh.cur[idx]
            .as_mut()
            .expect("granted rank has an open slot")
            .observed = true;
        sh.mailboxes[idx].iter().filter(|m| m.arrival <= now).count()
    }

    /// Mark `id` finished; its last slot record (if any) closes with the
    /// `Finished` end state for the oracle replay.
    pub(crate) fn finish(&self, id: usize) {
        let (island, idx) = self.island_of(id);
        let mut sh = self.shards[island].lock();
        if self.aborted.load(Ordering::Acquire) {
            return;
        }
        if let Some(mut rec) = sh.cur[idx].take() {
            rec.end = PState::Finished;
            sh.recs.push_back(rec);
        }
        sh.procs[idx] = PState::Finished;
        sh.running -= 1;
        if self.island_dispatch(&mut sh) && sh.active {
            sh.active = false;
            drop(sh);
            self.on_quiesce();
        }
    }

    /// Tear the cluster down because `who` panicked.
    pub(crate) fn abort(&self, who: usize) {
        self.raise_abort(Abort::Panic(who));
    }

    /// Fault-plan crashes are ineligible for the windowed engine.
    pub(crate) fn crash(&self, _id: usize, _at: f64) {
        unreachable!("fault-plan crashes always run on the serial engine");
    }

    /// No crashes can fire under the windowed engine's eligibility rules.
    pub(crate) fn crashed(&self) -> Vec<(usize, f64)> {
        Vec::new()
    }

    /// Sum the per-island fault counters.  Tie-breaks are zero by
    /// construction (the windowed engine requires seed 0, which never
    /// draws).
    pub(crate) fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for s in &self.shards {
            if let Some(f) = &s.lock().faults {
                total.absorb(&f.stats);
            }
        }
        total
    }

    /// Drain the central trace, assembled in walk (serial) order.
    pub(crate) fn take_central(&self) -> Vec<Event> {
        self.coord.lock().trace.take().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::FaultPlan;
    use crate::{Cluster, ClusterConfig, ObsLevel, Proc, RunFailure};
    use bytes::Bytes;

    fn cfg(n: usize, islands: usize, threads: usize) -> ClusterConfig {
        let mut cfg = ClusterConfig::calibrated_fddi(n);
        cfg.islands = islands;
        cfg.island_threads = threads;
        cfg.obs = ObsLevel::Trace;
        cfg
    }

    /// Everything a run reports, flattened into directly comparable form:
    /// results, `Debug` of the per-process stats, `Debug` of the fault
    /// counters and `Debug` of the central trace.  `Debug` of `f64` prints
    /// the shortest string that round-trips, so equal strings mean equal
    /// bits.
    fn fingerprint<R, F>(cfg: ClusterConfig, f: F) -> (Vec<R>, String, String, String)
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&Proc) -> R + Send + Sync,
    {
        let rep = Cluster::run(cfg, f);
        let stats = format!("{:?}", rep.stats);
        let faults = format!("{:?}", rep.faults);
        let central = format!("{:?}", rep.obs.map(|o| o.central).unwrap_or_default());
        (rep.results, stats, faults, central)
    }

    /// Run `f` at island-thread widths 1 (the serial engine), 2 and 4 (the
    /// windowed engine) and assert every reported artefact is identical.
    fn assert_width_invariant<R, F>(mk: impl Fn() -> ClusterConfig, f: F)
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&Proc) -> R + Send + Sync + Copy,
    {
        let mut serial = mk();
        serial.island_threads = 1;
        assert!(!super::eligible(&serial), "width 1 must use the serial engine");
        let base = fingerprint(serial, f);
        for threads in [2usize, 4] {
            let mut c = mk();
            c.island_threads = threads;
            assert!(
                super::eligible(&c),
                "config must exercise the windowed engine at width {threads}"
            );
            let got = fingerprint(c, f);
            assert_eq!(base.0, got.0, "results diverge at width {threads}");
            assert_eq!(base.1, got.1, "stats diverge at width {threads}");
            assert_eq!(base.2, got.2, "fault counters diverge at width {threads}");
            assert_eq!(base.3, got.3, "central trace diverges at width {threads}");
        }
    }

    /// Ring exchange with wildcard-source receives, skewed payload sizes and
    /// skewed compute, across island boundaries every round.
    fn ring(p: &Proc) -> u64 {
        let n = p.nprocs();
        let me = p.id();
        let mut acc = 0u64;
        for round in 0..6u32 {
            let size = 32 + (me * 37 + round as usize * 101) % 2000;
            p.send((me + 1) % n, round, Bytes::from(vec![me as u8; size]));
            let m = p.recv(None, round);
            acc = acc.wrapping_mul(31).wrapping_add(m.payload.len() as u64);
            p.compute(1e-6 * (me as f64 + 1.0));
        }
        acc.wrapping_add(p.clock().to_bits())
    }

    #[test]
    fn ring_is_width_invariant() {
        for n in [4usize, 8] {
            for islands in [2usize, 4] {
                assert_width_invariant(|| cfg(n, islands, 1), ring);
            }
        }
    }

    /// All-to-all on the shared medium: every send contends for the wire, so
    /// walk-time medium accounting must replay the serial `medium_free_at`
    /// sequence exactly.
    fn all_to_all(p: &Proc) -> u64 {
        let n = p.nprocs();
        let me = p.id();
        for dst in 0..n {
            if dst != me {
                p.send(dst, 7, Bytes::from(vec![me as u8; 64 + dst * 17]));
            }
        }
        let mut acc = 0u64;
        for _ in 0..n - 1 {
            let m = p.recv(None, 7);
            acc = acc.wrapping_mul(131).wrapping_add(m.src as u64);
        }
        acc.wrapping_add(p.clock().to_bits())
    }

    #[test]
    fn shared_medium_all_to_all_is_width_invariant() {
        assert_width_invariant(|| cfg(8, 4, 1), all_to_all);
    }

    /// One busy sender, pollers that interleave `try_recv` with compute.
    /// Exercises the futile-grant accounting and `try_recv`'s arrival filter
    /// at the window boundary.
    fn pollers(p: &Proc) -> u64 {
        let n = p.nprocs();
        if p.id() == 0 {
            for dst in 1..n {
                p.compute(2e-6);
                p.send(dst, 1, Bytes::from(vec![dst as u8; 256]));
            }
            0
        } else {
            let mut polls = 0u64;
            loop {
                if let Some(m) = p.try_recv(Some(0), 1) {
                    return polls.wrapping_mul(1000).wrapping_add(m.payload.len() as u64);
                }
                polls += 1;
                p.compute(1e-6);
            }
        }
    }

    #[test]
    fn polling_is_width_invariant() {
        assert_width_invariant(|| cfg(6, 2, 1), pollers);
        assert_width_invariant(|| cfg(6, 4, 1), pollers);
    }

    /// Fire-and-poll workload that terminates under message loss: sends are
    /// unacknowledged and receives are bounded drains, so dropped or
    /// partitioned messages never wedge a rank.
    fn lossy_safe(p: &Proc) -> u64 {
        let n = p.nprocs();
        let me = p.id();
        for r in 0..4u32 {
            p.send((me + 1) % n, r, Bytes::from(vec![me as u8; 700]));
            p.send((me + 2) % n, r, Bytes::from(vec![me as u8; 90]));
        }
        let mut acc = 0u64;
        for _ in 0..300 {
            p.compute(5e-6);
            while let Some(m) = p.try_recv_interrupt() {
                acc = acc
                    .wrapping_mul(131)
                    .wrapping_add(m.src as u64 * 7 + m.payload.len() as u64);
            }
        }
        acc
    }

    #[test]
    fn lossy_plan_is_width_invariant() {
        // The built-in lossy battery minus reorder: drop, duplicate and
        // delay faults are all windowed-eligible.
        assert_width_invariant(
            || {
                let mut c = cfg(8, 4, 1);
                c.fault = FaultPlan {
                    reorder: 0.0,
                    ..FaultPlan::lossy(3)
                };
                c
            },
            lossy_safe,
        );
    }

    /// Reorder plans must fall back to the serial engine at every width —
    /// and the output is (trivially) still width-invariant.
    #[test]
    fn reorder_plan_falls_back_to_serial() {
        let mk = |threads: usize| {
            let mut c = cfg(8, 4, threads);
            c.fault = FaultPlan::lossy(3);
            c
        };
        assert!(!super::eligible(&mk(4)));
        let base = fingerprint(mk(1), lossy_safe);
        assert_eq!(base, fingerprint(mk(4), lossy_safe));
    }

    #[test]
    fn partition_plan_is_width_invariant() {
        assert_width_invariant(
            || {
                let mut c = cfg(8, 2, 1);
                c.fault = FaultPlan::partitioned(5, 8);
                c
            },
            lossy_safe,
        );
    }

    /// The deadlock report — wait graph and all — must be byte-identical
    /// whichever engine detects it.
    #[test]
    fn deadlock_report_is_width_invariant() {
        let f = |p: &Proc| {
            if p.id() == 0 {
                let _ = p.recv(Some(1), 99);
            }
            0u64
        };
        let msg_at = |threads: usize| {
            let c = cfg(4, 2, threads);
            match Cluster::try_run(c, f) {
                Err(RunFailure::Deadlock(m)) => m,
                Err(other) => panic!("expected deadlock, got {other:?}"),
                Ok(_) => panic!("run unexpectedly succeeded"),
            }
        };
        let serial = msg_at(1);
        assert!(serial.contains("virtual-time deadlock"), "{serial}");
        assert_eq!(serial, msg_at(2));
        assert_eq!(serial, msg_at(4));
    }

    /// The livelock detector must fire after the same number of futile
    /// grants and produce the same report under both engines.
    #[test]
    fn livelock_report_is_width_invariant() {
        let f = |p: &Proc| {
            if p.id() == 0 {
                loop {
                    if p.try_recv(Some(1), 1).is_some() {
                        return 1u64;
                    }
                }
            } else {
                let _ = p.recv(Some(0), 2);
                2
            }
        };
        let msg_at = |threads: usize| {
            let mut c = ClusterConfig::calibrated_fddi(2);
            c.islands = 2;
            c.island_threads = threads;
            match Cluster::try_run(c, f) {
                Err(RunFailure::Livelock(m)) => m,
                Err(other) => panic!("expected livelock, got {other:?}"),
                Ok(_) => panic!("run unexpectedly succeeded"),
            }
        };
        let serial = msg_at(1);
        assert!(serial.contains("virtual-time livelock"), "{serial}");
        assert_eq!(serial, msg_at(2));
    }

    /// Configurations the windowed engine must decline: seeded tie-breaks,
    /// race analysis, crash plans, a single island, a single process.
    #[test]
    fn ineligible_configs_fall_back_to_serial() {
        let base = cfg(4, 2, 4);
        assert!(super::eligible(&base));

        let mut seeded = base.clone();
        seeded.sched_seed = 9;
        assert!(!super::eligible(&seeded));

        let mut race = base.clone();
        race.analysis = crate::AnalysisLevel::Race;
        assert!(!super::eligible(&race));

        let mut one_island = base.clone();
        one_island.islands = 1;
        assert!(!super::eligible(&one_island));

        let mut solo = base.clone();
        solo.nprocs = 1;
        assert!(!super::eligible(&solo));

        let mut free = base;
        free.latency = 0.0;
        assert!(!super::eligible(&free));
    }
}

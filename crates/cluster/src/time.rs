//! Per-process virtual clocks.
//!
//! Every simulated process owns a [`VirtualClock`] measured in seconds of
//! simulated execution.  Computation advances it explicitly (via the work
//! model of the application layer); communication advances it through the
//! transport layer, which stamps each message with its arrival time and
//! synchronises the receiver's clock to `max(own, arrival)` when the message
//! is consumed.  This is the standard "logical execution time" construction:
//! the reported parallel time of a process is the virtual time at which it
//! finishes, and speedup is sequential virtual time over the maximum finish
//! time across processes.
//!
//! Clocks are advanced only by their owning thread; cross-process ordering
//! of clock-dependent actions is the job of the conservative virtual-time
//! arbiter in `crate::sched`, which makes the whole construction
//! deterministic (bit-identical times across runs).

use std::cell::Cell;

/// A monotone virtual clock, in seconds.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<f64>,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        VirtualClock {
            now: Cell::new(0.0),
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now.get()
    }

    /// Advance the clock by `dt` seconds of local activity.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite.
    pub fn advance(&self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "invalid clock advance: {dt}");
        self.now.set(self.now.get() + dt);
    }

    /// Synchronise the clock forward to `t` if `t` is later than now.
    /// Returns the amount of time the clock was idle-waiting (0 if none).
    pub fn sync_to(&self, t: f64) -> f64 {
        let now = self.now.get();
        if t > now {
            self.now.set(t);
            t - now
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.25);
        c.advance(0.75);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sync_only_moves_forward() {
        let c = VirtualClock::new();
        c.advance(5.0);
        assert_eq!(c.sync_to(3.0), 0.0);
        assert_eq!(c.now(), 5.0);
        let idle = c.sync_to(7.5);
        assert!((idle - 2.5).abs() < 1e-12);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    #[should_panic]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }
}

//! A simulated network of workstations.
//!
//! The SC'95 study "Message Passing Versus Distributed Shared Memory on
//! Networks of Workstations" executed its experiments on eight HP-735
//! workstations connected by a 100 Mbit/s FDDI ring.  This crate provides the
//! equivalent substrate for the reproduction: a [`Cluster`] spawns one OS
//! thread per simulated *process* (workstation), and every process owns a
//! [`Proc`] handle through which it
//!
//! * advances a **virtual clock** for computation via [`Proc::compute`], and
//! * exchanges tagged byte messages via [`Proc::send`] / [`Proc::recv`],
//!   which charge a calibrated communication cost (fixed per-datagram
//!   latency, per-fragment overhead, per-byte bandwidth cost, and optional
//!   shared-medium contention that models FDDI ring saturation).
//!
//! Both runtime systems of the study are built on top of this crate: the
//! PVM-style message passing library (`msgpass`) and the TreadMarks-style
//! software DSM (`treadmarks`).  All quantities the paper reports — virtual
//! execution time, number of messages, and bytes transferred — are tracked
//! per process in [`ProcStats`] and aggregated by [`Cluster::run`].
//!
//! Execution is **deterministic**: a conservative virtual-time arbiter (see
//! `sched` and [`net`]) serialises every shared-medium acquisition and
//! mailbox interaction in virtual-timestamp order, so two runs of the same
//! program produce byte-identical times and counters, and a protocol
//! deadlock is detected and reported (with its wait graph) the moment it
//! occurs rather than after a wall-clock timeout.
//!
//! # Example
//!
//! ```
//! use cluster::{Cluster, ClusterConfig};
//! use bytes::Bytes;
//!
//! let cfg = ClusterConfig::calibrated_fddi(2);
//! let report = Cluster::run(cfg, |p| {
//!     if p.id() == 0 {
//!         p.compute(0.010); // 10 ms of modeled computation
//!         p.send(1, 7, Bytes::from_static(b"hello"));
//!         0usize
//!     } else {
//!         let m = p.recv(Some(0), 7);
//!         m.payload.len()
//!     }
//! });
//! assert_eq!(report.results[1], 5);
//! assert!(report.stats[1].finish_time > 0.010);
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod config;
pub mod fault;
pub mod net;
pub mod obs;
pub mod proc;
pub mod scenario;
pub(crate) mod sched;
pub mod stats;
pub mod time;
pub(crate) mod window;

pub use analysis::AnalysisLevel;
pub use config::{ClusterConfig, NetModel, NetPreset, Overrides};
pub use fault::{Crash, CrashPoint, FaultKind, FaultPlan, FaultStats, Partition};
pub use net::{Message, RunFailure, Tag};
pub use obs::{ClusterObs, Histogram, ObsLevel, ProcObs, SpanCat};
pub use proc::Proc;
pub use scenario::Scenario;
pub use stats::{ClusterReport, ProcStats};
pub use time::VirtualClock;

use std::sync::Arc;

/// A simulated cluster of workstations.
///
/// `Cluster` is a thin front end: [`Cluster::run`] builds the shared
/// [`net::NetworkCore`], spawns one thread per process, hands each thread a
/// [`Proc`] handle, runs the user closure to completion on every process and
/// returns the per-process results together with the per-process
/// communication statistics.
pub struct Cluster;

/// Install (once per host process) a panic hook that silences the engine's
/// typed teardown payloads — the crash, deadlock, livelock and peer-abort
/// panics [`Cluster::try_run`] raises internally and always catches.  They
/// are control flow, not errors, and a fuzz campaign provokes thousands;
/// without this the default hook prints a `Box<dyn Any>` line (and under
/// `RUST_BACKTRACE`, a backtrace) per simulated failure.  Every other
/// payload chains to the previously installed hook, so genuine panics
/// still print exactly as before.
fn quiet_teardown_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let typed = p.is::<net::PeerAbort>()
                || p.is::<net::DeadlockAbort>()
                || p.is::<net::LivelockAbort>()
                || p.is::<net::CrashPayload>();
            if !typed {
                previous(info);
            }
        }));
    });
}

impl Cluster {
    /// Run `f` on `cfg.nprocs` simulated processes and collect the results.
    ///
    /// The closure receives the [`Proc`] handle of its process.  Each
    /// process runs on its own OS thread, but the cluster's conservative
    /// virtual-time arbiter serialises every shared-medium and mailbox
    /// interaction in virtual-timestamp order (ties broken by rank), so all
    /// reported times *and counters* are bit-identical across runs — the
    /// outcome is a pure function of the program and the cost model, never
    /// of OS scheduling or the physical core count of the host.
    ///
    /// # Panics
    ///
    /// Panics if any process thread panics (the lowest-rank panic is
    /// propagated), or on any structured [`RunFailure`] — a virtual-time
    /// deadlock or livelock (the panic message carries the full wait graph
    /// and fault context) or a fault-plan crash.  Harnesses that must
    /// survive failures (the fuzzer) use [`Cluster::try_run`] instead.
    pub fn run<F, R>(cfg: ClusterConfig, f: F) -> ClusterReport<R>
    where
        F: Fn(&Proc) -> R + Send + Sync,
        R: Send,
    {
        Self::try_run(cfg, f).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// As [`Cluster::run`], but deadlocks, livelocks and fault-plan crashes
    /// come back as a structured [`RunFailure`] instead of a panic, so a
    /// fuzzing harness can classify them as findings and keep going.
    ///
    /// Genuine panics in the process closure (assertion failures, runtime
    /// bugs) still propagate as panics: they are errors in the program under
    /// test, not verdicts about its schedule.
    ///
    /// # Panics
    ///
    /// Panics if a process thread panics with anything other than the
    /// engine's typed teardown payloads.
    pub fn try_run<F, R>(cfg: ClusterConfig, f: F) -> Result<ClusterReport<R>, RunFailure>
    where
        F: Fn(&Proc) -> R + Send + Sync,
        R: Send,
    {
        assert!(cfg.nprocs >= 1, "a cluster needs at least one process");
        quiet_teardown_hook();
        let core = Arc::new(net::NetworkCore::new(cfg.clone()));
        let f = &f;
        let results: Result<Vec<(R, ProcStats, Option<obs::ProcObs>)>, RunFailure> =
            // lint:allow(threads): the cluster's own per-process OS threads —
            // the arbiter (and, threaded, the window coordinator) serialises
            // every simulated interaction they perform.
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(cfg.nprocs);
                for id in 0..cfg.nprocs {
                    let core = Arc::clone(&core);
                    handles.push(s.spawn(move || {
                        let mut proc = Proc::new(id, Arc::clone(&core));
                        // A panicking process aborts the whole cluster: peers
                        // blocked on messages it will never send fail fast
                        // instead of hanging the run.  `into_stats` (which hands
                        // the scheduling token back) runs inside the guard so a
                        // deadlock detected at finish aborts the cluster too.
                        // A fault-plan crash is the one exception: it already
                        // tore itself down via `core.crash`, and its peers
                        // must run on — the crash kills one process, not the
                        // cluster.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let r = f(&proc);
                            let po = proc.take_obs();
                            let stats = proc.into_stats();
                            (r, stats, po)
                        })) {
                            Ok(tuple) => tuple,
                            Err(payload) => {
                                if payload.downcast_ref::<net::CrashPayload>().is_none() {
                                    core.abort(id);
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    }));
                }
                // Join every thread before propagating a failure, and prefer
                // the *originating* panic over the typed `PeerAbort` panics of
                // the peers it took down, so the surfaced message is the root
                // cause (deterministically the lowest-rank originator).
                let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                let mut out = Vec::with_capacity(joined.len());
                let mut originator = None;
                let mut victim = None;
                let mut failure: Option<RunFailure> = None;
                let mut crashed = false;
                for j in joined {
                    match j {
                        Ok(tuple) => out.push(tuple),
                        Err(payload) => {
                            if payload.downcast_ref::<net::CrashPayload>().is_some() {
                                crashed = true;
                            } else if let Some(d) = payload.downcast_ref::<net::DeadlockAbort>() {
                                failure.get_or_insert(RunFailure::Deadlock(d.0.clone()));
                            } else if let Some(l) = payload.downcast_ref::<net::LivelockAbort>() {
                                failure.get_or_insert(RunFailure::Livelock(l.0.clone()));
                            } else if payload.downcast_ref::<net::PeerAbort>().is_some() {
                                victim.get_or_insert(payload);
                            } else {
                                originator.get_or_insert(payload);
                            }
                        }
                    }
                }
                if let Some(payload) = originator {
                    std::panic::resume_unwind(payload);
                }
                if let Some(failure) = failure {
                    return Err(failure);
                }
                if let Some(payload) = victim {
                    // Every victim should be accompanied by its originator; if
                    // one ever surfaces alone, rethrow it readably.
                    let who = payload
                        .downcast_ref::<net::PeerAbort>()
                        .expect("checked above")
                        .0;
                    panic!("cluster aborted: process {who} panicked");
                }
                if crashed {
                    // Crashed ranks produced no result, so there is nothing
                    // complete to report — but nothing deadlocked either.
                    return Err(RunFailure::Crashed(core.crashed()));
                }
                Ok(out)
            });
        let results = results?;
        let mut out_results = Vec::with_capacity(results.len());
        let mut out_stats = Vec::with_capacity(results.len());
        let mut out_obs = Vec::with_capacity(results.len());
        for (r, st, po) in results {
            out_results.push(r);
            out_stats.push(st);
            if let Some(po) = po {
                out_obs.push(po);
            }
        }
        let obs = if cfg.obs.enabled() {
            assert_eq!(
                out_obs.len(),
                out_results.len(),
                "a process lost its recorder"
            );
            Some(obs::ClusterObs {
                procs: out_obs,
                central: core.take_central(),
            })
        } else {
            None
        };
        Ok(ClusterReport {
            results: out_results,
            stats: out_stats,
            obs,
            faults: core.fault_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn single_process_runs() {
        let cfg = ClusterConfig::calibrated_fddi(1);
        let rep = Cluster::run(cfg, |p| {
            p.compute(1.5);
            p.clock()
        });
        assert_eq!(rep.results.len(), 1);
        assert!((rep.results[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let cfg = ClusterConfig::calibrated_fddi(2);
        let rep = Cluster::run(cfg, |p| {
            if p.id() == 0 {
                p.send(1, 1, Bytes::from_static(&[1, 2, 3, 4]));
                let m = p.recv(Some(1), 2);
                assert_eq!(m.payload.as_ref(), &[9]);
            } else {
                let m = p.recv(Some(0), 1);
                assert_eq!(m.payload.len(), 4);
                p.send(0, 2, Bytes::from_static(&[9]));
            }
            p.clock()
        });
        // Both processes must have been charged at least two one-way latencies.
        let min = 2.0 * rep.stats[0].config_latency;
        assert!(rep.results[0] >= min, "{} < {}", rep.results[0], min);
        assert!(rep.results[1] >= rep.stats[1].config_latency);
        assert_eq!(rep.stats[0].datagrams_sent, 1);
        assert_eq!(rep.stats[1].datagrams_sent, 1);
    }

    #[test]
    fn broadcast_like_pattern_counts_messages() {
        let n = 4;
        let cfg = ClusterConfig::calibrated_fddi(n);
        let rep = Cluster::run(cfg, |p| {
            if p.id() == 0 {
                for dst in 1..p.nprocs() {
                    p.send(dst, 3, Bytes::from(vec![0u8; 100]));
                }
                0
            } else {
                p.recv(Some(0), 3).payload.len()
            }
        });
        assert_eq!(rep.stats[0].datagrams_sent, (n - 1) as u64);
        assert_eq!(rep.total_datagrams(), (n - 1) as u64);
        assert_eq!(rep.total_bytes(), 100 * (n as u64 - 1));
    }
}
